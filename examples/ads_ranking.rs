//! Ads click-through-rate ranking under an SLA: the scenario that motivates
//! the paper's latency focus. A user-facing ad auction must rank a slate of
//! candidate ads within a firm tail-latency budget; this example estimates
//! how many queries per second each system design sustains while keeping
//! p99 latency under the SLA.
//!
//! Run with: `cargo run --release --example ads_ranking`

use centaur::CentaurSystem;
use centaur_cpusim::CpuSystem;
use centaur_dlrm::PaperModel;
use centaur_gpusim::CpuGpuSystem;
use centaur_workload::{ArrivalProcess, IndexDistribution, QueryStream, RequestGenerator};

const SLA_MS: f64 = 10.0;

fn p99_under_load(service_us: f64, rate_qps: f64) -> f64 {
    let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps }, 5_000, 99);
    let latencies = stream.simulate_fifo_latency(service_us * 1e-6);
    QueryStream::percentile(&latencies, 0.99) * 1e3 // ms
}

fn max_qps_under_sla(service_us: f64) -> f64 {
    // Walk the offered load up until p99 exceeds the SLA.
    let mut best = 0.0;
    let mut rate = 50.0;
    while rate < 200_000.0 {
        if p99_under_load(service_us, rate) <= SLA_MS {
            best = rate;
            rate *= 1.3;
        } else {
            break;
        }
    }
    best
}

fn main() {
    // Each ad-ranking query scores a slate of 32 candidate ads in one batch.
    let model = PaperModel::Dlrm2.config();
    let batch = 32;
    let mut warm_gen = RequestGenerator::new(&model, IndexDistribution::Uniform, 1);
    let mut gen = RequestGenerator::new(&model, IndexDistribution::Uniform, 2);
    let warm = warm_gen.inference_trace(batch);
    let trace = gen.inference_trace(batch);

    let mut cpu = CpuSystem::broadwell();
    let cpu_result = cpu.simulate_warm(&warm, &trace);
    let mut gpu = CpuGpuSystem::dgx1();
    let gpu_result = gpu.simulate_warm(&warm, &trace);
    let centaur_result = CentaurSystem::harpv2().simulate(&trace);

    println!(
        "Ads CTR ranking: {} ({} candidates per query, p99 SLA {SLA_MS} ms)\n",
        model.name, batch
    );
    println!(
        "{:<10} {:>14} {:>20}",
        "system", "latency (us)", "max QPS under SLA"
    );
    for (name, latency_us) in [
        ("CPU-only", cpu_result.total_ns() / 1e3),
        ("CPU-GPU", gpu_result.total_ns() / 1e3),
        ("Centaur", centaur_result.total_ns() / 1e3),
    ] {
        println!(
            "{:<10} {:>14.1} {:>20.0}",
            name,
            latency_us,
            max_qps_under_sla(latency_us)
        );
    }
    println!(
        "\nCentaur speedup over CPU-only: {:.2}x",
        centaur_result.speedup_over(cpu_result.total_ns())
    );
}
