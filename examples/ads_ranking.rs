//! Ads ranking as a multi-tenant serving problem: the scenario that
//! motivates per-model pools. One accelerator fleet serves two production
//! tenants — a light CTR *filter* (DLRM(1)) doing the high-QPS first pass
//! over the whole candidate set under a tight 5 ms SLO, and a heavy final
//! *ranker* (DLRM(6)) scoring the shortlist under a looser 25 ms budget.
//!
//! The ranker is having a bad day: 3× its pooled capacity of heavy-tailed
//! traffic plus a replica crash mid-replay — more work than the host can
//! absorb. The example replays the same mix twice — **isolated**
//! per-tenant pools (own EDF queue, own SLO / admission / fault budgets)
//! versus one **shared-everything** pool — and shows that isolation
//! confines the damage to the tenant that caused it: the filter's p99
//! holds inside its own 5 ms SLO and the overloaded ranker pool sheds its
//! own excess, while the shared configuration serves the filter's answers
//! 3× past their deadline (the shared pool only enforces the loosest
//! tenant's SLO — late answers nobody can use).
//!
//! Run with: `cargo run --release --example ads_ranking`

use centaur::CentaurConfig;
use centaur_dlrm::{DlrmModel, PaperModel};
use centaur_serve::{
    calibrate_fifo_capacity_qps, relative_sample_cost, run_mix_cell, scaled_service_estimate,
    FaultSpec, PoolMode, Supervision, TenantSpec,
};
use centaur_workload::{IndexDistribution, TenantTraffic, TrafficShape};
use std::time::Duration;

const FILTER_SLO: Duration = Duration::from_millis(5);
const RANKER_SLO: Duration = Duration::from_millis(25);

fn main() {
    let filter_config = PaperModel::Dlrm1.config().with_rows_per_table(4_096);
    let ranker_config = PaperModel::Dlrm6.config().with_rows_per_table(4_096);
    let filter_model = DlrmModel::random(&filter_config, 1).expect("valid filter model");
    let ranker_model = DlrmModel::random(&ranker_config, 2).expect("valid ranker model");

    // One measured capacity anchors both pools; the ranker's machine rate
    // and deadline-policy service estimate follow from its relative
    // per-sample cost (a DLRM(6) sample costs ~6× a DLRM(1) sample). On a
    // co-located host extra replicas buy restart headroom, not throughput,
    // so the pools are provisioned as *work shares* of the one measured
    // machine — the filter owns 70% of its work, the ranker 30% — and the
    // service estimates stretch 2× for the two pools time-sharing it.
    let filter_capacity = calibrate_fifo_capacity_qps(
        &filter_model,
        CentaurConfig::harpv2(),
        IndexDistribution::Uniform,
        7,
    )
    .expect("calibration succeeds");
    let cost_ratio = relative_sample_cost(&ranker_config) / relative_sample_cost(&filter_config);
    let ranker_replicas = 2;
    let filter_pool_qps = 0.7 * filter_capacity;
    let ranker_pool_qps = 0.3 * filter_capacity / cost_ratio;
    let filter_estimate =
        Duration::from_secs_f64(centaur::BATCH_WAVE_SAMPLES as f64 / filter_capacity.max(1.0)) * 2;
    let ranker_estimate = scaled_service_estimate(filter_estimate, &filter_config, &ranker_config);

    // The filter offers a nominal 0.5× of its pooled capacity; the ranker
    // is overloaded at 3× its pooled capacity with heavy-tailed arrivals
    // and a crash targeting its pool — more work than the whole host can
    // absorb, so *someone* must shed, and which tenant pays is exactly
    // what the pool topology decides.
    let filter_qps = 0.5 * filter_pool_qps;
    let ranker_qps = 3.0 * ranker_pool_qps;
    let total_qps = filter_qps + ranker_qps;
    let queries = ((total_qps * 0.2).ceil() as usize).clamp(256, 4_000);
    let filter_share = filter_qps / total_qps;

    let tenants = [
        TenantSpec::new(
            "ctr-filter",
            filter_model,
            TenantTraffic::new(filter_share, TrafficShape::Poisson),
            FILTER_SLO,
        )
        .with_service_estimate(filter_estimate)
        .supervised(Supervision::default())
        .with_admission_depth(((filter_pool_qps * FILTER_SLO.as_secs_f64()) as usize).max(16)),
        TenantSpec::new(
            "final-ranker",
            ranker_model,
            TenantTraffic::new(1.0 - filter_share, TrafficShape::HeavyTail),
            RANKER_SLO,
        )
        .with_replicas(ranker_replicas)
        .with_service_estimate(ranker_estimate)
        .supervised(Supervision::default())
        .with_faults(FaultSpec::crashes(1).with_seed(42))
        .with_admission_depth(((ranker_pool_qps * RANKER_SLO.as_secs_f64()) as usize).max(16)),
    ];

    println!(
        "Ads ranking mix: ctr-filter DLRM(1) @ {:.0} qps under a {} ms SLO, \
         final-ranker DLRM(6) @ {:.0} qps (3x its pooled capacity, heavy-tailed, \
         1 crash) under a {} ms SLO\n",
        filter_qps,
        FILTER_SLO.as_millis(),
        ranker_qps,
        RANKER_SLO.as_millis()
    );
    println!(
        "{:<14} {:<10} {:>12} {:>13} {:>9} {:>7} {:>7} {:>9}",
        "tenant", "pool", "offered qps", "availability", "p99 ms", "shed", "failed", "faults"
    );

    let mut filter_rows = Vec::new();
    for mode in [PoolMode::Isolated, PoolMode::Shared] {
        let rows = run_mix_cell(
            CentaurConfig::harpv2(),
            &tenants,
            mode,
            total_qps,
            queries,
            7,
        )
        .expect("mix cell succeeds");
        for r in &rows {
            println!(
                "{:<14} {:<10} {:>12.0} {:>13.4} {:>9.3} {:>7} {:>7} {:>9}",
                r.tenant,
                r.pool,
                r.offered_qps,
                r.availability,
                r.latency.p99_s * 1e3,
                r.shed,
                r.failed,
                r.faults
            );
        }
        filter_rows.extend(rows.into_iter().filter(|r| r.tenant == "ctr-filter"));
    }

    let isolated = &filter_rows[0];
    let shared = &filter_rows[1];
    println!(
        "\nIsolated pools pin the CTR filter at {:.3} ms p99 — inside its {} ms SLO — \
         while its overloaded neighbour sheds its own excess; shared-everything \
         drags the filter's p99 to {:.3} ms, {:.1}x past its deadline.",
        isolated.latency.p99_s * 1e3,
        FILTER_SLO.as_millis(),
        shared.latency.p99_s * 1e3,
        shared.latency.p99_s / FILTER_SLO.as_secs_f64()
    );
}
