//! E-commerce product recommendation with skewed item popularity: unlike
//! the paper's worst-case uniform gathers, production traffic often follows
//! a Zipf-like popularity curve, which gives the CPU's cache hierarchy more
//! to work with. This example sweeps the access skew and shows how the
//! CPU-only baseline benefits while Centaur (whose gathers stream over the
//! chiplet link regardless of locality) stays flat — and still wins.
//!
//! Run with: `cargo run --release --example ecommerce_ranking`

use centaur::CentaurSystem;
use centaur_cpusim::CpuSystem;
use centaur_dlrm::PaperModel;
use centaur_workload::{IndexDistribution, RequestGenerator};

fn main() {
    let model = PaperModel::Dlrm3.config();
    let batch = 16;
    let distributions = [
        ("uniform (paper default)", IndexDistribution::Uniform),
        ("zipf s=0.8", IndexDistribution::Zipfian { exponent: 0.8 }),
        ("zipf s=1.1", IndexDistribution::Zipfian { exponent: 1.1 }),
        (
            "hot-set 10% rows / 90% hits",
            IndexDistribution::HotSet {
                hot_rows: model.rows_per_table / 10,
                hot_fraction: 0.9,
            },
        ),
    ];

    println!(
        "E-commerce ranking on {} (batch {batch}), sweeping item-popularity skew\n",
        model.name
    );
    println!(
        "{:<28} {:>16} {:>16} {:>12} {:>12}",
        "popularity", "CPU-only (us)", "Centaur (us)", "CPU GB/s", "speedup"
    );

    for (label, distribution) in distributions {
        let mut warm_gen = RequestGenerator::new(&model, distribution, 31);
        let mut gen = RequestGenerator::new(&model, distribution, 32);
        let warm = warm_gen.inference_trace(batch);
        let trace = gen.inference_trace(batch);

        let mut cpu = CpuSystem::broadwell();
        let cpu_result = cpu.simulate_warm(&warm, &trace);
        let centaur_result = CentaurSystem::harpv2().simulate(&trace);

        println!(
            "{:<28} {:>16.1} {:>16.1} {:>12.2} {:>11.2}x",
            label,
            cpu_result.total_ns() / 1e3,
            centaur_result.total_ns() / 1e3,
            cpu_result
                .effective_embedding_throughput()
                .gigabytes_per_second(),
            centaur_result.speedup_over(cpu_result.total_ns())
        );
    }
}
