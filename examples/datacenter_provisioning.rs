//! Datacenter provisioning study: given a target inference workload mix and
//! a fleet-level query rate, how many servers of each design (CPU-only,
//! CPU-GPU, Centaur) are needed, and what is the energy cost per million
//! queries? This exercises the performance *and* power models together —
//! the TCO argument the paper makes for socket-compatible CPU+FPGA.
//!
//! Run with: `cargo run --release --example datacenter_provisioning`

use centaur_bench::ExperimentRunner;
use centaur_dlrm::PaperModel;
use centaur_power::SystemKind;

fn main() {
    // Workload mix: mostly mid-sized ranking queries, some heavy ones.
    let mix = [
        (PaperModel::Dlrm1, 16usize, 0.5f64),
        (PaperModel::Dlrm2, 16, 0.3),
        (PaperModel::Dlrm6, 32, 0.2),
    ];
    let fleet_qps = 50_000.0;

    let runner = ExperimentRunner::new();
    println!("Datacenter provisioning for {fleet_qps:.0} queries/s\n");
    println!(
        "{:<10} {:>18} {:>12} {:>22}",
        "system", "avg latency (us)", "servers", "energy (J / 1M queries)"
    );

    for system in [SystemKind::CpuOnly, SystemKind::CpuGpu, SystemKind::Centaur] {
        let mut weighted_latency_ns = 0.0;
        let mut weighted_energy_j = 0.0;
        for &(model, batch, weight) in &mix {
            let cmp = runner.compare(model, batch);
            weighted_latency_ns += weight * cmp.latency_ns(system);
            weighted_energy_j += weight * cmp.energy(system).energy_joules;
        }
        // One request in flight per server (latency-bound provisioning, as
        // SLA-driven services are).
        let qps_per_server = 1e9 / weighted_latency_ns;
        let servers = (fleet_qps / qps_per_server).ceil();
        let energy_per_million = weighted_energy_j * 1e6;
        println!(
            "{:<10} {:>18.1} {:>12.0} {:>22.0}",
            system.label(),
            weighted_latency_ns / 1e3,
            servers,
            energy_per_million
        );
    }

    println!(
        "\nNote: Centaur servers remain socket-compatible hosts (the CPU is still\n\
         available for non-ML work), which is the paper's TCO argument for\n\
         package-integrated CPU+FPGA over discrete accelerators."
    );
}
