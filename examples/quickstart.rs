//! Quickstart: build a small DLRM model, run a functional inference on the
//! Centaur accelerator datapath, check it against the reference model, and
//! compare predicted latency against the CPU-only and CPU-GPU baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use centaur::{CentaurRuntime, CentaurSystem};
use centaur_cpusim::CpuSystem;
use centaur_dlrm::{DlrmModel, PaperModel};
use centaur_gpusim::CpuGpuSystem;
use centaur_workload::{IndexDistribution, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A DLRM(1)-shaped model, scaled down to 4096 rows per table so the
    //    functional tables fit comfortably in memory.
    let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
    let model = DlrmModel::random(&config, 42)?;
    println!(
        "Model: {} tables x {} rows, {}-dim embeddings, {:.1} KB of MLP parameters",
        config.num_tables,
        config.rows_per_table,
        config.embedding_dim,
        config.mlp_bytes() as f64 / 1e3
    );

    // 2. Generate a batch of requests.
    let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 7);
    let batch = generator.functional_batch(8);

    // 3. Functional inference through the accelerator datapath.
    let mut runtime = CentaurRuntime::harpv2(model.clone())?;
    let accelerator_probs = runtime.infer_batch(&batch.dense, &batch.sparse)?;
    let reference_probs = model.forward_batch(&batch.dense, &batch.sparse)?;
    for (i, (a, r)) in accelerator_probs.iter().zip(&reference_probs).enumerate() {
        println!("sample {i}: centaur={a:.6} reference={r:.6}");
        assert!((a - r).abs() < 1e-4, "accelerator result diverged");
    }

    // 4. Predicted latency of the three system design points on the full
    //    (Table I sized) DLRM(1) at batch 16.
    let full = PaperModel::Dlrm1.config();
    let mut gen = RequestGenerator::new(&full, IndexDistribution::Uniform, 11);
    let trace = gen.inference_trace(16);

    let cpu = CpuSystem::broadwell().simulate(&trace);
    let gpu = CpuGpuSystem::dgx1().simulate(&trace);
    let centaur = CentaurSystem::harpv2().simulate(&trace);

    println!("\nPredicted end-to-end latency, DLRM(1) batch 16:");
    println!("  CPU-only : {:8.1} us", cpu.total_ns() / 1e3);
    println!("  CPU-GPU  : {:8.1} us", gpu.total_ns() / 1e3);
    println!(
        "  Centaur  : {:8.1} us  ({:.1}x speedup over CPU-only)",
        centaur.total_ns() / 1e3,
        centaur.speedup_over(cpu.total_ns())
    );
    Ok(())
}
