//! Offline micro-benchmark harness, source-compatible with the subset of
//! [`criterion`](https://crates.io/crates/criterion) this workspace uses:
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple warm-up + timed-run loop reporting the mean,
//! median and throughput-free min/max per iteration — no statistics engine,
//! no HTML reports. Good enough to compare kernels on the same machine in
//! the same process, which is all the workspace's benches do.
//!
//! Environment knobs:
//! - `CRITERION_QUICK=1` (or running under `cargo test`, which passes
//!   `--test`) cuts measurement to a handful of iterations so bench
//!   binaries double as smoke tests.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value (re-export of
/// `std::hint::black_box`, which the real criterion also forwards to).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one setup per
/// iteration regardless; the variants exist for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in the real crate.
    SmallInput,
    /// Large inputs: few per batch in the real crate.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    quick: bool,
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    fn measure<F: FnMut()>(&mut self, mut routine: F) {
        // Warm up, then pick an iteration count targeting ~200 ms of
        // measurement (3 iterations minimum so the mean is not a fluke).
        let warmup_iters = if self.quick { 1 } else { 3 };
        let warmup_start = Instant::now();
        for _ in 0..warmup_iters {
            routine();
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = if self.quick { 0.0 } else { 0.2 };
        let iters = if per_iter > 0.0 {
            ((target / per_iter) as u64).clamp(3, 1_000_000)
        } else {
            1_000_000
        };
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.result_ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
    }

    /// Times `routine` over many iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            black_box(routine());
        });
    }

    /// Times `routine` with a fresh `setup()` input per iteration; only the
    /// routine would be timed by the real crate, here setup time is included
    /// (noted in the output as `~`).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            black_box(routine(input));
        });
    }
}

/// Benchmark registry/driver (massively simplified).
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
            || args.iter().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            quick: self.quick,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{name:<50} time: {:>12}  ({} iterations)",
            format_ns(bencher.result_ns),
            bencher.iters
        );
        self
    }

    /// Accepted for compatibility; the stub has no global configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final hook called by `criterion_main!`; nothing to flush.
    pub fn final_summary(&self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Groups benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main()` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Measures a closure once and returns mean ns/iter — used by in-tree code
/// (e.g. kernel calibration) that wants a quick programmatic timing without
/// the printing driver.
pub fn time_once_ns<F: FnMut()>(mut routine: F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        routine();
    }
    duration_ns(start.elapsed()) / iters.max(1) as f64
}

fn duration_ns(d: Duration) -> f64 {
    d.as_secs_f64() * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_threads_inputs() {
        let mut b = Bencher {
            quick: true,
            result_ns: 0.0,
            iters: 0,
        };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 3);
        assert!(b.result_ns >= 0.0);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2.3e9).contains(" s"));
    }
}
