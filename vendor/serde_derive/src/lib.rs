//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros backing
//! the offline `serde` stub.
//!
//! The workspace derives these traits purely as API documentation — nothing
//! serializes at runtime, and the registry is unreachable from the build
//! environment — so the derives expand to nothing. If real serialization is
//! ever needed, replace `vendor/serde*` with the upstream crates.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]` syntactically.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]` syntactically.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
