//! Offline mini property-testing harness.
//!
//! Source-compatible with the subset of the real
//! [`proptest`](https://crates.io/crates/proptest) API this workspace uses:
//! the `proptest!` macro with `#![proptest_config(...)]`, range and
//! `collection::vec` strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: inputs are drawn from a fixed seed
//! derived from the test name (fully deterministic, no persistence file) and
//! there is **no shrinking** — on failure the harness prints the case number
//! and the generated inputs so the case can be reproduced by reading the
//! values off the panic message.

use std::fmt::Debug;
use std::ops::Range;

/// Strategies: types that can generate values from entropy.
pub mod strategy {
    use super::*;

    /// A value generator (massively simplified from the real crate: no
    /// value trees, no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut rand::rngs::StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy producing `Vec`s of an element strategy with a length drawn
    /// from a range (mirrors `proptest::collection::vec`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Prints the failing case on panic so it can be reproduced.
    pub struct CaseReporter {
        pub test: &'static str,
        pub case: u32,
        pub inputs: String,
        pub armed: bool,
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest failure in `{}` at case {}:\n  inputs: {}",
                    self.test, self.case, self.inputs
                );
            }
        }
    }
}

/// Defines property tests. Supports the form
/// `proptest! { #![proptest_config(expr)] #[test] fn name(arg in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::seed_for(stringify!($name)),
                );
            for __case in 0..__cfg.cases {
                let __values = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng)
                ),+ ,);
                let mut __reporter = $crate::__rt::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                    inputs: format!(
                        ::std::concat!("(", $(::std::stringify!($arg), ", "),+ , ") = {:?}"),
                        &__values
                    ),
                    armed: true,
                };
                let ($($arg),+ ,) = __values;
                $body
                __reporter.armed = false;
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a name the real proptest exposes.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the real proptest exposes.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0u32..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 2);
        }

        #[test]
        fn vec_strategy_respects_len(mut v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            v.push(0);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn run_generated_tests() {
        ranges_respect_bounds();
        vec_strategy_respects_len();
        default_config_runs();
    }
}
