//! A minimal, dependency-free, offline drop-in for the subset of the
//! [`rand`](https://crates.io/crates/rand) 0.8 API this workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched; this stub keeps the public surface source-compatible. `StdRng`
//! here is xoshiro256** seeded through SplitMix64 — deterministic per seed
//! and statistically solid for workload generation, but **not** the same
//! stream as the real `rand::rngs::StdRng` (ChaCha12) and not
//! cryptographically secure.

use std::ops::Range;

/// Streaming source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the generator.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Generic over the output type
/// (rather than using an associated type) so that float-literal ranges like
/// `-0.01..0.01` infer `f32` from the call site, as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; values above it are
    // rejected so every residue class is equally likely.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the four state words, as
        // recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.5f32..1.5);
            assert!((-2.5..1.5).contains(&y));
            let z: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        // Samples lie in [0, 1), so p = 1.0 always fires.
        assert!(rng.gen_bool(1.0));
    }
}
