//! Offline stub of the `serde` facade.
//!
//! The workspace annotates result/config structs with
//! `#[derive(Serialize, Deserialize)]` but never actually serializes them
//! (there is no `serde_json`/`bincode` consumer), and the build environment
//! has no registry access. This stub re-exports no-op derive macros so the
//! annotations stay source-compatible with the real crate. Swap in upstream
//! `serde` if a serialization consumer is ever added.

pub use serde_derive::{Deserialize, Serialize};
