//! End-to-end fault-tolerance tests for the supervised serving layer: a
//! deterministic seeded fault plan crashes replicas mid-replay and the run
//! must degrade gracefully — in-flight batches recovered and requeued with
//! their original arrival stamps, replicas restarted within the budget,
//! exhausted budgets surfaced as counted `Failed` rejections, and the
//! accounting invariant (every generated request ends exactly one of
//! completed / shed / failed) proven against the generated count. Only
//! unrecoverable states may abort, and they must preserve the injected
//! crash's original panic payload.

use centaur::{CentaurConfig, CentaurRuntime};
use centaur_dlrm::{DlrmModel, PaperModel, RejectReason};
use centaur_serve::{
    generate_requests, serve_replay_faulted, BatchPolicy, FaultEvent, FaultKind, FaultPlan,
    FaultSpec, HedgeConfig, ServeOptions, ServeOutcome, Supervision,
};
use centaur_workload::{ArrivalProcess, IndexDistribution, QueryStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

fn small_model() -> DlrmModel {
    let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
    DlrmModel::random(&config, 5).unwrap()
}

/// The acceptance-criterion scenario: a seeded plan crashes 1 of 2
/// replicas mid-replay. The replay completes without aborting, every
/// request is accounted exactly once, retried requests keep their original
/// arrival stamps, availability stays ≥ 0.99, and the crashed replica is
/// restarted.
#[test]
fn seeded_crash_of_one_replica_is_absorbed_with_full_accounting() {
    let model = small_model();
    let config = model.config().clone();
    let queries = 1_200usize;
    let offered_qps = 20_000.0;
    let requests = generate_requests(&config, IndexDistribution::Uniform, 42, queries);
    let stream = QueryStream::generate(
        ArrivalProcess::Poisson {
            rate_qps: offered_qps,
        },
        queries,
        42 ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
    // One crash, deterministically placed in the middle of the replay
    // window, against a deterministic victim.
    let window_s = queries as f64 / offered_qps;
    let plan = FaultPlan::seeded(FaultSpec::crashes(1).with_seed(42), 2, window_s);
    assert_eq!(plan.len(), 1);
    let options = ServeOptions::default().supervised(Supervision::default());

    let outcome = serve_replay_faulted(
        pool,
        &requests,
        &stream,
        BatchPolicy::dynamic_wave(),
        options,
        &plan,
    )
    .expect("supervised run completes despite the crash");

    // Accounting invariant: every generated request has exactly one
    // terminal state.
    assert_eq!(
        outcome.accounted(),
        queries,
        "completed {} + shed {} + failed {} != generated {queries}",
        outcome.completions.len(),
        outcome.shed(),
        outcome.failed
    );
    // The crash really happened and was really recovered.
    assert_eq!(outcome.restarts, 1, "the crashed replica restarted");
    assert_eq!(outcome.replicas_lost, 0);
    assert!(
        outcome.retries >= 1,
        "the in-flight batch was requeued, not dropped"
    );
    assert!(
        outcome.availability() >= 0.99,
        "availability {} under a single crash",
        outcome.availability()
    );
    // Retried requests keep their original arrival stamps: every
    // completion's arrival matches the schedule, and each id completed at
    // most once.
    let arrivals = stream.arrivals_seconds();
    let mut seen = vec![false; queries];
    for completion in &outcome.completions {
        let id = completion.id as usize;
        assert!(!seen[id], "request {id} completed twice");
        seen[id] = true;
        assert_eq!(
            completion.arrival_s, arrivals[id],
            "request {id} lost its original arrival stamp"
        );
        assert!(completion.latency_s() >= 0.0);
    }
    // Anything failed is surfaced as a counted rejection, never silent.
    assert_eq!(
        outcome.rejections.len(),
        outcome.shed() + outcome.failed,
        "every non-completion is a wire-level rejection"
    );
    assert_eq!(outcome.reject_count(RejectReason::Failed), outcome.failed);
}

/// A plan exceeding the restart budget still aborts — promptly, with the
/// injected crash's original panic payload preserved.
#[test]
fn crash_beyond_the_restart_budget_aborts_with_the_original_payload() {
    let model = small_model();
    let config = model.config().clone();
    let queries = 400usize;
    let requests = generate_requests(&config, IndexDistribution::Uniform, 7, queries);
    // A slow schedule (20 qps => 20 s): the abort must cut it short.
    let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 20.0 }, queries, 3);
    let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 1).unwrap();
    let plan = FaultPlan::new(vec![FaultEvent {
        replica: 0,
        at_s: 0.05,
        kind: FaultKind::Crash,
    }]);
    // Restart budget 0: the only replica stays dead — unrecoverable.
    let options = ServeOptions::default().supervised(Supervision::new(2, 0));

    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        serve_replay_faulted(
            pool,
            &requests,
            &stream,
            BatchPolicy::dynamic_wave(),
            options,
            &plan,
        )
    }));
    let elapsed = started.elapsed();
    let payload = result.expect_err("all replicas dead must abort the run");
    let message = payload
        .downcast_ref::<String>()
        .expect("the injected crash's payload is preserved");
    assert!(
        message.contains("injected fault") && message.contains("replica 0"),
        "unexpected payload: {message}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "abort surfaced in {elapsed:?}, not after the 20 s schedule"
    );
}

/// Transient datapath faults are absorbed by retries alone: no restarts,
/// no failures, every request eventually served.
#[test]
fn transient_faults_are_retried_to_completion() {
    let model = small_model();
    let config = model.config().clone();
    let queries = 256usize;
    let requests = generate_requests(&config, IndexDistribution::Uniform, 11, queries);
    let stream = QueryStream::generate(
        ArrivalProcess::Poisson { rate_qps: 20_000.0 },
        queries,
        11 ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
    let window_s = queries as f64 / 20_000.0;
    let plan = FaultPlan::seeded(
        FaultSpec::none().with_transients(3).with_seed(9),
        2,
        window_s,
    );
    let options = ServeOptions::default().supervised(Supervision::default());
    let outcome = serve_replay_faulted(
        pool,
        &requests,
        &stream,
        BatchPolicy::dynamic_wave(),
        options,
        &plan,
    )
    .expect("transients never kill a supervised run");
    assert_eq!(outcome.completions.len(), queries, "everything served");
    assert_eq!(outcome.accounted(), queries);
    assert!(outcome.retries >= 1, "transients forced re-serves");
    assert_eq!(outcome.failed, 0, "the retry budget absorbs transients");
    assert_eq!(outcome.restarts, 0, "transients are not crashes");
    assert_eq!(outcome.availability(), 1.0);
}

/// Stall faults freeze one replica while its sibling keeps serving: the
/// run completes with nothing lost, at worst with late answers.
#[test]
fn stalls_degrade_latency_but_lose_nothing() {
    let model = small_model();
    let config = model.config().clone();
    let queries = 256usize;
    let requests = generate_requests(&config, IndexDistribution::Uniform, 13, queries);
    let stream = QueryStream::generate(
        ArrivalProcess::Poisson { rate_qps: 20_000.0 },
        queries,
        13 ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
    let plan = FaultPlan::new(vec![FaultEvent {
        replica: 0,
        at_s: 0.002,
        kind: FaultKind::Stall { millis: 20 },
    }]);
    let options = ServeOptions::default().supervised(Supervision::default());
    let outcome = serve_replay_faulted(
        pool,
        &requests,
        &stream,
        BatchPolicy::dynamic_wave(),
        options,
        &plan,
    )
    .expect("a stall never kills a supervised run");
    assert_eq!(outcome.completions.len(), queries);
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.restarts, 0);
    assert_eq!(outcome.availability(), 1.0);
}

/// End-to-end latency of one completion percentile (p99 here): the smallest
/// latency at least `q` of the completions sit at or below.
fn p99_s(outcome: &ServeOutcome) -> f64 {
    let mut latencies: Vec<f64> = outcome.completions.iter().map(|c| c.latency_s()).collect();
    assert!(!latencies.is_empty());
    latencies.sort_by(f64::total_cmp);
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// The tail-tolerance acceptance scenario: 1 of 2 replicas stalls for
/// 200 ms mid-replay. Unhedged (crash supervision only), the stalled
/// batch's riders eat the whole hold and the p99 tracks the fault — more
/// than 10× the fault-free baseline. Hedged, the watchdog re-dispatches
/// the riders to the healthy sibling within one hedge timeout, quarantines
/// the straggler and re-admits it after backoff — p99 stays within 3× of
/// the baseline, with every duplicate suppressed and every request counted
/// exactly once.
#[test]
fn hedging_bounds_the_tail_of_a_stalled_replica() {
    let model_config = PaperModel::Dlrm1.config().with_rows_per_table(512);
    let queries = 1_600usize;
    // Deterministic arrivals with 2.5x fill headroom: at 8 k qps each
    // replica's 24-slot batch fills in ~6 ms, well inside the 15 ms
    // hold-open window, so batches — including the one the stall catches —
    // dispatch full even when the two workers split arrivals unevenly. The
    // 24 riders comfortably cover the 16 requests p99 of 1 600 resolves,
    // and the fault-free p99 pins near the ~6 ms fill time.
    let requests = generate_requests(&model_config, IndexDistribution::Uniform, 29, queries);
    let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 8_000.0 }, queries, 31);
    let policy = BatchPolicy::Dynamic {
        max_batch: 24,
        max_wait: Duration::from_millis(15),
    };
    let hedge = HedgeConfig::new(Duration::from_millis(1));
    let stall_plan = || {
        FaultPlan::new(vec![FaultEvent {
            replica: 0,
            at_s: 0.1,
            kind: FaultKind::Stall { millis: 200 },
        }])
    };
    let run = |plan: &FaultPlan, options: ServeOptions| {
        let model = DlrmModel::random(&model_config, 5).unwrap();
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        serve_replay_faulted(pool, &requests, &stream, policy, options, plan)
            .expect("a stall never kills a supervised run")
    };

    let supervised = ServeOptions::default().supervised(Supervision::default());
    let baseline = run(&FaultPlan::none(), supervised.hedged(hedge));
    let unhedged = run(&stall_plan(), supervised);
    let hedged = run(&stall_plan(), supervised.hedged(hedge));

    // Accounting first: every request ends in exactly one terminal state
    // in every cell, stall or no stall, hedge or no hedge.
    for (name, outcome) in [
        ("baseline", &baseline),
        ("unhedged", &unhedged),
        ("hedged", &hedged),
    ] {
        assert_eq!(outcome.accounted(), queries, "{name} accounting");
        assert_eq!(outcome.completions.len(), queries, "{name} completions");
        assert_eq!(outcome.restarts, 0, "{name}: a stall is not a crash");
        assert_eq!(outcome.failed, 0, "{name} failures");
    }
    // No request double-counted in the hedged run, duplicates suppressed.
    let mut seen = vec![false; queries];
    for completion in &hedged.completions {
        let id = completion.id as usize;
        assert!(!seen[id], "request {id} completed twice");
        seen[id] = true;
    }
    assert!(baseline.hedges == 0, "fault-free watchdog never hedges");
    assert!(unhedged.hedges == 0 && unhedged.quarantines == 0);
    assert!(hedged.hedges >= 1, "the stalled batch was hedged");
    assert_eq!(
        hedged.duplicates_suppressed, hedged.hedges,
        "every hedge's redundant copy was suppressed, none double-counted"
    );
    // The straggler was benched and later re-admitted.
    assert!(
        hedged.quarantines >= 1,
        "the stalled replica was quarantined"
    );
    assert!(
        hedged.readmissions >= 1,
        "the quarantined replica re-admitted after backoff"
    );
    // The tail: unhedged eats the 200 ms hold, hedged stays near baseline.
    let (base_p99, unhedged_p99, hedged_p99) = (p99_s(&baseline), p99_s(&unhedged), p99_s(&hedged));
    assert!(
        unhedged_p99 > 10.0 * base_p99,
        "unhedged p99 {:.1} ms should dwarf the fault-free p99 {:.1} ms",
        unhedged_p99 * 1e3,
        base_p99 * 1e3
    );
    assert!(
        hedged_p99 <= 3.0 * base_p99,
        "hedged p99 {:.1} ms should stay within 3x the fault-free p99 {:.1} ms",
        hedged_p99 * 1e3,
        base_p99 * 1e3
    );
}

/// Fault tolerance composes with overload protection: a crash under an
/// admission-gated, deadline-shedding configuration still accounts every
/// request (completed, counted-shed, or failed) and keeps availability.
#[test]
fn supervision_composes_with_overload_protection() {
    let model = small_model();
    let config = model.config().clone();
    let queries = 1_024usize;
    let offered_qps = 150_000.0; // deliberately past one small pool's knee
    let requests = generate_requests(&config, IndexDistribution::Uniform, 17, queries);
    let stream = QueryStream::generate(
        ArrivalProcess::Poisson {
            rate_qps: offered_qps,
        },
        queries,
        17 ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
    let window_s = queries as f64 / offered_qps;
    let plan = FaultPlan::seeded(FaultSpec::crashes(1).with_seed(23), 2, window_s);
    let options = ServeOptions::overload_protected(Duration::from_millis(5), 256)
        .supervised(Supervision::default());
    let outcome = serve_replay_faulted(
        pool,
        &requests,
        &stream,
        BatchPolicy::deadline_wave(Duration::from_micros(500)),
        options,
        &plan,
    )
    .expect("crash under overload still completes");
    assert_eq!(
        outcome.accounted(),
        queries,
        "overload shedding and fault recovery account every request"
    );
    assert!(outcome.availability() >= 0.99);
    // Every rejection carries a reason consistent with the counters.
    let mut by_reason = [0usize; 3];
    for rejection in &outcome.rejections {
        by_reason[match rejection.reason {
            RejectReason::QueueFull => 0,
            RejectReason::DeadlineExpired => 1,
            RejectReason::Failed => 2,
        }] += 1;
    }
    assert_eq!(by_reason[0], outcome.shed_admission);
    assert_eq!(by_reason[1], outcome.shed_expired);
    assert_eq!(by_reason[2], outcome.failed);
}
