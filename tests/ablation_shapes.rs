//! Integration tests for the forward-looking design points discussed in
//! Section VII of the paper: wider chiplet links with cache-bypassing
//! gather paths, and the reduction-unit bottleneck they expose.

use centaur::{CentaurConfig, CentaurSystem};
use centaur_dlrm::PaperModel;
use centaur_workload::{IndexDistribution, RequestGenerator};

fn trace(batch: usize) -> centaur_dlrm::InferenceTrace {
    let config = PaperModel::Dlrm4.config();
    let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 77);
    generator.inference_trace(batch)
}

#[test]
fn wider_links_monotonically_reduce_embedding_time() {
    let t = trace(32);
    let mut previous = f64::MAX;
    for bandwidth in [50.0, 100.0, 200.0, 400.0] {
        let result = CentaurSystem::new(CentaurConfig::future_chiplet(bandwidth)).simulate(&t);
        assert!(
            result.breakdown.embedding_ns <= previous + 1e-6,
            "embedding time should not grow with link bandwidth"
        );
        previous = result.breakdown.embedding_ns;
    }
}

#[test]
fn future_chiplets_beat_the_harpv2_prototype() {
    let t = trace(64);
    let harp = CentaurSystem::harpv2().simulate(&t);
    let future = CentaurSystem::new(CentaurConfig::future_chiplet(200.0)).simulate(&t);
    assert!(future.total_ns() < harp.total_ns());
    assert!(
        future
            .effective_embedding_throughput()
            .gigabytes_per_second()
            > harp.effective_embedding_throughput().gigabytes_per_second()
    );
}

#[test]
fn reduction_unit_caps_gather_throughput_on_very_wide_links() {
    // Past a few hundred GB/s of link bandwidth, the 32-ALU EB-RU
    // (25.6 GB/s of embedding data) limits the gather pipeline, so doubling
    // the link again yields almost nothing.
    let t = trace(64);
    let wide = CentaurSystem::new(CentaurConfig::future_chiplet(400.0)).simulate(&t);
    let wider = CentaurSystem::new(CentaurConfig::future_chiplet(800.0)).simulate(&t);
    let gain = wide.breakdown.embedding_ns / wider.breakdown.embedding_ns;
    assert!(
        gain < 1.1,
        "past the EB-RU limit the link should stop mattering (gain {gain:.2})"
    );
    let gbs = wider
        .effective_embedding_throughput()
        .gigabytes_per_second();
    assert!(
        gbs <= 25.6 + 1e-6,
        "gather throughput must respect the EB-RU ceiling, got {gbs:.1}"
    );
}
