//! Proves the steady-state zero-allocation guarantee of the workspace
//! inference paths with a counting global allocator: after a warm-up call
//! has grown every scratch buffer to its high-water mark, repeated forward
//! passes must not touch the heap at all.
//!
//! Everything is measured inside a single `#[test]` so no concurrent test
//! in this binary can perturb the allocation counter.

use centaur_dlrm::kernel::{KernelBackend, Workspace};
use centaur_dlrm::{Activation, Matrix, Mlp, ModelConfig};
use centaur_dlrm::{DlrmModel, EmbeddingTable, FeatureInteraction, ModelWorkspace, ReductionOp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation/reallocation.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during<F: FnMut()>(mut f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_inference_paths_do_not_allocate() {
    // The parallel backend spawns threads (which allocate); the guarantee
    // covers the deterministic single-threaded backends.
    let backend = KernelBackend::Blocked;

    // --- MlpStack::forward via a Workspace --------------------------------
    let mlp = Mlp::random(&[13, 64, 32, 8], Activation::Relu, 3).unwrap();
    let x = Matrix::from_fn(4, 13, |r, c| (r as f32 - c as f32) * 0.1);
    let mut ws = Workspace::new();
    // Warm-up grows every buffer to its high-water mark.
    mlp.forward_ws(backend, x.as_slice(), 4, 13, &mut ws)
        .unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            mlp.forward_ws(backend, x.as_slice(), 4, 13, &mut ws)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "Mlp::forward_ws allocated in steady state");

    // --- Embedding gather/reduce into a preallocated buffer ---------------
    let table = EmbeddingTable::random(512, 32, 7);
    let indices: Vec<u32> = (0..40).map(|i| (i * 13) % 512).collect();
    let mut reduced = vec![0.0f32; 32];
    table
        .gather_reduce_into(&indices, ReductionOp::Sum, &mut reduced)
        .unwrap();
    let allocs = allocations_during(|| {
        for op in [ReductionOp::Sum, ReductionOp::Mean, ReductionOp::Max] {
            table
                .gather_reduce_into(&indices, op, &mut reduced)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "gather_reduce_into allocated in steady state");

    // --- Feature interaction into a preallocated buffer -------------------
    let fi = FeatureInteraction::new(9, 32).unwrap();
    let features = Matrix::from_fn(9, 32, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
    let mut interact_out = vec![0.0f32; fi.output_dim()];
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            fi.interact_into(features.as_slice(), &mut interact_out);
        }
    });
    assert_eq!(allocs, 0, "interact_into allocated in steady state");

    // --- Full model sample through a ModelWorkspace -----------------------
    let config = ModelConfig::builder()
        .name("zero-alloc")
        .num_tables(4)
        .rows_per_table(256)
        .embedding_dim(32)
        .lookups_per_table(8)
        .dense_features(13)
        .bottom_mlp(&[64, 32])
        .top_mlp(&[64, 1])
        .build()
        .unwrap();
    let model = DlrmModel::random(&config, 11).unwrap();
    let dense = Matrix::from_fn(1, 13, |_, c| c as f32 * 0.05 - 0.3);
    let sparse: Vec<Vec<u32>> = (0..4)
        .map(|t| (0..8u32).map(|i| (t as u32 * 31 + i * 7) % 256).collect())
        .collect();
    let mut model_ws = ModelWorkspace::new();
    let warm = model
        .forward_sample_ws(backend, dense.row(0), &sparse, &mut model_ws)
        .unwrap();
    let mut probs = [0.0f32; 10];
    let allocs = allocations_during(|| {
        for p in probs.iter_mut() {
            *p = model
                .forward_sample_ws(backend, dense.row(0), &sparse, &mut model_ws)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "forward_sample_ws allocated in steady state");
    assert!(probs.iter().all(|&p| (p - warm).abs() < 1e-7));
}
