//! Proves the steady-state zero-allocation guarantee of the workspace
//! inference paths with a counting global allocator: after a warm-up call
//! has grown every scratch buffer to its high-water mark, repeated forward
//! passes must not touch the heap at all.
//!
//! Everything is measured inside a single `#[test]` so no concurrent test
//! in this binary can perturb the allocation counter.

use centaur_dlrm::kernel::{KernelBackend, Workspace};
use centaur_dlrm::{Activation, Matrix, Mlp, ModelConfig};
use centaur_dlrm::{
    BatchWorkspace, DlrmModel, EmbeddingTable, FeatureInteraction, ModelWorkspace, ReductionOp,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocation/reallocation.
struct CountingAllocator;

// SAFETY: pure pass-through to `System` plus a relaxed-free atomic counter —
// every `GlobalAlloc` contract obligation (layout validity, pointer
// provenance, no unwinding) is delegated unchanged to the system allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero-sized
    // `layout`); forwarded verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract (`ptr` came
    // from this allocator with this `layout`); forwarded to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract (`ptr`/`layout`
    // pair valid, `new_size` non-zero); forwarded to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` up to three times and returns the *minimum* allocation count
/// observed across attempts.
///
/// The minimum, not a single sample: the libtest harness's main thread
/// allocates asynchronously every so often (timeout bookkeeping), and those
/// background allocations land in the process-global counter. A path that
/// really allocates does so on every one of its iterations, so it can never
/// measure zero — while transient harness noise vanishes on retry.
fn allocations_during<F: FnMut()>(mut f: F) -> u64 {
    let mut fewest = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        f();
        fewest = fewest.min(ALLOCATIONS.load(Ordering::SeqCst) - before);
        if fewest == 0 {
            break;
        }
    }
    fewest
}

#[test]
fn steady_state_inference_paths_do_not_allocate() {
    // The parallel backend spawns threads (which allocate); the guarantee
    // covers the deterministic single-threaded backends.
    let backend = KernelBackend::Blocked;

    // --- MlpStack::forward via a Workspace --------------------------------
    let mlp = Mlp::random(&[13, 64, 32, 8], Activation::Relu, 3).unwrap();
    let x = Matrix::from_fn(4, 13, |r, c| (r as f32 - c as f32) * 0.1);
    let mut ws = Workspace::new();
    // Warm-up grows every buffer to its high-water mark.
    mlp.forward_ws(backend, x.as_slice(), 4, 13, &mut ws)
        .unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            mlp.forward_ws(backend, x.as_slice(), 4, 13, &mut ws)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "Mlp::forward_ws allocated in steady state");

    // --- Embedding gather/reduce into a preallocated buffer ---------------
    let table = EmbeddingTable::random(512, 32, 7);
    let indices: Vec<u32> = (0..40).map(|i| (i * 13) % 512).collect();
    let mut reduced = vec![0.0f32; 32];
    table
        .gather_reduce_into(&indices, ReductionOp::Sum, &mut reduced)
        .unwrap();
    let allocs = allocations_during(|| {
        for op in [ReductionOp::Sum, ReductionOp::Mean, ReductionOp::Max] {
            table
                .gather_reduce_into(&indices, op, &mut reduced)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "gather_reduce_into allocated in steady state");

    // --- Feature interaction into a preallocated buffer -------------------
    let fi = FeatureInteraction::new(9, 32).unwrap();
    let features = Matrix::from_fn(9, 32, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
    let mut interact_out = vec![0.0f32; fi.output_dim()];
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            fi.interact_into(features.as_slice(), &mut interact_out);
        }
    });
    assert_eq!(allocs, 0, "interact_into allocated in steady state");

    // --- Full model sample through a ModelWorkspace -----------------------
    let config = ModelConfig::builder()
        .name("zero-alloc")
        .num_tables(4)
        .rows_per_table(256)
        .embedding_dim(32)
        .lookups_per_table(8)
        .dense_features(13)
        .bottom_mlp(&[64, 32])
        .top_mlp(&[64, 1])
        .build()
        .unwrap();
    let packs_before_model = centaur_dlrm::prepack_events();
    let model = DlrmModel::random(&config, 11).unwrap();
    // Prepacking happens exactly once per dense layer, at construction —
    // never lazily on the serving path.
    let total_layers = (model.bottom_mlp().num_layers() + model.top_mlp().num_layers()) as u64;
    assert_eq!(
        centaur_dlrm::prepack_events() - packs_before_model,
        total_layers,
        "model construction must prepack each layer exactly once"
    );
    let dense = Matrix::from_fn(1, 13, |_, c| c as f32 * 0.05 - 0.3);
    let sparse: Vec<Vec<u32>> = (0..4)
        .map(|t| (0..8u32).map(|i| (t as u32 * 31 + i * 7) % 256).collect())
        .collect();
    let mut model_ws = ModelWorkspace::new();
    let warm = model
        .forward_sample_ws(backend, dense.row(0), &sparse, &mut model_ws)
        .unwrap();
    let mut probs = [0.0f32; 10];
    let allocs = allocations_during(|| {
        for p in probs.iter_mut() {
            *p = model
                .forward_sample_ws(backend, dense.row(0), &sparse, &mut model_ws)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "forward_sample_ws allocated in steady state");
    assert!(probs.iter().all(|&p| (p - warm).abs() < 1e-7));

    // --- Batch-major inference through a BatchWorkspace --------------------
    // The whole batch flows through one GEMM per layer; after the workspace
    // has warmed up to the high-water batch size, repeated batched requests
    // must not touch the heap either.
    let batch = 16;
    let batch_dense = Matrix::from_fn(batch, 13, |r, c| (r as f32 * 0.07 - c as f32 * 0.03) % 1.0);
    let batch_sparse: Vec<Vec<Vec<u32>>> = (0..batch)
        .map(|s| {
            (0..4)
                .map(|t| {
                    (0..8u32)
                        .map(|i| ((s * 61 + t * 31) as u32 + i * 7) % 256)
                        .collect()
                })
                .collect()
        })
        .collect();
    let mut batch_ws = BatchWorkspace::new();
    let mut batch_out = vec![0.0f32; batch];
    model
        .forward_batch_into(
            backend,
            &batch_dense,
            &batch_sparse,
            &mut batch_out,
            &mut batch_ws,
        )
        .unwrap();
    let warm_batch = batch_out.clone();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            model
                .forward_batch_into(
                    backend,
                    &batch_dense,
                    &batch_sparse,
                    &mut batch_out,
                    &mut batch_ws,
                )
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "forward_batch_into allocated in steady state");
    assert_eq!(batch_out, warm_batch);

    // The batched result must equal the per-sample path exactly.
    for (i, sparse) in batch_sparse.iter().enumerate() {
        let single = model
            .forward_sample_ws(backend, batch_dense.row(i), sparse, &mut model_ws)
            .unwrap();
        assert_eq!(batch_out[i], single, "sample {i} diverged");
    }

    // --- Batched inference through the accelerator runtime -----------------
    // The runtime's staging buffers (EB-Streamer batch gather, dense-complex
    // feature/interaction SRAM models, index SRAM) follow the same
    // high-water-mark discipline.
    let mut runtime = centaur::CentaurRuntime::harpv2(model.clone()).unwrap();
    runtime.set_backend(backend);
    runtime
        .infer_batch_into(&batch_dense, &batch_sparse, &mut batch_out)
        .unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            runtime
                .infer_batch_into(&batch_dense, &batch_sparse, &mut batch_out)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "infer_batch_into allocated in steady state");
    assert_eq!(batch_out, warm_batch, "runtime diverged from the model");

    // --- Vectorized sparse engine through the EB-Streamer ------------------
    // The cached sparse path: register-tiled gather kernels, the index-SRAM
    // chunking and the hot-row cache model's sampled tag observation must
    // all run without heap traffic once the streamer has served one
    // request. (`VectorizedParallel` is excluded like `BlockedParallel`:
    // thread spawns allocate by nature.)
    use centaur_dlrm::SparseBackend;
    let mut streamer = centaur::EbStreamer::default();
    streamer.set_sparse_backend(SparseBackend::Vectorized);
    let bag = model.embeddings();
    let stride = bag.num_tables() * bag.dim();
    let mut reduced_batch = vec![0.0f32; batch * stride];
    streamer
        .gather_reduce_batch_into(bag, &batch_sparse, &mut reduced_batch, stride, 0)
        .unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            streamer
                .gather_reduce_batch_into(bag, &batch_sparse, &mut reduced_batch, stride, 0)
                .unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "vectorized EB-Streamer gather allocated in steady state"
    );
    assert!(
        streamer.hot_row_cache().hits() + streamer.hot_row_cache().misses() > 0,
        "cache model must have observed the gather stream"
    );
    // The streamed result must equal the scalar bag oracle bitwise.
    let mut oracle = vec![0.0f32; batch * stride];
    bag.reduce_batch_into_with(&batch_sparse, &mut oracle, stride, 0, SparseBackend::Scalar)
        .unwrap();
    assert_eq!(
        reduced_batch, oracle,
        "streamer diverged from scalar oracle"
    );

    // --- Serving steady state: stage + batched inference --------------------
    // The serving layer's per-replica staging (`ReplicaStage`) copies a
    // coalesced batch of requests into batch-major buffers and runs the
    // runtime's batched path; after warm-up the whole stage-and-serve step
    // must not touch the heap — this is what keeps the dynamic batcher's
    // steady state allocation-free under sustained load.
    let requests: Vec<centaur_dlrm::InferenceRequest> = (0..batch)
        .map(|s| centaur_dlrm::InferenceRequest {
            id: s as u64,
            dense: batch_dense.row(s).to_vec(),
            sparse: batch_sparse[s].clone(),
        })
        .collect();
    let staged: Vec<&centaur_dlrm::InferenceRequest> = requests.iter().collect();
    let mut serve_stage = centaur_serve::ReplicaStage::new(&config, batch);
    let warm_served = serve_stage
        .run_batch(&mut runtime, &staged)
        .unwrap()
        .to_vec();
    assert_eq!(warm_served, warm_batch, "staged batch diverged");
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            serve_stage.run_batch(&mut runtime, &staged).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "serving stage + batched inference allocated in steady state"
    );

    // --- Prepacked serving steady state -------------------------------------
    // The default serving backend feeds the GEMM microkernels from panels
    // packed once at model load: booting the runtime re-packed nothing
    // (replica clones copy panels), steady-state serving re-packs nothing
    // and allocates nothing, and the results stay bitwise identical to the
    // on-the-fly-packing path just measured.
    let packs_before_serving = centaur_dlrm::prepack_events();
    assert_eq!(
        packs_before_serving - packs_before_model,
        total_layers,
        "runtime boot and staging must not re-prepack any layer"
    );
    runtime.set_backend(KernelBackend::BlockedPrepacked);
    let warm_prepacked = serve_stage
        .run_batch(&mut runtime, &staged)
        .unwrap()
        .to_vec();
    assert_eq!(warm_prepacked, warm_batch, "prepacked serving diverged");
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            serve_stage.run_batch(&mut runtime, &staged).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "prepacked serving stage allocated in steady state"
    );
    assert_eq!(
        centaur_dlrm::prepack_events(),
        packs_before_serving,
        "steady-state serving must never re-prepack"
    );

    // --- Overload-protected queue steady state ------------------------------
    // The shedding/deadline path: an admission-bounded queue with dequeue
    // shedding, exercised through push (admitted + admission-shed) and
    // deadline-aware pop_batch (expired requests shed, live ones batched).
    // After the ring buffer and the shed log reach their high-water marks
    // (one warm-up round + reserve_shed), sustained overload must not touch
    // the heap — shedding is exactly the path that runs hottest when the
    // server is drowning.
    use centaur_serve::{AdmissionConfig, ArrivalQueue, BatchPolicy, DequeueOrder, QueuedRequest};
    use std::time::Duration;
    let queue = ArrivalQueue::with_config(AdmissionConfig {
        max_depth: Some(8),
        shed_expired: true,
        order: DequeueOrder::Fifo,
    });
    queue.reserve_shed(256);
    let policy = BatchPolicy::Deadline {
        max_batch: 8,
        max_wait: Duration::ZERO,
        service_estimate: Duration::from_millis(1),
    };
    let mut shed_batch: Vec<QueuedRequest> = Vec::with_capacity(8);
    let mut overload_round = || {
        // Four already-dead requests, four live, two over the depth bound.
        for i in 0..10usize {
            let deadline_s = if i < 4 { -1.0 } else { f64::INFINITY };
            let _ = queue.push(QueuedRequest {
                index: i,
                arrival_s: 0.0,
                deadline_s,
                retries: 0,
                hedged: false,
            });
        }
        // The pop sheds the four dead requests and batches the four live
        // ones; ZERO max_wait means it never parks on the condvar.
        assert!(queue.pop_batch(policy, &mut shed_batch));
        assert_eq!(shed_batch.len(), 4);
        assert_eq!(queue.depth(), 0);
        // Settle the in-flight accounting the pop opened.
        queue.complete(shed_batch.len());
    };
    overload_round(); // warm-up: grow the ring buffer to its high-water mark
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            overload_round();
        }
    });
    assert_eq!(
        allocs, 0,
        "overload-protected queue allocated in steady state"
    );
    // Every round sheds 2 at admission and 4 at dequeue (the retry loop in
    // `allocations_during` may run a variable number of rounds).
    assert!(queue.shed_admission() >= 2 * 11);
    assert_eq!(queue.shed_expired(), 2 * queue.shed_admission());

    // --- Supervised serving steady state (watchdog enabled) ----------------
    // The fault-tolerant path in its hedge-free steady state: the health
    // board gating every pull, publishing each dispatch-stamped batch to
    // the in-flight slot, polling the fault guard, the watchdog's probe /
    // overdue check against a healthy (not overdue) dispatch, staging +
    // batched inference, hedge-aware completion through `complete_batch`
    // (every result primary — no duplicates to suppress), recording
    // completions into a pre-reserved log, and scoring the replica's
    // service EWMA. Supervision plus an armed watchdog must cost nothing on
    // the heap when nothing is stalling — crash recovery and hedge races
    // may allocate, every healthy batch served must not.
    use centaur_serve::{Completion, FaultGuard, HealthBoard, InFlightSlot};
    let supervised_queue = ArrivalQueue::new();
    let spolicy = BatchPolicy::Dynamic {
        max_batch: batch,
        max_wait: Duration::ZERO,
    };
    let slot = InFlightSlot::new(batch);
    // A one-second timeout no sub-millisecond batch ever crosses: the
    // watchdog machinery runs every round, the hedge path never fires.
    let health = HealthBoard::new(1, 1.0, 3, Duration::from_millis(25));
    let mut fault_guard = FaultGuard::none();
    let mut served_batch: Vec<QueuedRequest> = Vec::with_capacity(batch);
    let mut served_staged: Vec<&centaur_dlrm::InferenceRequest> = Vec::with_capacity(batch);
    let mut completion_log: Vec<Completion> = Vec::with_capacity(batch);
    // The monitor's bookkeeping, preallocated exactly as the real watchdog
    // preallocates before its polling loop.
    let mut riders: Vec<QueuedRequest> = Vec::with_capacity(batch);
    let mut primary: Vec<bool> = Vec::with_capacity(batch);
    let mut supervised_round = |completion_log: &mut Vec<Completion>| {
        assert!(
            health.may_pull(0, 0.0),
            "a healthy replica pulls without parking"
        );
        for i in 0..batch {
            assert!(supervised_queue.push(QueuedRequest {
                index: i,
                arrival_s: 0.0,
                deadline_s: f64::INFINITY,
                retries: 0,
                hedged: false,
            }));
        }
        assert!(supervised_queue.pop_batch(spolicy, &mut served_batch));
        assert_eq!(served_batch.len(), batch);
        slot.publish(&served_batch, 0.0);
        fault_guard
            .intercept(0, 0.0)
            .expect("an empty guard injects nothing");
        // The watchdog's per-tick view of this replica: a stamped dispatch
        // that is not yet overdue claims no riders.
        let (dispatched_s, hedged) = slot.probe().expect("a published batch is visible");
        assert_eq!(dispatched_s, 0.0);
        assert!(!hedged);
        assert!(
            !slot.overdue_riders(1e-4, 1.0, &mut riders),
            "a fresh dispatch is never overdue"
        );
        served_staged.clear();
        served_staged.extend(served_batch.iter().map(|q| &requests[q.index]));
        let probabilities = serve_stage.run_batch(&mut runtime, &served_staged).unwrap();
        assert!(!slot.clear(), "no watchdog hedged this healthy batch");
        supervised_queue.complete_batch(&served_batch, false, &mut primary);
        assert!(primary.iter().all(|&keep| keep), "every result is primary");
        completion_log.clear();
        for (queued, &probability) in served_batch.iter().zip(probabilities) {
            completion_log.push(Completion {
                id: requests[queued.index].id,
                arrival_s: queued.arrival_s,
                completed_s: 0.0,
                probability,
            });
        }
        health.record_service(0, 2e-4, 3e-4);
    };
    supervised_round(&mut completion_log); // warm-up: queue ring + buffers
    assert_eq!(completion_log.len(), batch);
    assert_eq!(completion_log[0].probability, warm_batch[0]);
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            supervised_round(&mut completion_log);
        }
    });
    assert_eq!(
        allocs, 0,
        "watchdog-enabled supervised serving path allocated in hedge-free \
         steady state"
    );
    assert_eq!(supervised_queue.in_flight(), 0);
    assert_eq!(supervised_queue.failed(), 0);
    assert_eq!(supervised_queue.hedges(), 0);
    assert_eq!(supervised_queue.duplicates_suppressed(), 0);
    use centaur_serve::ReplicaHealth;
    assert_eq!(health.health(0), ReplicaHealth::Healthy);
    assert_eq!(health.quarantines(), 0);

    // --- Multi-tenant EDF steady state --------------------------------------
    // The isolated-pool dispatch path: an EDF-ordered arrival queue (binary
    // heap backlog) feeding a `MixServer` that routes every queued request
    // to its tenant's own engine and scatters the probabilities back into
    // batch order. After warm-up has grown the heap, the per-tenant
    // position scratch and the output buffer, sustained fault-free
    // multi-tenant serving — push with interleaved per-tenant deadlines,
    // EDF pop, route, batch-serve, complete — must not touch the heap.
    use centaur_serve::{BatchServer, MixServer};
    let tenant_b_model = DlrmModel::random(&config, 12).unwrap();
    let mut mix_engines = vec![
        centaur::CentaurRuntime::harpv2(model.clone()).unwrap(),
        centaur::CentaurRuntime::harpv2(tenant_b_model).unwrap(),
    ];
    for engine in &mut mix_engines {
        engine.set_backend(backend);
    }
    let tenant_of: Vec<usize> = (0..batch).map(|s| s % 2).collect();
    let mut mix_server = MixServer::new(mix_engines, &requests, &tenant_of, batch);
    let edf_queue = ArrivalQueue::with_config(AdmissionConfig {
        max_depth: None,
        shed_expired: false,
        order: DequeueOrder::Edf,
    });
    let mut mix_out: Vec<f32> = Vec::with_capacity(batch);
    let mut edf_batch: Vec<QueuedRequest> = Vec::with_capacity(batch);
    let mut mix_round = |mix_out: &mut Vec<f32>, edf_batch: &mut Vec<QueuedRequest>| {
        for i in 0..batch {
            // Interleaved urgencies so the heap genuinely re-sorts the
            // backlog every round instead of degenerating to FIFO.
            assert!(edf_queue.push(QueuedRequest {
                index: i,
                arrival_s: 0.0,
                deadline_s: ((batch - i) % 5) as f64,
                retries: 0,
                hedged: false,
            }));
        }
        assert!(edf_queue.pop_batch(spolicy, edf_batch));
        assert_eq!(edf_batch.len(), batch);
        for pair in edf_batch.windows(2) {
            assert!(
                pair[0].deadline_s <= pair[1].deadline_s,
                "EDF pop must hand out non-decreasing deadlines"
            );
        }
        mix_server.serve_batch(edf_batch, mix_out).unwrap();
        edf_queue.complete(edf_batch.len());
    };
    mix_round(&mut mix_out, &mut edf_batch); // warm-up: heap, scratch, output
                                             // Tenant 0 shares the solo model above, so its routed probabilities
                                             // must match the solo batched results exactly.
    for (position, queued) in edf_batch.iter().enumerate() {
        if tenant_of[queued.index] == 0 {
            assert_eq!(
                mix_out[position], warm_batch[queued.index],
                "mix routing diverged from the solo path for request {}",
                queued.index
            );
        }
    }
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            mix_round(&mut mix_out, &mut edf_batch);
        }
    });
    assert_eq!(
        allocs, 0,
        "multi-tenant EDF serving path allocated in steady state"
    );
    assert_eq!(edf_queue.in_flight(), 0);
    assert_eq!(edf_queue.failed(), 0);
}
