//! Integration tests: the Centaur accelerator's functional datapath must be
//! numerically equivalent to the reference DLRM model, end to end, across
//! model shapes and request patterns.

use centaur::CentaurRuntime;
use centaur_dlrm::{DlrmModel, KernelBackend, ModelConfig, PaperModel};
use centaur_workload::{IndexDistribution, RequestGenerator};

fn scaled(model: PaperModel, rows: u64) -> ModelConfig {
    model.config().with_rows_per_table(rows)
}

#[test]
fn centaur_matches_reference_for_every_paper_model_on_every_backend() {
    for paper_model in PaperModel::all() {
        let config = scaled(paper_model, 512);
        let model = DlrmModel::random(&config, 7).expect("valid config");
        let mut runtime = CentaurRuntime::harpv2(model.clone()).expect("model fits on chip");
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 13);
        let batch = generator.functional_batch(4);

        let mut per_backend: Vec<Vec<f32>> = Vec::new();
        for backend in KernelBackend::all() {
            runtime.set_backend(backend);
            let accelerated = runtime
                .infer_batch(&batch.dense, &batch.sparse)
                .expect("accelerator inference succeeds");
            let reference = model
                .forward_batch_with(backend, &batch.dense, &batch.sparse)
                .expect("reference inference succeeds");

            assert_eq!(accelerated.len(), reference.len());
            for (i, (a, r)) in accelerated.iter().zip(&reference).enumerate() {
                assert!(
                    (a - r).abs() < 1e-4,
                    "{paper_model}/{backend:?} sample {i}: accelerator {a} vs reference {r}"
                );
                assert!((0.0..=1.0).contains(a), "probability out of range: {a}");
            }
            per_backend.push(accelerated);
        }
        // The backends must agree with each other on the final probabilities.
        for later in &per_backend[1..] {
            for (a, b) in per_backend[0].iter().zip(later) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{paper_model}: backends disagree ({a} vs {b})"
                );
            }
        }
    }
}

#[test]
fn centaur_matches_reference_under_skewed_traffic() {
    let config = scaled(PaperModel::Dlrm3, 1024);
    let model = DlrmModel::random(&config, 11).unwrap();
    let mut runtime = CentaurRuntime::harpv2(model.clone()).unwrap();
    for backend in KernelBackend::all() {
        runtime.set_backend(backend);
        for (seed, distribution) in [
            (1u64, IndexDistribution::Zipfian { exponent: 1.05 }),
            (
                2,
                IndexDistribution::HotSet {
                    hot_rows: 32,
                    hot_fraction: 0.95,
                },
            ),
        ] {
            let mut generator = RequestGenerator::new(&config, distribution, seed);
            let batch = generator.functional_batch(6);
            let accelerated = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
            let reference = model
                .forward_batch_with(backend, &batch.dense, &batch.sparse)
                .unwrap();
            for (a, r) in accelerated.iter().zip(&reference) {
                assert!((a - r).abs() < 1e-4, "{backend:?}: {a} vs {r}");
            }
        }
    }
}

#[test]
fn prepacked_runtime_is_bitwise_identical_to_packing_runtime() {
    // The whole accelerator datapath — EB-Streamer gathers, bottom MLP,
    // interaction, top MLP, sigmoid — served from resident prepacked
    // panels must equal the on-the-fly-packing path *exactly*, not within
    // tolerance: prepacking only changes when panels are laid out, never
    // what the microkernels accumulate.
    let config = scaled(PaperModel::Dlrm1, 512);
    let model = DlrmModel::random(&config, 17).unwrap();
    let mut runtime = CentaurRuntime::harpv2(model).unwrap();
    let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 19);
    for batch_size in [1usize, 5, 64, 70] {
        let batch = generator.functional_batch(batch_size);
        runtime.set_backend(KernelBackend::Blocked);
        let packing = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
        runtime.set_backend(KernelBackend::BlockedPrepacked);
        let prepacked = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
        assert_eq!(packing, prepacked, "batch {batch_size} diverged");
    }
}

#[test]
fn repeated_requests_are_deterministic_across_the_runtime() {
    let config = scaled(PaperModel::Dlrm1, 256);
    let model = DlrmModel::random(&config, 3).unwrap();
    let mut runtime = CentaurRuntime::harpv2(model).unwrap();
    let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 5);
    let batch = generator.functional_batch(3);
    let first = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
    let second = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
    assert_eq!(first, second);
}

#[test]
fn empty_lookup_lists_reduce_to_zero_and_still_infer() {
    // A sample with zero gathers for some table must still produce a valid
    // probability (SparseLengthsSum over an empty segment is the zero
    // vector).
    let config = ModelConfig::builder()
        .name("sparse-empty")
        .num_tables(3)
        .rows_per_table(64)
        .embedding_dim(16)
        .lookups_per_table(2)
        .dense_features(4)
        .bottom_mlp(&[32, 16])
        .top_mlp(&[16])
        .build()
        .unwrap();
    let model = DlrmModel::random(&config, 9).unwrap();
    let mut runtime = CentaurRuntime::harpv2(model.clone()).unwrap();
    let dense = centaur_dlrm::Matrix::filled(1, 4, 0.25);
    let sparse = vec![vec![vec![1, 2], vec![], vec![63]]];
    let ours = runtime.infer_batch(&dense, &sparse).unwrap();
    let reference = model.forward_batch(&dense, &sparse).unwrap();
    assert!((ours[0] - reference[0]).abs() < 1e-5);
}
