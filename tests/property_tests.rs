//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace: gather/reduce semantics, GEMM equivalence,
//! cache accounting, trace accounting and timing-model monotonicity.

use centaur::dense::MlpUnit;
use centaur::sparse::EbStreamer;
use centaur_dlrm::{EmbeddingBag, EmbeddingTable, Matrix, ReductionOp};
use centaur_memsim::{AccessKind, CacheConfig, SetAssociativeCache, CACHE_LINE_BYTES};
use proptest::prelude::*;

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `gather_reduce(Sum)` equals the naive per-column sum of the gathered
    /// rows, for arbitrary index multisets.
    #[test]
    fn gather_reduce_matches_naive_sum(
        rows in 1usize..64,
        dim in 1usize..16,
        indices in proptest::collection::vec(0u32..64, 0..32),
    ) {
        let table = EmbeddingTable::random(rows, dim, 42);
        let indices: Vec<u32> = indices.into_iter().map(|i| i % rows as u32).collect();
        let reduced = table.gather_reduce(&indices, ReductionOp::Sum).unwrap();
        let mut expected = vec![0.0f32; dim];
        for &i in &indices {
            for (e, &v) in expected.iter_mut().zip(table.row(i).unwrap()) {
                *e += v;
            }
        }
        for (a, b) in reduced.as_slice().iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// The EB-Streamer's functional gather/reduce equals the reference
    /// `EmbeddingBag` operator for arbitrary per-table index lists.
    #[test]
    fn streamer_matches_reference_bag(
        tables in 1usize..5,
        dim in 1usize..12,
        seed in 0u64..1000,
        lens in proptest::collection::vec(0usize..20, 1..5),
    ) {
        let rows = 128u32;
        let bag = EmbeddingBag::random(tables, rows as usize, dim, seed);
        let indices: Vec<Vec<u32>> = (0..tables)
            .map(|t| {
                let len = lens[t % lens.len()];
                (0..len).map(|i| ((seed as u32).wrapping_mul(31).wrapping_add((t * 17 + i * 7) as u32)) % rows).collect()
            })
            .collect();
        let reference = bag.sparse_lengths_reduce(&indices).unwrap();
        let mut streamer = EbStreamer::default();
        let ours = streamer.gather_reduce(&bag, &indices).unwrap();
        prop_assert!(ours.max_abs_diff(&reference) < 1e-4);
    }

    /// The PE array's tiled, output-stationary GEMM equals a naive GEMM for
    /// arbitrary (small) shapes.
    #[test]
    fn tiled_gemm_matches_naive(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..100,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| (((r * 31 + c * 7 + seed as usize) % 13) as f32 - 6.0) * 0.25);
        let b = Matrix::from_fn(k, n, |r, c| (((r * 5 + c * 11 + seed as usize) % 9) as f32 - 4.0) * 0.5);
        let mut unit = MlpUnit::harpv2();
        let tiled = unit.matmul(&a, &b);
        let naive = naive_matmul(&a, &b);
        prop_assert!(tiled.max_abs_diff(&naive) < 1e-3);
    }

    /// Cache accounting is self-consistent: hits + misses == accesses, and
    /// occupancy never exceeds capacity.
    #[test]
    fn cache_stats_are_consistent(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..400),
        ways in 1usize..8,
        sets in 1u64..32,
    ) {
        let mut cache = SetAssociativeCache::new(CacheConfig::new(
            sets * ways as u64 * CACHE_LINE_BYTES,
            ways,
            1.0,
        ));
        for &a in &addrs {
            cache.access(a, AccessKind::Read);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert!(cache.occupancy() <= (sets as usize) * ways);
        // Re-touching the most recent address must hit.
        let last = *addrs.last().unwrap();
        prop_assert!(cache.probe(last));
    }

    /// Reduction over a permuted index list gives the same result (sum is
    /// order-independent up to float tolerance).
    #[test]
    fn reduction_is_permutation_invariant(
        mut indices in proptest::collection::vec(0u32..50, 1..24),
    ) {
        let table = EmbeddingTable::random(50, 8, 7);
        let forward = table.gather_reduce(&indices, ReductionOp::Sum).unwrap();
        indices.reverse();
        let backward = table.gather_reduce(&indices, ReductionOp::Sum).unwrap();
        prop_assert!(forward.max_abs_diff(&backward) < 1e-4);
    }
}

mod timing_properties {
    use super::*;
    use centaur::CentaurSystem;
    use centaur_cpusim::CpuSystem;
    use centaur_dlrm::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Simulated CPU latency grows when the batch grows (holding the
        /// model fixed), and every latency component is non-negative.
        #[test]
        fn cpu_latency_monotonic_in_batch(batch in 1usize..24, seed in 0u64..50) {
            let config = PaperModel::Dlrm1.config();
            let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, seed);
            let small = generator.inference_trace(batch);
            let large = generator.inference_trace(batch * 4);
            let mut system = CpuSystem::broadwell();
            let r_small = system.simulate(&small);
            let mut system = CpuSystem::broadwell();
            let r_large = system.simulate(&large);
            prop_assert!(r_small.total_ns() > 0.0);
            prop_assert!(r_large.total_ns() > r_small.total_ns());
            prop_assert!(r_small.breakdown.embedding_ns >= 0.0);
            prop_assert!(r_small.breakdown.mlp_ns >= 0.0);
        }

        /// The link-side gather stream never exceeds the link's streamer
        /// bandwidth, for any batch size: only *cold* rows (hot-row cache
        /// misses) cross the link, and effective throughput may exceed the
        /// raw link bandwidth **only** by exactly the cache-hit bytes the
        /// on-chip reuse keeps off the wire.
        #[test]
        fn centaur_link_stream_bounded_by_link(batch in 1usize..40, seed in 0u64..50) {
            let config = PaperModel::Dlrm3.config();
            let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, seed);
            let trace = generator.inference_trace(batch);
            let mut system = CentaurSystem::harpv2();
            let result = system.simulate(&trace);
            let limit = system.config().link.streamer_bandwidth_gbs();
            let sparse = &result.sparse;
            // Cold rows stream at no more than the link bandwidth.
            let miss_bytes = sparse.cache_misses * config.row_bytes() as u64;
            let link_gbs = centaur_memsim::Throughput::new(miss_bytes, sparse.gather_reduce_ns)
                .gigabytes_per_second();
            prop_assert!(link_gbs <= limit + 1e-6, "{} > {}", link_gbs, limit);
            // Cache accounting must cover every gather exactly once.
            prop_assert_eq!(sparse.cache_hits + sparse.cache_misses, sparse.gather_requests);
            // Without cache hits the PR 2 bound still holds exactly: the
            // effective (useful-bytes) throughput cannot exceed the link.
            let gbs = result.effective_embedding_throughput().gigabytes_per_second();
            if sparse.cache_hits == 0 {
                prop_assert!(gbs <= limit + 1e-6, "{} > {}", gbs, limit);
            }
        }
    }
}
