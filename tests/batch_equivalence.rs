//! Property tests for the batch-major forward path: for random model
//! shapes, batch sizes and index patterns, `DlrmModel::forward_batch`
//! (one GEMM per MLP layer with `m = batch`) must be numerically equal to
//! looping the per-sample `forward_sample_ws` path, under **every** kernel
//! backend — and the same equivalence must hold end to end through the
//! accelerator's `CentaurRuntime::infer_batch`.

use centaur::CentaurRuntime;
use centaur_dlrm::kernel::KernelBackend;
use centaur_dlrm::{BatchWorkspace, DlrmModel, Matrix, ModelConfig, ModelWorkspace};
use proptest::prelude::*;

/// Builds a small but shape-diverse model configuration from raw draws.
fn config_from(
    num_tables: usize,
    dim: usize,
    dense_features: usize,
    bottom_hidden: usize,
    top_hidden: usize,
) -> ModelConfig {
    ModelConfig::builder()
        .name("batch-equivalence")
        .num_tables(num_tables)
        .rows_per_table(96)
        .embedding_dim(dim)
        .lookups_per_table(3)
        .dense_features(dense_features)
        .bottom_mlp(&[bottom_hidden, dim])
        .top_mlp(&[top_hidden])
        .build()
        .expect("drawn configuration is valid")
}

/// Deterministic per-(sample, table) index lists with varying lengths,
/// including empty bags.
fn indices_for(config: &ModelConfig, batch: usize, seed: u64) -> Vec<Vec<Vec<u32>>> {
    (0..batch)
        .map(|s| {
            (0..config.num_tables)
                .map(|t| {
                    let len = (s + t + seed as usize) % 5; // 0..=4 lookups
                    (0..len as u32)
                        .map(|i| {
                            (seed as u32)
                                .wrapping_mul(2654435761)
                                .wrapping_add((s * 31 + t * 17 + i as usize * 7) as u32)
                                % 96
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch-major `forward_batch` equals the per-sample workspace path for
    /// every backend, on random shapes and batches.
    #[test]
    fn forward_batch_matches_per_sample_path(
        num_tables in 1usize..5,
        dim in 1usize..17,
        dense_features in 1usize..9,
        bottom_hidden in 1usize..24,
        top_hidden in 1usize..24,
        batch in 0usize..11,
        seed in 0u64..500,
    ) {
        let config = config_from(num_tables, dim, dense_features, bottom_hidden, top_hidden);
        let model = DlrmModel::random(&config, seed).expect("valid model");
        let dense = Matrix::from_fn(batch, dense_features, |r, c| {
            ((r * 13 + c * 7 + seed as usize) % 19) as f32 * 0.1 - 0.9
        });
        let batch_indices = indices_for(&config, batch, seed);

        for backend in KernelBackend::all() {
            let batched = model
                .forward_batch_with(backend, &dense, &batch_indices)
                .expect("batched forward succeeds");
            prop_assert_eq!(batched.len(), batch);

            let mut ws = ModelWorkspace::new();
            for (i, indices) in batch_indices.iter().enumerate() {
                let single = model
                    .forward_sample_ws(backend, dense.row(i), indices, &mut ws)
                    .expect("per-sample forward succeeds");
                // The blocked GEMM accumulates each output row in the same
                // order regardless of m, so the two paths agree bitwise.
                prop_assert_eq!(
                    batched[i],
                    single,
                    "{:?} sample {} diverged",
                    backend,
                    i
                );
            }
        }
    }

    /// The same equivalence holds through the accelerator datapath:
    /// `CentaurRuntime::infer_batch` (batch-major EB-Streamer gather +
    /// batched dense complex) equals both the per-sample runtime path and
    /// the reference model.
    #[test]
    fn runtime_infer_batch_matches_per_sample_and_reference(
        num_tables in 1usize..4,
        dim in 1usize..13,
        dense_features in 1usize..7,
        batch in 1usize..9,
        seed in 0u64..200,
    ) {
        let config = config_from(num_tables, dim, dense_features, 16, 8);
        let model = DlrmModel::random(&config, seed).expect("valid model");
        let dense = Matrix::from_fn(batch, dense_features, |r, c| {
            ((r * 11 + c * 5 + seed as usize) % 17) as f32 * 0.125 - 1.0
        });
        let batch_indices = indices_for(&config, batch, seed.wrapping_add(7));

        let mut runtime = CentaurRuntime::harpv2(model.clone()).expect("model fits on chip");
        for backend in KernelBackend::all() {
            runtime.set_backend(backend);
            let accelerated = runtime
                .infer_batch(&dense, &batch_indices)
                .expect("batched accelerator inference succeeds");

            // Per-sample accelerator path.
            for (i, indices) in batch_indices.iter().enumerate() {
                let single = runtime
                    .infer_sample(dense.row(i), indices)
                    .expect("per-sample accelerator inference succeeds");
                prop_assert_eq!(accelerated[i], single, "{:?} sample {}", backend, i);
            }

            // Reference model, batch-major.
            let reference = model
                .forward_batch_with(backend, &dense, &batch_indices)
                .expect("reference forward succeeds");
            for (a, r) in accelerated.iter().zip(&reference) {
                prop_assert!((a - r).abs() < 1e-5, "{:?}: {} vs {}", backend, a, r);
            }
        }
    }

    /// The runtime's remainder-wave path: batches that are **not** a
    /// multiple of `BATCH_WAVE_SAMPLES` leave a short final wave in
    /// `infer_batch_into`'s gather→dense pipeline, which must stay bitwise
    /// identical to the per-sample path — the serving layer's dynamic
    /// batcher dispatches exactly such ragged batch sizes all the time.
    #[test]
    fn remainder_wave_batches_match_per_sample_path(
        waves in 1usize..3,
        remainder in 1usize..8,
        dim in 1usize..9,
        seed in 0u64..200,
    ) {
        let batch = waves * centaur::BATCH_WAVE_SAMPLES + remainder;
        prop_assert!(!batch.is_multiple_of(centaur::BATCH_WAVE_SAMPLES));
        let config = config_from(2, dim, 4, 8, 6);
        let model = DlrmModel::random(&config, seed).expect("valid model");
        let dense = Matrix::from_fn(batch, 4, |r, c| {
            ((r * 7 + c * 3 + seed as usize) % 23) as f32 * 0.08 - 0.8
        });
        let batch_indices = indices_for(&config, batch, seed);

        let mut runtime = CentaurRuntime::harpv2(model).expect("model fits on chip");
        let batched = runtime
            .infer_batch(&dense, &batch_indices)
            .expect("ragged batched inference succeeds");
        prop_assert_eq!(batched.len(), batch);
        for (i, indices) in batch_indices.iter().enumerate() {
            let single = runtime
                .infer_sample(dense.row(i), indices)
                .expect("per-sample inference succeeds");
            prop_assert_eq!(
                batched[i],
                single,
                "sample {} of ragged batch {} diverged",
                i,
                batch
            );
        }
    }

    /// `forward_batch_into` reuses one warm `BatchWorkspace` across varying
    /// batch sizes without corrupting results (high-water-mark buffers must
    /// never leak stale tail data between differently-sized requests).
    #[test]
    fn warm_workspace_is_reusable_across_batch_sizes(
        seed in 0u64..100,
        first in 1usize..9,
        second in 1usize..9,
    ) {
        let config = config_from(3, 8, 5, 16, 8);
        let model = DlrmModel::random(&config, seed).expect("valid model");
        let mut ws = BatchWorkspace::new();
        for &batch in &[first, second, first.max(second), 1] {
            let dense = Matrix::from_fn(batch, 5, |r, c| (r as f32 - c as f32) * 0.2);
            let batch_indices = indices_for(&config, batch, seed);
            let mut out = vec![0.0f32; batch];
            model
                .forward_batch_into(KernelBackend::Blocked, &dense, &batch_indices, &mut out, &mut ws)
                .expect("batched forward succeeds");
            let fresh = model
                .forward_batch_with(KernelBackend::Blocked, &dense, &batch_indices)
                .expect("fresh-workspace forward succeeds");
            prop_assert_eq!(out, fresh);
        }
    }
}
