//! Integration tests asserting the *shape* of the paper's evaluation
//! results across the whole simulator stack — who wins, in which regime,
//! and by roughly what magnitude. Smaller batches than the full paper sweep
//! are used to keep test time reasonable; the bench binaries run the full
//! grid.

use centaur_bench::ExperimentRunner;
use centaur_dlrm::PaperModel;
use centaur_power::SystemKind;

#[test]
fn embedding_layers_dominate_cpu_time_for_lookup_heavy_models() {
    // Figure 5's core observation.
    let runner = ExperimentRunner::new();
    for model in [PaperModel::Dlrm2, PaperModel::Dlrm3, PaperModel::Dlrm4] {
        let result = runner.run_cpu(&model.config(), 32);
        assert!(
            result.breakdown.embedding_fraction() > 0.5,
            "{model}: EMB fraction {:.2}",
            result.breakdown.embedding_fraction()
        );
    }
    // ...while the MLP-heavy DLRM(6) is not embedding-bound.
    let mlp_heavy = runner.run_cpu(&PaperModel::Dlrm6.config(), 32);
    assert!(mlp_heavy.breakdown.mlp_fraction() > mlp_heavy.breakdown.embedding_fraction());
}

#[test]
fn cpu_cache_behaviour_matches_figure6_shape() {
    let runner = ExperimentRunner::new();
    let profile = runner.profile_cache(PaperModel::Dlrm4, 16);
    assert!(profile.embedding.llc_miss_rate > profile.mlp.llc_miss_rate);
    assert!(profile.embedding.llc_mpki > profile.mlp.llc_mpki);
    assert!(profile.mlp.llc_miss_rate < 0.2);
}

#[test]
fn cpu_effective_throughput_grows_with_batch_but_stays_far_below_peak() {
    // Figure 7's shape.
    let runner = ExperimentRunner::new();
    let config = PaperModel::Dlrm4.config();
    let small = runner
        .run_cpu(&config, 1)
        .effective_embedding_throughput()
        .gigabytes_per_second();
    let large = runner
        .run_cpu(&config, 64)
        .effective_embedding_throughput()
        .gigabytes_per_second();
    assert!(
        large > 2.0 * small,
        "throughput should grow with batch: {small:.2} -> {large:.2}"
    );
    assert!(
        large < 0.5 * 76.8,
        "even large batches stay far below the 77 GB/s peak"
    );
}

#[test]
fn centaur_gather_bandwidth_beats_cpu_at_small_batch_and_saturates_near_link_limit() {
    // Figure 13's shape.
    let runner = ExperimentRunner::new();
    let config = PaperModel::Dlrm4.config();
    let cpu = runner
        .run_cpu(&config, 4)
        .effective_embedding_throughput()
        .gigabytes_per_second();
    let centaur = runner
        .run_centaur(&config, 4)
        .effective_embedding_throughput()
        .gigabytes_per_second();
    assert!(
        centaur > 2.0 * cpu,
        "Centaur ({centaur:.1} GB/s) should be far above the CPU ({cpu:.1} GB/s) at small batch"
    );
    let saturated = runner
        .run_centaur(&config, 64)
        .effective_embedding_throughput()
        .gigabytes_per_second();
    assert!(
        (10.0..14.0).contains(&saturated),
        "Centaur gather bandwidth should saturate near ~12 GB/s, got {saturated:.1}"
    );
}

#[test]
fn centaur_speedup_and_efficiency_match_paper_magnitudes() {
    // Figures 14/15: Centaur wins, by the largest margins at small batch,
    // and its energy-efficiency gain exceeds its speedup (lower power).
    let runner = ExperimentRunner::new();
    let mut speedups = Vec::new();
    for model in PaperModel::all() {
        for batch in [1usize, 16] {
            let cmp = runner.compare(model, batch);
            let speedup = cmp.centaur_speedup_vs_cpu();
            speedups.push(speedup);
            let eff_gain = cmp.efficiency_vs_cpu_gpu(SystemKind::Centaur)
                / cmp.efficiency_vs_cpu_gpu(SystemKind::CpuOnly);
            assert!(
                eff_gain > speedup,
                "{model} b{batch}: efficiency gain {eff_gain:.2} should exceed speedup {speedup:.2}"
            );
        }
    }
    let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
    let max = speedups.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        min > 1.0,
        "Centaur should win everywhere at batch <= 16 (min {min:.2})"
    );
    assert!(
        max > 5.0 && max < 40.0,
        "peak speedup {max:.2} should be paper-magnitude"
    );
}

#[test]
fn cpu_gpu_loses_to_cpu_only_at_small_batch_for_embedding_bound_models() {
    // Section VI-D / Figure 15: the PCIe copy and launch overheads make the
    // GPU offload a net loss for embedding-bound models at small batch.
    let runner = ExperimentRunner::new();
    for model in [PaperModel::Dlrm2, PaperModel::Dlrm4] {
        let cmp = runner.compare(model, 1);
        assert!(
            cmp.latency_ns(SystemKind::CpuGpu) > cmp.latency_ns(SystemKind::CpuOnly),
            "{model}: CPU-GPU should be slower than CPU-only at batch 1"
        );
    }
}

#[test]
fn mlp_heavy_model_benefits_from_the_dense_accelerator() {
    // DLRM(6)'s speedup is driven by the dense accelerator, not the
    // EB-Streamer.
    let runner = ExperimentRunner::new();
    let cmp = runner.compare(PaperModel::Dlrm6, 16);
    assert!(cmp.centaur_speedup_vs_cpu() > 1.5);
    assert!(cmp.centaur.breakdown.mlp_fraction() > cmp.centaur.breakdown.embedding_fraction());
}

#[test]
fn speedup_decreases_as_batch_grows_for_lookup_heavy_models() {
    let runner = ExperimentRunner::new();
    let small = runner
        .compare(PaperModel::Dlrm4, 1)
        .centaur_speedup_vs_cpu();
    let large = runner
        .compare(PaperModel::Dlrm4, 64)
        .centaur_speedup_vs_cpu();
    assert!(
        small > large,
        "speedup should shrink with batch: {small:.2} vs {large:.2}"
    );
}
