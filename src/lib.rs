//! Workspace-level umbrella crate for the Centaur reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! [`centaur`], [`centaur_dlrm`], [`centaur_cpusim`], [`centaur_gpusim`],
//! [`centaur_memsim`], [`centaur_workload`], [`centaur_power`],
//! [`centaur_serve`], [`centaur_bench`].

pub use centaur;
pub use centaur_bench;
pub use centaur_cpusim;
pub use centaur_dlrm;
pub use centaur_gpusim;
pub use centaur_memsim;
pub use centaur_power;
pub use centaur_serve;
pub use centaur_workload;
