//! A three-level (L1/L2/LLC) cache hierarchy composite.
//!
//! The hierarchy is *inclusive*: a fill installs the line at every level.
//! Only presence is modelled (no coherence, no writebacks) — sufficient for
//! the miss-rate and MPKI characterization of Figure 6 and for deciding
//! which accesses reach DRAM in the timing models.

use crate::cache::{AccessKind, CacheConfig, CacheStats, SetAssociativeCache};
use serde::{Deserialize, Serialize};

/// Which level of the memory hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryLevel {
    /// Level-1 data cache hit.
    L1,
    /// Level-2 cache hit.
    L2,
    /// Last-level cache hit.
    Llc,
    /// Missed everywhere; serviced by DRAM.
    Memory,
}

impl MemoryLevel {
    /// Returns `true` when the access had to go to DRAM.
    pub fn is_memory(self) -> bool {
        self == MemoryLevel::Memory
    }
}

/// Geometry and latency of the three cache levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// A Broadwell-Xeon-E5-2680v4-like hierarchy: 32 KiB / 8-way L1,
    /// 256 KiB / 8-way L2 and a 35 MiB / 20-way shared LLC.
    pub fn broadwell_like() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 8, 1.6),
            l2: CacheConfig::new(256 * 1024, 8, 5.0),
            llc: CacheConfig::new(35 * 1024 * 1024, 20, 18.0),
        }
    }

    /// A small hierarchy for fast unit tests (4 KiB / 16 KiB / 64 KiB).
    pub fn tiny_for_tests() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(4 * 1024, 4, 1.0),
            l2: CacheConfig::new(16 * 1024, 4, 3.0),
            llc: CacheConfig::new(64 * 1024, 8, 10.0),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::broadwell_like()
    }
}

/// Per-level statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
}

impl HierarchyStats {
    /// LLC miss rate (the quantity plotted in Figure 6(a)).
    pub fn llc_miss_rate(&self) -> f64 {
        self.llc.miss_rate()
    }

    /// LLC misses per thousand instructions (Figure 6(b)).
    pub fn llc_mpki(&self, instructions: u64) -> f64 {
        self.llc.mpki(instructions)
    }

    /// Number of accesses that reached DRAM.
    pub fn memory_accesses(&self) -> u64 {
        self.llc.misses
    }
}

/// A three-level inclusive cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    llc: SetAssociativeCache,
    config: HierarchyConfig,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: &HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: SetAssociativeCache::new(config.l1),
            l2: SetAssociativeCache::new(config.l2),
            llc: SetAssociativeCache::new(config.llc),
            config: *config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs a read access; returns the level that serviced it and
    /// installs the line in every level above the hit point.
    pub fn access_read(&mut self, addr: u64) -> MemoryLevel {
        self.access(addr, AccessKind::Read)
    }

    /// Performs an access of the given kind.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> MemoryLevel {
        if self.l1.access(addr, kind) {
            return MemoryLevel::L1;
        }
        if self.l2.access(addr, kind) {
            // Fill upward.
            self.l1.install(addr);
            return MemoryLevel::L2;
        }
        if self.llc.access(addr, kind) {
            self.l2.install(addr);
            self.l1.install(addr);
            return MemoryLevel::Llc;
        }
        // Miss everywhere: fill all levels.
        self.l1.install(addr);
        self.l2.install(addr);
        // (the LLC access above already installed the line there)
        MemoryLevel::Memory
    }

    /// Probes whether the line is present in the LLC without touching stats.
    pub fn probe_llc(&self, addr: u64) -> bool {
        self.llc.probe(addr)
    }

    /// Pre-loads a line into every level without counting an access
    /// (used to model warmed-up weights resident in cache).
    pub fn install_all_levels(&mut self, addr: u64) {
        self.l1.install(addr);
        self.l2.install(addr);
        self.llc.install(addr);
    }

    /// Aggregate hit latency (in nanoseconds) incurred by an access serviced
    /// at `level`, i.e. the sum of the lookup latencies along the traversal
    /// path (DRAM time is *not* included; the caller adds it from the DRAM
    /// model).
    pub fn traversal_latency_ns(&self, level: MemoryLevel) -> f64 {
        let c = &self.config;
        match level {
            MemoryLevel::L1 => c.l1.latency_ns,
            MemoryLevel::L2 => c.l1.latency_ns + c.l2.latency_ns,
            MemoryLevel::Llc => c.l1.latency_ns + c.l2.latency_ns + c.llc.latency_ns,
            MemoryLevel::Memory => c.l1.latency_ns + c.l2.latency_ns + c.llc.latency_ns,
        }
    }

    /// Statistics of all three levels.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
            llc: *self.llc.stats(),
        }
    }

    /// Resets statistics at every level (contents preserved).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
    }

    /// Flushes contents and statistics at every level.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CACHE_LINE_BYTES;

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = CacheHierarchy::new(&HierarchyConfig::tiny_for_tests());
        assert_eq!(h.access_read(0x4000), MemoryLevel::Memory);
        assert_eq!(h.access_read(0x4000), MemoryLevel::L1);
        let s = h.stats();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.llc.accesses, 1);
        assert_eq!(s.llc.misses, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2_or_llc() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let mut h = CacheHierarchy::new(&cfg);
        // Touch a working set bigger than L1 (4 KiB = 64 lines) but smaller
        // than LLC, twice. The second pass must not go to memory.
        let lines: Vec<u64> = (0..128u64).map(|i| i * CACHE_LINE_BYTES).collect();
        for &l in &lines {
            h.access_read(l);
        }
        h.reset_stats();
        let mut memory_hits = 0;
        for &l in &lines {
            if h.access_read(l) == MemoryLevel::Memory {
                memory_hits += 1;
            }
        }
        assert_eq!(memory_hits, 0);
        assert!(h.stats().l1.misses > 0, "L1 is too small to hold the set");
    }

    #[test]
    fn llc_miss_rate_tracks_working_set() {
        let cfg = HierarchyConfig::tiny_for_tests();
        // Working set 4x the LLC: repeated sweeps keep missing.
        let mut h = CacheHierarchy::new(&cfg);
        let lines: Vec<u64> = (0..(64 * 1024 / CACHE_LINE_BYTES) * 4)
            .map(|i| i * CACHE_LINE_BYTES)
            .collect();
        for _ in 0..2 {
            for &l in &lines {
                h.access_read(l);
            }
        }
        assert!(h.stats().llc_miss_rate() > 0.95);

        // Working set well inside the LLC: second pass entirely hits.
        let mut h2 = CacheHierarchy::new(&cfg);
        let small: Vec<u64> = (0..100u64).map(|i| i * CACHE_LINE_BYTES).collect();
        for &l in &small {
            h2.access_read(l);
        }
        h2.reset_stats();
        for &l in &small {
            assert_ne!(h2.access_read(l), MemoryLevel::Memory);
        }
        assert_eq!(h2.stats().memory_accesses(), 0);
    }

    #[test]
    fn traversal_latency_monotonic() {
        let h = CacheHierarchy::new(&HierarchyConfig::broadwell_like());
        let l1 = h.traversal_latency_ns(MemoryLevel::L1);
        let l2 = h.traversal_latency_ns(MemoryLevel::L2);
        let llc = h.traversal_latency_ns(MemoryLevel::Llc);
        let mem = h.traversal_latency_ns(MemoryLevel::Memory);
        assert!(l1 < l2 && l2 < llc && llc <= mem);
    }

    #[test]
    fn install_all_levels_prewarms() {
        let mut h = CacheHierarchy::new(&HierarchyConfig::tiny_for_tests());
        h.install_all_levels(0x8000);
        assert_eq!(h.access_read(0x8000), MemoryLevel::L1);
        assert!(h.probe_llc(0x8000));
    }

    #[test]
    fn mpki_is_scaled_by_instructions() {
        let mut h = CacheHierarchy::new(&HierarchyConfig::tiny_for_tests());
        for i in 0..1000u64 {
            h.access_read(i * 1024 * 1024); // all distinct lines, all miss
        }
        let stats = h.stats();
        assert!((stats.llc_mpki(1_000_000) - 1.0).abs() < 1e-9);
        assert!((stats.llc_mpki(100_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flush_resets_everything() {
        let mut h = CacheHierarchy::new(&HierarchyConfig::tiny_for_tests());
        h.access_read(0);
        h.flush();
        assert_eq!(h.stats().l1.accesses, 0);
        assert_eq!(h.access_read(0), MemoryLevel::Memory);
    }

    #[test]
    fn broadwell_llc_capacity_is_35mib() {
        let cfg = HierarchyConfig::broadwell_like();
        assert_eq!(cfg.llc.size_bytes, 35 * 1024 * 1024);
        assert_eq!(cfg.llc.ways, 20);
        // Geometry must be internally consistent (construction would panic
        // otherwise).
        assert!(cfg.llc.num_sets() > 0);
    }

    #[test]
    fn memory_level_ordering_and_predicate() {
        assert!(MemoryLevel::L1 < MemoryLevel::Memory);
        assert!(MemoryLevel::Memory.is_memory());
        assert!(!MemoryLevel::Llc.is_memory());
    }
}
