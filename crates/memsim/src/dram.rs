//! DDR4 DRAM timing model: channels, ranks, banks, open-row (row-buffer)
//! tracking and per-channel data-bus occupancy.
//!
//! The model services cache-line (64 B) requests. For each request it
//! computes a completion time given the issue time, accounting for
//! bank-level conflicts, row-buffer hits/misses and the channel bus
//! bandwidth — enough fidelity to reproduce the paper's observation that
//! sparse embedding gathers reach only a small fraction of the ~77 GB/s
//! peak bandwidth while streaming accesses can approach it.

use crate::address::AddressMapping;
use crate::CACHE_LINE_BYTES;
use serde::{Deserialize, Serialize};

/// DRAM timing and organization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Address mapping / geometry.
    pub mapping: AddressMapping,
    /// Column-access latency (tCAS/tCL) in nanoseconds.
    pub t_cas_ns: f64,
    /// Row-to-column delay (tRCD) in nanoseconds.
    pub t_rcd_ns: f64,
    /// Row precharge time (tRP) in nanoseconds.
    pub t_rp_ns: f64,
    /// Time to move one 64 B line over a channel's data bus, in nanoseconds.
    pub burst_ns: f64,
    /// Fixed controller + on-chip-interconnect latency added to every
    /// request, in nanoseconds.
    pub controller_latency_ns: f64,
}

impl DramConfig {
    /// DDR4-2400-like timings on the Broadwell-Xeon-like organization used
    /// by the paper's baseline (4 channels ⇒ ~77 GB/s peak).
    pub fn ddr4_2400() -> Self {
        DramConfig {
            mapping: AddressMapping::broadwell_like(),
            t_cas_ns: 14.16,
            t_rcd_ns: 14.16,
            t_rp_ns: 14.16,
            // 64 B / (19.2 GB/s per channel) = 3.33 ns.
            burst_ns: 64.0 / 19.2,
            controller_latency_ns: 50.0,
        }
    }

    /// Peak aggregate data-bus bandwidth in GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.mapping.channels as f64 * CACHE_LINE_BYTES as f64 / self.burst_ns
    }

    /// Idle (unloaded) read latency: row miss on an idle bank.
    pub fn idle_latency_ns(&self) -> f64 {
        self.controller_latency_ns + self.t_rcd_ns + self.t_cas_ns + self.burst_ns
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

/// Counters accumulated by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total line requests serviced.
    pub requests: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required activating a closed row.
    pub row_empty: u64,
    /// Requests that required precharging another open row first.
    pub row_conflicts: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Time of the last completion, in nanoseconds.
    pub last_completion_ns: f64,
}

impl DramStats {
    /// Fraction of requests that hit in an open row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Achieved bandwidth in GB/s over the window `[0, last_completion]`.
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        if self.last_completion_ns <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.last_completion_ns
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    ready_ns: f64,
}

/// The DRAM device model.
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<BankState>,
    channel_bus_free_ns: Vec<f64>,
    stats: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM model.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![BankState::default(); config.mapping.total_banks()];
        let channel_bus_free_ns = vec![0.0; config.mapping.channels];
        DramModel {
            config,
            banks,
            channel_bus_free_ns,
            stats: DramStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets bank/bus state and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = BankState::default();
        }
        for c in &mut self.channel_bus_free_ns {
            *c = 0.0;
        }
        self.stats = DramStats::default();
    }

    /// Services a 64 B read of the line containing `addr`, issued at
    /// `issue_ns`. Returns the completion time in nanoseconds.
    pub fn access(&mut self, addr: u64, issue_ns: f64) -> f64 {
        let loc = self.config.mapping.map(addr);
        let bank_id = self.config.mapping.flat_bank_id(loc);
        let bank = &mut self.banks[bank_id];

        let start = issue_ns.max(bank.ready_ns);
        let array_latency = match bank.open_row {
            Some(row) if row == loc.row => {
                self.stats.row_hits += 1;
                self.config.t_cas_ns
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.config.t_rp_ns + self.config.t_rcd_ns + self.config.t_cas_ns
            }
            None => {
                self.stats.row_empty += 1;
                self.config.t_rcd_ns + self.config.t_cas_ns
            }
        };
        bank.open_row = Some(loc.row);

        let data_ready = start + array_latency;
        let bus_free = self.channel_bus_free_ns[loc.channel];
        let bus_start = data_ready.max(bus_free);
        let bus_end = bus_start + self.config.burst_ns;
        self.channel_bus_free_ns[loc.channel] = bus_end;
        bank.ready_ns = bus_end;

        let completion = bus_end + self.config.controller_latency_ns;
        self.stats.requests += 1;
        self.stats.bytes += CACHE_LINE_BYTES;
        if completion > self.stats.last_completion_ns {
            self.stats.last_completion_ns = completion;
        }
        completion
    }

    /// Services a batch of `(issue_ns, addr)` requests in order and returns
    /// their completion times.
    pub fn access_all(&mut self, requests: &[(f64, u64)]) -> Vec<f64> {
        requests
            .iter()
            .map(|&(issue, addr)| self.access(addr, issue))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth_matches_paper_baseline() {
        let c = DramConfig::ddr4_2400();
        // The paper quotes 77 GB/s of CPU memory bandwidth.
        assert!((c.peak_bandwidth_gbs() - 76.8).abs() < 0.5);
    }

    #[test]
    fn idle_latency_is_sub_100ns() {
        let c = DramConfig::ddr4_2400();
        assert!(c.idle_latency_ns() > 50.0 && c.idle_latency_ns() < 100.0);
    }

    #[test]
    fn single_access_latency_is_idle_latency() {
        let mut d = DramModel::new(DramConfig::ddr4_2400());
        let done = d.access(0x1234_5678, 0.0);
        assert!((done - d.config().idle_latency_ns()).abs() < 1e-9);
        assert_eq!(d.stats().requests, 1);
        assert_eq!(d.stats().row_empty, 1);
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        let cfg = DramConfig::ddr4_2400();
        let mapping = cfg.mapping;
        let mut d = DramModel::new(cfg);
        // Two lines in the same row: second access is a row hit.
        let a = 0u64;
        let done_a = d.access(a, 0.0);
        let same_row = a + mapping.channels as u64
            * mapping.banks_per_rank as u64
            * mapping.ranks_per_channel as u64
            * CACHE_LINE_BYTES; // next column in same bank/row
        let done_b = d.access(same_row, done_a);
        let hit_latency = done_b - done_a;

        // A line in the same bank but a different row: row conflict.
        let mut d2 = DramModel::new(cfg);
        d2.access(a, 0.0);
        let stride = mapping.channels as u64
            * mapping.banks_per_rank as u64
            * mapping.ranks_per_channel as u64
            * CACHE_LINE_BYTES;
        let other_row = a + stride * mapping.lines_per_row();
        let t0 = d2.stats().last_completion_ns;
        let done_c = d2.access(other_row, t0);
        let conflict_latency = done_c - t0;

        assert!(hit_latency < conflict_latency);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d2.stats().row_conflicts, 1);
    }

    #[test]
    fn streaming_reads_approach_peak_bandwidth() {
        let cfg = DramConfig::ddr4_2400();
        let mut d = DramModel::new(cfg);
        // Issue a large number of sequential lines all at time 0 (a perfectly
        // pipelined stream); achieved bandwidth should be a large fraction of
        // peak.
        let n = 40_000u64;
        let requests: Vec<(f64, u64)> = (0..n).map(|i| (0.0, i * CACHE_LINE_BYTES)).collect();
        d.access_all(&requests);
        let bw = d.stats().achieved_bandwidth_gbs();
        assert!(
            bw > 0.7 * cfg.peak_bandwidth_gbs(),
            "streaming bandwidth too low: {bw:.1} GB/s"
        );
        assert!(bw <= cfg.peak_bandwidth_gbs() + 1e-6);
        assert!(d.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn serialized_random_reads_are_latency_bound() {
        let cfg = DramConfig::ddr4_2400();
        let mut d = DramModel::new(cfg);
        // One outstanding request at a time (dependent chain), random-ish
        // addresses: bandwidth collapses to ~64B / idle latency.
        let mut t = 0.0;
        let mut addr = 0x9E3779B97F4A7C15u64 % (1 << 34);
        for _ in 0..2_000 {
            t = d.access(addr, t);
            addr = addr.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345) % (1 << 34);
        }
        let bw = d.stats().achieved_bandwidth_gbs();
        assert!(
            bw < 1.5,
            "serialized random reads should be ~0.8 GB/s, got {bw:.2}"
        );
    }

    #[test]
    fn bank_conflicts_serialize_requests() {
        let cfg = DramConfig::ddr4_2400();
        let mapping = cfg.mapping;
        let mut d = DramModel::new(cfg);
        // Many simultaneous requests to different rows of the *same* bank.
        let stride = mapping.channels as u64
            * mapping.banks_per_rank as u64
            * mapping.ranks_per_channel as u64
            * CACHE_LINE_BYTES
            * mapping.lines_per_row();
        let completions: Vec<f64> = (0..8).map(|i| d.access(i * stride, 0.0)).collect();
        // Each successive completion must be strictly later: the bank is busy.
        for w in completions.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(d.stats().row_conflicts, 7);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = DramModel::new(DramConfig::ddr4_2400());
        d.access(0, 0.0);
        d.reset();
        assert_eq!(d.stats().requests, 0);
        assert_eq!(d.stats().last_completion_ns, 0.0);
        // After reset the same access sees an empty row again.
        d.access(0, 0.0);
        assert_eq!(d.stats().row_empty, 1);
    }

    #[test]
    fn stats_rates_handle_empty() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.achieved_bandwidth_gbs(), 0.0);
    }
}
