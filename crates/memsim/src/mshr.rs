//! Miss-status-holding-register (MSHR) file.
//!
//! The number of MSHRs bounds how many distinct cache-line misses a core can
//! have outstanding simultaneously — the paper's explanation for why
//! latency-optimized CPUs cannot extract enough memory-level parallelism
//! from sparse embedding gathers (Section III-C).

use std::collections::HashMap;

use crate::line_address;

/// An MSHR file tracking outstanding misses at cache-line granularity.
///
/// Secondary misses to an already-outstanding line merge into the existing
/// entry (as in real hardware) and therefore do not consume an extra MSHR.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    // line address -> number of merged requests waiting on it
    outstanding: HashMap<u64, usize>,
    peak_occupancy: usize,
    allocations: u64,
    merges: u64,
    rejections: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        MshrFile {
            capacity,
            outstanding: HashMap::new(),
            peak_occupancy: 0,
            allocations: 0,
            merges: 0,
            rejections: 0,
        }
    }

    /// Maximum number of distinct outstanding lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct lines currently outstanding.
    pub fn occupancy(&self) -> usize {
        self.outstanding.len()
    }

    /// Highest occupancy observed since creation.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Number of primary-miss allocations performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of secondary misses merged into existing entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of requests rejected because the file was full.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Returns `true` if no new primary miss can be accepted.
    pub fn is_full(&self) -> bool {
        self.outstanding.len() >= self.capacity
    }

    /// Returns `true` if the line containing `addr` is already outstanding.
    pub fn is_outstanding(&self, addr: u64) -> bool {
        self.outstanding.contains_key(&line_address(addr))
    }

    /// Tries to track a miss for the line containing `addr`.
    ///
    /// Returns `true` if the miss is now tracked (either newly allocated or
    /// merged into an existing entry), `false` if the file is full and the
    /// request must stall.
    pub fn try_allocate(&mut self, addr: u64) -> bool {
        let line = line_address(addr);
        if let Some(count) = self.outstanding.get_mut(&line) {
            *count += 1;
            self.merges += 1;
            return true;
        }
        if self.outstanding.len() >= self.capacity {
            self.rejections += 1;
            return false;
        }
        self.outstanding.insert(line, 1);
        self.allocations += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.outstanding.len());
        true
    }

    /// Completes the miss for the line containing `addr`, releasing its
    /// entry (and waking all merged requests).
    ///
    /// Returns the number of merged requests that were waiting, or `None`
    /// when the line was not outstanding.
    pub fn complete(&mut self, addr: u64) -> Option<usize> {
        self.outstanding.remove(&line_address(addr))
    }

    /// Clears all outstanding entries (statistics are kept).
    pub fn drain(&mut self) {
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_reject() {
        let mut m = MshrFile::new(2);
        assert!(m.try_allocate(0));
        assert!(m.try_allocate(64));
        assert!(m.is_full());
        assert!(!m.try_allocate(128));
        assert_eq!(m.rejections(), 1);
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn secondary_miss_merges_without_new_entry() {
        let mut m = MshrFile::new(1);
        assert!(m.try_allocate(0));
        // Same line (different byte) merges even though the file is full.
        assert!(m.try_allocate(32));
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.merges(), 1);
        // Completing releases both.
        assert_eq!(m.complete(0), Some(2));
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn complete_unknown_line_returns_none() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.complete(0x1000), None);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut m = MshrFile::new(8);
        for i in 0..5u64 {
            m.try_allocate(i * 64);
        }
        m.complete(0);
        m.complete(64);
        assert_eq!(m.occupancy(), 3);
        assert_eq!(m.peak_occupancy(), 5);
    }

    #[test]
    fn drain_clears_outstanding() {
        let mut m = MshrFile::new(4);
        m.try_allocate(0);
        m.try_allocate(64);
        m.drain();
        assert_eq!(m.occupancy(), 0);
        assert!(!m.is_outstanding(0));
        assert_eq!(m.allocations(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        MshrFile::new(0);
    }

    #[test]
    fn outstanding_probe() {
        let mut m = MshrFile::new(2);
        m.try_allocate(0x1234);
        assert!(m.is_outstanding(0x1200));
        assert!(!m.is_outstanding(0x2000));
    }
}
