//! Physical-address → DRAM-coordinate mapping.
//!
//! The mapping interleaves consecutive cache lines across channels, then
//! banks, so that streaming accesses spread across the memory system — the
//! standard XOR-free open-page mapping used by Intel server memory
//! controllers at a first approximation.

use crate::CACHE_LINE_BYTES;
use serde::{Deserialize, Serialize};

/// Where a physical address lands in the DRAM organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Memory channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// DRAM row within the bank (the unit of row-buffer locality).
    pub row: u64,
    /// Column (byte offset of the cache line within the row).
    pub column: u64,
}

/// Address-mapping configuration: the DRAM organization geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressMapping {
    /// Number of memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
}

impl AddressMapping {
    /// A Broadwell-Xeon-like organization: 4 channels of DDR4, 2 ranks per
    /// channel, 16 banks per rank, 8 KiB row buffers.
    pub fn broadwell_like() -> Self {
        AddressMapping {
            channels: 4,
            ranks_per_channel: 2,
            banks_per_rank: 16,
            row_bytes: 8 * 1024,
        }
    }

    /// Total number of banks across the whole memory system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Cache lines per DRAM row.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / CACHE_LINE_BYTES
    }

    /// Maps a physical address to its DRAM location.
    ///
    /// Address bits are consumed from the bottom as: line offset → channel →
    /// bank (within rank) → rank → column (line within row) → row.
    pub fn map(&self, addr: u64) -> DramLocation {
        let line = addr / CACHE_LINE_BYTES;
        let channel = (line % self.channels as u64) as usize;
        let line = line / self.channels as u64;
        let bank = (line % self.banks_per_rank as u64) as usize;
        let line = line / self.banks_per_rank as u64;
        let rank = (line % self.ranks_per_channel as u64) as usize;
        let line = line / self.ranks_per_channel as u64;
        let lines_per_row = self.lines_per_row();
        let column = (line % lines_per_row) * CACHE_LINE_BYTES;
        let row = line / lines_per_row;
        DramLocation {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }

    /// Flat bank identifier (unique across channels and ranks), useful for
    /// indexing per-bank state.
    pub fn flat_bank_id(&self, loc: DramLocation) -> usize {
        (loc.channel * self.ranks_per_channel + loc.rank) * self.banks_per_rank + loc.bank
    }
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::broadwell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_geometry() {
        let m = AddressMapping::broadwell_like();
        assert_eq!(m.total_banks(), 4 * 2 * 16);
        assert_eq!(m.lines_per_row(), 128);
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let m = AddressMapping::broadwell_like();
        let locs: Vec<_> = (0..4).map(|i| m.map(i * CACHE_LINE_BYTES)).collect();
        let channels: Vec<_> = locs.iter().map(|l| l.channel).collect();
        assert_eq!(channels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_line_maps_identically() {
        let m = AddressMapping::broadwell_like();
        assert_eq!(m.map(0x1_0000), m.map(0x1_0000 + 63));
        assert_ne!(m.map(0x1_0000), m.map(0x1_0000 + 64));
    }

    #[test]
    fn mapping_is_injective_over_a_window() {
        let m = AddressMapping {
            channels: 2,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            row_bytes: 1024,
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let loc = m.map(i * CACHE_LINE_BYTES);
            assert!(
                seen.insert((loc.channel, loc.rank, loc.bank, loc.row, loc.column)),
                "collision at line {i}"
            );
        }
    }

    #[test]
    fn flat_bank_ids_are_dense_and_unique() {
        let m = AddressMapping::broadwell_like();
        let mut seen = std::collections::HashSet::new();
        for i in 0..m.total_banks() as u64 * 4 {
            let id = m.flat_bank_id(m.map(i * CACHE_LINE_BYTES));
            assert!(id < m.total_banks());
            seen.insert(id);
        }
        assert_eq!(seen.len(), m.total_banks());
    }

    #[test]
    fn row_changes_after_row_bytes_worth_of_lines_in_a_bank() {
        let m = AddressMapping::broadwell_like();
        // Walk addresses that stay in channel 0, bank 0, rank 0: stride =
        // channels * banks * ranks lines.
        let stride =
            (m.channels * m.banks_per_rank * m.ranks_per_channel) as u64 * CACHE_LINE_BYTES;
        let first = m.map(0);
        let lines_per_row = m.lines_per_row();
        let same_row = m.map(stride * (lines_per_row - 1));
        let next_row = m.map(stride * lines_per_row);
        assert_eq!(first.row, same_row.row);
        assert_eq!(first.row + 1, next_row.row);
        assert_eq!(first.bank, next_row.bank);
    }
}
