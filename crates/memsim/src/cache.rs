//! A single level of set-associative cache with LRU replacement.

use crate::{line_address, CACHE_LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes (writes allocate, like real write-back
/// write-allocate caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessKind {
    /// Demand load.
    #[default]
    Read,
    /// Store (write-allocate).
    Write,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency contribution of this level in nanoseconds (used by
    /// the timing models; hit/miss accounting ignores it).
    pub latency_ns: f64,
}

impl CacheConfig {
    /// Creates a config after sanity-checking the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways *
    /// CACHE_LINE_BYTES`, or if either is zero.
    pub fn new(size_bytes: u64, ways: usize, latency_ns: f64) -> Self {
        assert!(
            size_bytes > 0 && ways > 0,
            "cache geometry must be non-zero"
        );
        assert_eq!(
            size_bytes % (ways as u64 * CACHE_LINE_BYTES),
            0,
            "capacity must divide evenly into sets"
        );
        CacheConfig {
            size_bytes,
            ways,
            latency_ns,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * CACHE_LINE_BYTES)
    }
}

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand instructions given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    last_used: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks presence only (no data, no dirty bits): that is all the
/// characterization experiments need, and it keeps multi-GB-footprint
/// simulations cheap.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    tick: u64,
}

impl SetAssociativeCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets() as usize;
        SetAssociativeCache {
            config,
            sets: vec![vec![Way::default(); config.ways]; num_sets],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (contents are preserved), e.g. after a warm-up
    /// phase.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line and clears statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                way.valid = false;
            }
        }
        self.reset_stats();
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / CACHE_LINE_BYTES) % self.config.num_sets()) as usize
    }

    /// Returns `true` if the line containing `addr` is currently cached,
    /// without disturbing LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = line_address(addr);
        let set = &self.sets[self.set_index(line)];
        set.iter().any(|w| w.valid && w.tag == line)
    }

    /// Performs an access; returns `true` on hit. A miss fills the line,
    /// evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: u64, _kind: AccessKind) -> bool {
        let line = line_address(addr);
        let set_idx = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        self.stats.accesses += 1;

        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            way.last_used = tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;

        // Fill: prefer an invalid way, otherwise evict LRU.
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag: line,
                valid: true,
                last_used: tick,
            };
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.last_used)
                .expect("sets always have at least one way");
            *victim = Way {
                tag: line,
                valid: true,
                last_used: tick,
            };
            self.stats.evictions += 1;
        }
        false
    }

    /// Inserts a line without counting an access (used to model fills from
    /// lower levels or warm-up pre-loads).
    pub fn install(&mut self, addr: u64) {
        let line = line_address(addr);
        let set_idx = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            way.last_used = tick;
            return;
        }
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag: line,
                valid: true,
                last_used: tick,
            };
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.last_used)
                .expect("non-empty set");
            *victim = Way {
                tag: line,
                valid: true,
                last_used: tick,
            };
            self.stats.evictions += 1;
        }
    }

    /// Number of currently valid lines (for occupancy assertions in tests).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(ways: usize, sets: u64) -> SetAssociativeCache {
        SetAssociativeCache::new(CacheConfig::new(
            sets * ways as u64 * CACHE_LINE_BYTES,
            ways,
            1.0,
        ))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 8, 1.2);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn config_rejects_uneven_geometry() {
        CacheConfig::new(1000, 3, 1.0);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny_cache(4, 16);
        assert!(!c.access(0x100, AccessKind::Read));
        assert!(c.access(0x100, AccessKind::Read));
        assert!(c.access(0x13F, AccessKind::Read), "same line hits");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways: addresses A, B, C map to the same set.
        let mut c = tiny_cache(2, 1);
        let a = 0u64;
        let b = 64u64;
        let x = 128u64;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        // Touch A so B becomes LRU.
        c.access(a, AccessKind::Read);
        // X evicts B.
        c.access(x, AccessKind::Read);
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(x));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny_cache(4, 4); // 16 lines capacity
        let lines: Vec<u64> = (0..64u64).map(|i| i * CACHE_LINE_BYTES).collect();
        // Two passes over a 64-line working set: every access misses because
        // LRU evicts lines before reuse.
        for _ in 0..2 {
            for &l in &lines {
                c.access(l, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits, 0);
        assert!((c.stats().miss_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut c = tiny_cache(8, 8); // 64 lines
        let lines: Vec<u64> = (0..32u64).map(|i| i * CACHE_LINE_BYTES).collect();
        for &l in &lines {
            c.access(l, AccessKind::Read);
        }
        c.reset_stats();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, AccessKind::Read);
            }
        }
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.stats().miss_rate(), 0.0);
    }

    #[test]
    fn probe_does_not_affect_stats() {
        let mut c = tiny_cache(2, 2);
        c.access(0, AccessKind::Read);
        let before = *c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(1 << 20));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn install_fills_without_counting_access() {
        let mut c = tiny_cache(2, 2);
        c.install(0x40);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x40, AccessKind::Read));
    }

    #[test]
    fn flush_clears_contents_and_stats() {
        let mut c = tiny_cache(2, 2);
        c.access(0, AccessKind::Read);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.access(0, AccessKind::Read));
    }

    #[test]
    fn stats_helpers() {
        let s = CacheStats {
            accesses: 1000,
            hits: 600,
            misses: 400,
            evictions: 10,
        };
        assert!((s.miss_rate() - 0.4).abs() < 1e-9);
        assert!((s.mpki(10_000) - 40.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(CacheStats::default().mpki(0), 0.0);
        let mut merged = s;
        merged.merge(&s);
        assert_eq!(merged.accesses, 2000);
        assert_eq!(merged.evictions, 20);
    }

    #[test]
    fn writes_allocate_like_reads() {
        let mut c = tiny_cache(2, 2);
        assert!(!c.access(0x80, AccessKind::Write));
        assert!(c.access(0x80, AccessKind::Read));
    }

    #[test]
    fn occupancy_caps_at_capacity() {
        let mut c = tiny_cache(4, 4);
        for i in 0..1000u64 {
            c.access(i * CACHE_LINE_BYTES, AccessKind::Read);
        }
        assert_eq!(c.occupancy(), 16);
    }
}
