//! Small shared measurement helpers (throughput accounting).

use serde::{Deserialize, Serialize};

/// Bytes moved over a time window, with convenience conversions.
///
/// The paper's *effective throughput* metric is exactly this: useful bytes
/// gathered divided by the latency of the embedding stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Useful bytes transferred.
    pub bytes: u64,
    /// Elapsed time in nanoseconds.
    pub elapsed_ns: f64,
}

impl Throughput {
    /// Creates a throughput measurement.
    pub fn new(bytes: u64, elapsed_ns: f64) -> Self {
        Throughput { bytes, elapsed_ns }
    }

    /// Throughput in gigabytes per second (returns 0 for a zero-length
    /// window).
    pub fn gigabytes_per_second(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.elapsed_ns
        }
    }

    /// Elapsed time in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_ns / 1_000.0
    }

    /// Elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns / 1_000_000.0
    }

    /// Combines two measurements covering *disjoint, sequential* windows.
    pub fn combine(&self, other: &Throughput) -> Throughput {
        Throughput {
            bytes: self.bytes + other.bytes,
            elapsed_ns: self.elapsed_ns + other.elapsed_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbs_conversion() {
        // 77 bytes in 1 ns = 77 GB/s.
        let t = Throughput::new(77, 1.0);
        assert!((t.gigabytes_per_second() - 77.0).abs() < 1e-9);
        // 1 GiB-ish in 1 s.
        let t = Throughput::new(1_000_000_000, 1e9);
        assert!((t.gigabytes_per_second() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_zero_throughput() {
        assert_eq!(Throughput::new(100, 0.0).gigabytes_per_second(), 0.0);
    }

    #[test]
    fn unit_conversions() {
        let t = Throughput::new(0, 2_500_000.0);
        assert!((t.elapsed_us() - 2500.0).abs() < 1e-9);
        assert!((t.elapsed_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn combine_adds_both_fields() {
        let a = Throughput::new(100, 10.0);
        let b = Throughput::new(50, 40.0);
        let c = a.combine(&b);
        assert_eq!(c.bytes, 150);
        assert!((c.elapsed_ns - 50.0).abs() < 1e-9);
        assert!((c.gigabytes_per_second() - 3.0).abs() < 1e-9);
    }
}
