//! # centaur-memsim
//!
//! A cycle-approximate memory-subsystem simulator used to reproduce the
//! CPU-side characterization of the Centaur paper (Figures 5–7): a
//! set-associative cache hierarchy (L1/L2/LLC) with LRU replacement, MSHR
//! files that bound memory-level parallelism, and a DDR4 DRAM model with
//! channels, ranks, banks, open-row tracking and per-channel data-bus
//! bandwidth.
//!
//! The simulator is trace-driven: callers replay a stream of physical
//! addresses (e.g. embedding gathers produced by `centaur-workload`) and
//! read back hit/miss statistics plus service timing. Nothing here knows
//! about recommendation models — it is a reusable substrate.
//!
//! ```
//! use centaur_memsim::{CacheHierarchy, HierarchyConfig, MemoryLevel};
//!
//! let mut hierarchy = CacheHierarchy::new(&HierarchyConfig::broadwell_like());
//! // First touch of an address misses all the way to memory...
//! assert_eq!(hierarchy.access_read(0x1000), MemoryLevel::Memory);
//! // ...and the second touch hits in L1.
//! assert_eq!(hierarchy.access_read(0x1000), MemoryLevel::L1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod stats;

pub use address::{AddressMapping, DramLocation};
pub use cache::{AccessKind, CacheConfig, CacheStats, SetAssociativeCache};
pub use dram::{DramConfig, DramModel, DramStats};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyStats, MemoryLevel};
pub use mshr::MshrFile;
pub use stats::Throughput;

/// Cache-line size assumed throughout the simulator (bytes).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Returns the cache-line-aligned address containing `addr`.
pub fn line_address(addr: u64) -> u64 {
    addr & !(CACHE_LINE_BYTES - 1)
}

/// Returns every distinct cache line touched by a `[addr, addr + bytes)`
/// access.
pub fn lines_spanned(addr: u64, bytes: u64) -> Vec<u64> {
    if bytes == 0 {
        return Vec::new();
    }
    let first = line_address(addr);
    let last = line_address(addr + bytes - 1);
    (0..=(last - first) / CACHE_LINE_BYTES)
        .map(|i| first + i * CACHE_LINE_BYTES)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_address_masks_low_bits() {
        assert_eq!(line_address(0), 0);
        assert_eq!(line_address(63), 0);
        assert_eq!(line_address(64), 64);
        assert_eq!(line_address(130), 128);
    }

    #[test]
    fn lines_spanned_handles_alignment() {
        assert_eq!(lines_spanned(0, 0), Vec::<u64>::new());
        assert_eq!(lines_spanned(0, 1), vec![0]);
        assert_eq!(lines_spanned(0, 64), vec![0]);
        assert_eq!(lines_spanned(0, 65), vec![0, 64]);
        // A 128-byte embedding row starting mid-line touches 3 lines.
        assert_eq!(lines_spanned(32, 128), vec![0, 64, 128]);
        // Aligned 128-byte row touches exactly 2 lines.
        assert_eq!(lines_spanned(128, 128), vec![128, 192]);
    }
}
