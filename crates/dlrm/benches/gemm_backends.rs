//! Criterion comparison of the GEMM backends, including the acceptance
//! shape from the perf-backend issue: a 256×512 × 512×512 `f32` matmul,
//! where `Blocked` must beat `Naive` by ≥ 5×.
//!
//! Also times the fused GEMM+bias+activation epilogue against the unfused
//! sequence, and the zero-allocation MLP workspace path against the
//! allocating one.

use centaur_dlrm::kernel::{self, FusedAct, KernelBackend, Workspace};
use centaur_dlrm::{Activation, Matrix, Mlp};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn inputs(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a = (0..m * k)
        .map(|i| ((i * 31) % 17) as f32 * 0.125 - 1.0)
        .collect();
    let b = (0..k * n)
        .map(|i| ((i * 7) % 13) as f32 * 0.25 - 1.5)
        .collect();
    (a, b, vec![0.0; m * n])
}

fn bench_gemm_shape(c: &mut Criterion, m: usize, k: usize, n: usize) {
    let (a, b, mut out) = inputs(m, k, n);
    let mut ws = Workspace::new();
    for backend in KernelBackend::all() {
        c.bench_function(&format!("gemm_{}_{m}x{k}x{n}", backend.label()), |bench| {
            bench.iter(|| {
                kernel::gemm_into(
                    backend,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    m,
                    k,
                    n,
                    &mut ws,
                )
            })
        });
    }
}

fn bench_backends_acceptance_shape(c: &mut Criterion) {
    // The acceptance-criteria shape: blocked must be ≥ 5× naive here.
    bench_gemm_shape(c, 256, 512, 512);
}

fn bench_backends_mlp_shape(c: &mut Criterion) {
    // A typical DLRM MLP layer shape: batch 64 through a 128→64 layer.
    bench_gemm_shape(c, 64, 128, 64);
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let (m, k, n) = (64, 512, 256);
    let (a, b, mut out) = inputs(m, k, n);
    let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.01 - 1.0).collect();
    let mut pack = Vec::new();

    c.bench_function("gemm_bias_relu_fused_64x512x256", |bench| {
        bench.iter(|| {
            kernel::gemm_bias_act_into(
                KernelBackend::Blocked,
                black_box(&a),
                black_box(&b),
                Some(&bias),
                FusedAct::Relu,
                &mut out,
                m,
                k,
                n,
                &mut pack,
            )
        })
    });

    let am = Matrix::from_vec(m, k, a.clone()).unwrap();
    let bm = Matrix::from_vec(k, n, b.clone()).unwrap();
    let biasm = Matrix::row_vector(&bias);
    c.bench_function("gemm_bias_relu_unfused_64x512x256", |bench| {
        bench.iter(|| {
            black_box(&am)
                .matmul_with(KernelBackend::Blocked, black_box(&bm))
                .unwrap()
                .add_bias(&biasm)
                .unwrap()
                .relu()
        })
    });
}

fn bench_mlp_workspace(c: &mut Criterion) {
    let mlp = Mlp::random(&[512, 256, 128, 64], Activation::Relu, 7).unwrap();
    let x = Matrix::from_fn(32, 512, |r, col| ((r * 13 + col) % 9) as f32 * 0.1 - 0.4);
    let mut ws = Workspace::new();

    c.bench_function("mlp_forward_allocating_b32_512-256-128-64", |bench| {
        bench.iter(|| mlp.forward(black_box(&x)).unwrap())
    });
    c.bench_function("mlp_forward_workspace_b32_512-256-128-64", |bench| {
        bench.iter(|| {
            mlp.forward_ws(
                KernelBackend::Blocked,
                black_box(x.as_slice()),
                32,
                512,
                &mut ws,
            )
            .unwrap()
            .1
        })
    });
}

criterion_group!(
    gemm_backends,
    bench_backends_acceptance_shape,
    bench_backends_mlp_shape,
    bench_fused_vs_unfused,
    bench_mlp_workspace,
);
criterion_main!(gemm_backends);
