//! Criterion comparison of prepacked-panel GEMM against the
//! on-the-fly-packing blocked kernel, at the shapes where the per-call
//! `O(k·n)` pack actually matters: `m = 1` single-sample serving and the
//! small coalesced batches a dynamic batcher dispatches under light load.
//! At `m = 1` the pack is the same order of work as the multiply itself —
//! prepacking once at load is where the batch-1 win comes from; at large
//! `m` the pack amortizes and the two paths converge.

use centaur_dlrm::kernel::{self, FusedAct, KernelBackend, PrepackedWeights, Workspace};
use centaur_dlrm::{Activation, DenseLayer, Matrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn inputs(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a = (0..m * k)
        .map(|i| ((i * 31) % 17) as f32 * 0.125 - 1.0)
        .collect();
    let b = (0..k * n)
        .map(|i| ((i * 7) % 13) as f32 * 0.25 - 1.5)
        .collect();
    (a, b, vec![0.0; m * n])
}

fn bench_prepacked_vs_packing(c: &mut Criterion) {
    // m = 1 serving, m = 4/16 small dynamic batches, m = 256 (pack
    // amortized — the convergence point), on a paper-sized 512×512 layer.
    for &(m, k, n) in &[
        (1usize, 512usize, 512usize),
        (4, 512, 512),
        (16, 512, 512),
        (256, 512, 512),
    ] {
        let (a, b, mut out) = inputs(m, k, n);
        let mut ws = Workspace::new();
        c.bench_function(&format!("gemm_packing_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                kernel::gemm_into(
                    KernelBackend::Blocked,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    m,
                    k,
                    n,
                    &mut ws,
                )
            })
        });
        let packed = PrepackedWeights::pack(&b, k, n);
        c.bench_function(&format!("gemm_prepacked_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                kernel::gemm_prepacked(
                    KernelBackend::Blocked,
                    black_box(&a),
                    black_box(&packed),
                    &mut out,
                    m,
                )
            })
        });
    }
}

fn bench_prepacked_fused_layer(c: &mut Criterion) {
    // The fused bias+activation epilogue variants, through a real
    // DenseLayer at the batch-1 serving shape.
    let (m, k, n) = (1usize, 512usize, 256usize);
    let (a, b, mut out) = inputs(m, k, n);
    let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.01 - 1.0).collect();
    let mut pack = Vec::new();
    c.bench_function("gemm_bias_relu_packing_1x512x256", |bench| {
        bench.iter(|| {
            kernel::gemm_bias_act_into(
                KernelBackend::Blocked,
                black_box(&a),
                black_box(&b),
                Some(&bias),
                FusedAct::Relu,
                &mut out,
                m,
                k,
                n,
                &mut pack,
            )
        })
    });
    let packed = PrepackedWeights::pack(&b, k, n);
    c.bench_function("gemm_bias_relu_prepacked_1x512x256", |bench| {
        bench.iter(|| {
            kernel::gemm_bias_act_prepacked(
                KernelBackend::BlockedPrepacked,
                black_box(&a),
                black_box(&packed),
                Some(&bias),
                FusedAct::Relu,
                &mut out,
                m,
            )
        })
    });

    let layer = DenseLayer::random(k, n, Activation::Relu, 7);
    let x = Matrix::from_vec(m, k, a).unwrap();
    for backend in [KernelBackend::Blocked, KernelBackend::BlockedPrepacked] {
        c.bench_function(
            &format!("dense_layer_{}_1x512x256", backend.label()),
            |bench| bench.iter(|| layer.forward_with(backend, black_box(&x)).unwrap()),
        );
    }
}

criterion_group!(
    prepacked,
    bench_prepacked_vs_packing,
    bench_prepacked_fused_layer
);
criterion_main!(prepacked);
