//! Property tests pinning the vectorized sparse gather-reduce backends to
//! the `Scalar` correctness oracle — **bitwise**, not within tolerance:
//! the optimized kernels accumulate every output element in index order
//! with plain IEEE adds (AVX2 dispatch excludes FMA), so any difference at
//! all is a bug.

use centaur_dlrm::kernel::SparseBackend;
use centaur_dlrm::{DlrmError, EmbeddingBag, EmbeddingTable, ReductionOp};
use proptest::prelude::*;

/// Deterministic pseudo-random table values for a given seed.
fn table_for(rows: usize, dim: usize, seed: u64) -> EmbeddingTable {
    EmbeddingTable::from_fn(rows, dim, |r, c| {
        let x = ((r * 131 + c * 17) as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(seed);
        ((x >> 33) % 255) as f32 * 0.03125 - 4.0
    })
}

/// Deterministic index list with controllable skew: even seeds draw from
/// the whole table, odd seeds hammer a small hot set (repeated rows are
/// exactly what the streamer's cache model sees in production).
fn indices_for(rows: usize, len: usize, seed: u64) -> Vec<u32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(2862933555777941757)
                .wrapping_add(seed);
            let span = if seed % 2 == 1 {
                rows.div_ceil(8)
            } else {
                rows
            };
            ((x >> 32) % span.max(1) as u64) as u32
        })
        .collect()
}

const OPS: [ReductionOp; 3] = [ReductionOp::Sum, ReductionOp::Mean, ReductionOp::Max];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table-level gather-reduce: every optimized backend is bitwise equal
    /// to the scalar oracle for every reduction operator, across dims that
    /// exercise the 32-wide tile, the 8-wide tile and the scalar tail.
    #[test]
    fn table_gather_reduce_matches_oracle_bitwise(
        rows in 1usize..300,
        dim in 0usize..70,
        len in 0usize..120,
        seed in 0u64..10_000,
    ) {
        let table = table_for(rows, dim, seed);
        let indices = indices_for(rows, len, seed);
        for op in OPS {
            let mut oracle = vec![f32::NAN; dim];
            table
                .gather_reduce_into_with(&indices, op, &mut oracle, SparseBackend::Scalar)
                .unwrap();
            for backend in [SparseBackend::Vectorized, SparseBackend::VectorizedParallel] {
                let mut out = vec![f32::NAN; dim];
                table
                    .gather_reduce_into_with(&indices, op, &mut out, backend)
                    .unwrap();
                prop_assert_eq!(
                    &oracle,
                    &out,
                    "{:?} diverges from scalar oracle ({:?}, rows {}, dim {}, len {})",
                    backend, op, rows, dim, len
                );
            }
        }
    }

    /// Batched bag-level gather-reduce with the feature-matrix layout
    /// (row stride + offset): the table-major vectorized sweep and the
    /// sample-band parallel partitioner land bitwise-identical blocks and
    /// never touch bytes outside them.
    #[test]
    fn bag_batched_reduce_matches_oracle_bitwise(
        num_tables in 1usize..5,
        dim in 1usize..40,
        batch in 0usize..12,
        seed in 0u64..10_000,
    ) {
        let rows = 64;
        let tables: Vec<EmbeddingTable> = (0..num_tables)
            .map(|t| table_for(rows, dim, seed.wrapping_add(t as u64)))
            .collect();
        for op in OPS {
            let bag = EmbeddingBag::new(tables.clone(), op);
            let batch_indices: Vec<Vec<Vec<u32>>> = (0..batch)
                .map(|s| {
                    (0..num_tables)
                        .map(|t| {
                            let len = (s + t + seed as usize) % 7; // incl. empty bags
                            indices_for(rows, len, seed ^ ((s * 31 + t) as u64))
                        })
                        .collect()
                })
                .collect();
            let width = num_tables * dim;
            let offset = dim / 2;
            let stride = width + offset + 3;
            let mut oracle = vec![f32::NAN; batch * stride];
            bag.reduce_batch_into_with(
                &batch_indices, &mut oracle, stride, offset, SparseBackend::Scalar,
            )
            .unwrap();
            for backend in [SparseBackend::Vectorized, SparseBackend::VectorizedParallel] {
                let mut out = vec![f32::NAN; batch * stride];
                bag.reduce_batch_into_with(&batch_indices, &mut out, stride, offset, backend)
                    .unwrap();
                for (i, (a, b)) in oracle.iter().zip(&out).enumerate() {
                    let col = i % stride;
                    if (offset..offset + width).contains(&col) {
                        prop_assert_eq!(a, b, "{:?} {:?} diverges at element {}", backend, op, i);
                    } else {
                        // Outside the reduced block both paths must leave
                        // the buffer untouched.
                        prop_assert!(b.is_nan(), "{:?} wrote outside its block at {}", backend, i);
                    }
                }
            }
        }
    }

    /// Error equivalence: the optimized backends report the same
    /// out-of-bounds index, table annotation and table-count mismatch the
    /// scalar loop discovers first.
    #[test]
    fn error_selection_matches_oracle(
        bad_sample in 0usize..4,
        bad_table in 0usize..3,
        seed in 0u64..1000,
    ) {
        let bag = EmbeddingBag::new(
            (0..3).map(|t| table_for(32, 8, seed + t)).collect(),
            ReductionOp::Sum,
        );
        let mut batch_indices: Vec<Vec<Vec<u32>>> = (0..4)
            .map(|s| (0..3).map(|t| indices_for(32, 4, seed ^ (s * 7 + t) as u64)).collect())
            .collect();
        batch_indices[bad_sample][bad_table].push(32 + bad_table as u32); // out of bounds
        let stride = 3 * 8;
        let mut out = vec![0.0f32; 4 * stride];
        let oracle_err = bag
            .reduce_batch_into_with(&batch_indices, &mut out, stride, 0, SparseBackend::Scalar)
            .unwrap_err();
        for backend in [SparseBackend::Vectorized, SparseBackend::VectorizedParallel] {
            let err = bag
                .reduce_batch_into_with(&batch_indices, &mut out, stride, 0, backend)
                .unwrap_err();
            match (&oracle_err, &err) {
                (
                    DlrmError::IndexOutOfBounds { index: i1, rows: r1, table: t1 },
                    DlrmError::IndexOutOfBounds { index: i2, rows: r2, table: t2 },
                ) => {
                    prop_assert_eq!(i1, i2);
                    prop_assert_eq!(r1, r2);
                    prop_assert_eq!(t1, t2);
                }
                _ => prop_assert!(false, "error kinds diverged: {:?} vs {:?}", oracle_err, err),
            }
        }
    }
}

/// A batch large enough to clear the parallel partitioner's byte threshold
/// (2 MB gathered) must still be bitwise identical — sample bands have
/// disjoint outputs and identical per-block accumulation order.
#[test]
fn parallel_partitioner_is_bitwise_identical_above_threshold() {
    let rows = 1024;
    let dim = 32;
    let table = table_for(rows, dim, 77);
    let bag = EmbeddingBag::new(vec![table], ReductionOp::Sum);
    // 1024 samples × 32 lookups × 128 B = 4 MB gathered — double the spawn
    // threshold, so multi-core hosts genuinely fork sample bands here.
    let batch_indices: Vec<Vec<Vec<u32>>> = (0..1024)
        .map(|s| vec![indices_for(rows, 32, s as u64)])
        .collect();
    let mut scalar = vec![0.0f32; 1024 * dim];
    bag.reduce_batch_into_with(&batch_indices, &mut scalar, dim, 0, SparseBackend::Scalar)
        .unwrap();
    let mut parallel = vec![0.0f32; 1024 * dim];
    bag.reduce_batch_into_with(
        &batch_indices,
        &mut parallel,
        dim,
        0,
        SparseBackend::VectorizedParallel,
    )
    .unwrap();
    assert_eq!(scalar, parallel);
}

/// The streamer-facing single-request path: every backend agrees bitwise
/// through `reduce_into_slice_with` as well.
#[test]
fn single_request_slice_path_matches_across_backends() {
    let bag = EmbeddingBag::new(
        (0..4).map(|t| table_for(128, 32, 1000 + t)).collect(),
        ReductionOp::Sum,
    );
    let request: Vec<Vec<u32>> = (0..4).map(|t| indices_for(128, 20, t as u64)).collect();
    let mut oracle = vec![0.0f32; 4 * 32];
    bag.reduce_into_slice_with(&request, &mut oracle, SparseBackend::Scalar)
        .unwrap();
    for backend in [SparseBackend::Vectorized, SparseBackend::VectorizedParallel] {
        let mut out = vec![0.0f32; 4 * 32];
        bag.reduce_into_slice_with(&request, &mut out, backend)
            .unwrap();
        assert_eq!(oracle, out, "{backend:?} diverged");
    }
}
