//! Property tests pinning every optimized GEMM backend to the `Naive`
//! correctness oracle, across random and adversarial edge shapes.

use centaur_dlrm::kernel::{self, FusedAct, KernelBackend, Workspace};
use centaur_dlrm::{Activation, Matrix, Mlp, MlpStack};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix data for a given seed.
fn test_data(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 64) as f32 * 0.0625 - 2.0
        })
        .collect()
}

/// Maximum element-wise relative difference (absolute below magnitude 1).
fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f32::max)
}

fn assert_backends_match_oracle(m: usize, k: usize, n: usize, seed: u64) {
    let a = test_data(m * k, seed);
    let b = test_data(k * n, seed.wrapping_add(1));
    let mut oracle = vec![0.0; m * n];
    kernel::gemm(KernelBackend::Naive, &a, &b, &mut oracle, m, k, n);
    for backend in [KernelBackend::Blocked, KernelBackend::BlockedParallel] {
        let mut out = vec![f32::NAN; m * n];
        kernel::gemm(backend, &a, &b, &mut out, m, k, n);
        let diff = max_rel_diff(&oracle, &out);
        assert!(
            diff < 1e-4,
            "{backend:?} diverges from oracle at {m}x{k}x{n} (seed {seed}): rel diff {diff}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shapes: every optimized backend agrees with the oracle within
    /// 1e-4 relative tolerance.
    #[test]
    fn optimized_backends_match_oracle(
        m in 1usize..48,
        k in 1usize..96,
        n in 1usize..48,
        seed in 0u64..10_000,
    ) {
        assert_backends_match_oracle(m, k, n, seed);
    }

    /// The fused GEMM+bias+activation epilogue equals the unfused sequence
    /// on every backend.
    #[test]
    fn fused_epilogue_matches_unfused(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let a = test_data(m * k, seed);
        let b = test_data(k * n, seed.wrapping_add(1));
        let bias = test_data(n, seed.wrapping_add(2));
        for backend in KernelBackend::all() {
            let mut plain = vec![0.0; m * n];
            kernel::gemm(backend, &a, &b, &mut plain, m, k, n);
            let mut fused = vec![0.0; m * n];
            kernel::gemm_bias_act(
                backend, &a, &b, Some(&bias), FusedAct::Relu, &mut fused, m, k, n,
            );
            for i in 0..m {
                for j in 0..n {
                    let expected = (plain[i * n + j] + bias[j]).max(0.0);
                    prop_assert!((fused[i * n + j] - expected).abs() < 1e-5);
                }
            }
        }
    }

    /// The zero-allocation workspace MLP path produces exactly the same
    /// values as the allocating path.
    #[test]
    fn workspace_mlp_matches_allocating_path(
        batch in 1usize..10,
        hidden in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mlp: MlpStack = Mlp::random(&[11, hidden, 5], Activation::Relu, seed).unwrap();
        let x = Matrix::from_vec(batch, 11, test_data(batch * 11, seed)).unwrap();
        for backend in KernelBackend::all() {
            let reference = mlp.forward_with(backend, &x).unwrap();
            let mut ws = Workspace::new();
            let (data, cols) = mlp
                .forward_ws(backend, x.as_slice(), batch, 11, &mut ws)
                .unwrap();
            prop_assert_eq!(cols, 5);
            prop_assert_eq!(data, reference.as_slice());
        }
    }
}

#[test]
fn edge_shapes_match_oracle() {
    // Degenerate vectors, single elements, and sizes straddling the KC=256
    // and NC=512 blocking boundaries.
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 64, 1),
        (1, 300, 17),  // 1×N row vector through a k block boundary
        (33, 7, 1),    // N×1 column output
        (4, 256, 16),  // exactly one full k block
        (4, 257, 16),  // one element past the k block
        (3, 100, 512), // exactly one full n block
        (3, 100, 513), // one element past the n block
        (5, 511, 31),
        (7, 513, 33),
    ] {
        assert_backends_match_oracle(m, k, n, 42);
    }
}

#[test]
fn blocked_and_parallel_are_bitwise_identical() {
    // Row-band parallelism must not change accumulation order.
    for &(m, k, n) in &[(64, 300, 48), (17, 513, 65)] {
        let a = test_data(m * k, 9);
        let b = test_data(k * n, 10);
        let mut blocked = vec![0.0; m * n];
        let mut parallel = vec![0.0; m * n];
        kernel::gemm(KernelBackend::Blocked, &a, &b, &mut blocked, m, k, n);
        kernel::gemm(
            KernelBackend::BlockedParallel,
            &a,
            &b,
            &mut parallel,
            m,
            k,
            n,
        );
        assert_eq!(blocked, parallel, "bitwise divergence at {m}x{k}x{n}");
    }
}
