//! Property tests pinning the prepacked-panel GEMM **bitwise** against the
//! on-the-fly-packing path: `PrepackedWeights` only moves *when* the `B`
//! panels are laid out (once at load instead of per call), so every backend
//! must produce exactly the bytes its packing counterpart does — across
//! ragged shapes that hit the 8-, 4- and 1-row remainder microkernels and
//! the `KC = 256` / `NC = 512` panel boundaries, with and without fused
//! bias/activation epilogues.

use centaur_dlrm::kernel::{self, FusedAct, KernelBackend, PrepackedWeights};
use centaur_dlrm::{Activation, DenseLayer, Matrix};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix data for a given seed.
fn test_data(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 64) as f32 * 0.0625 - 2.0
        })
        .collect()
}

/// The on-the-fly-packing backend a prepacked run must match bitwise: the
/// prepacked-only backend feeds the blocked microkernels, everything else
/// is compared against itself.
fn packing_reference(backend: KernelBackend) -> KernelBackend {
    if backend == KernelBackend::BlockedPrepacked {
        KernelBackend::Blocked
    } else {
        backend
    }
}

fn assert_prepacked_matches_packing(m: usize, k: usize, n: usize, seed: u64) {
    let a = test_data(m * k, seed);
    let b = test_data(k * n, seed.wrapping_add(1));
    let bias = test_data(n, seed.wrapping_add(2));
    let packed = PrepackedWeights::pack(&b, k, n);
    assert_eq!(packed.k(), k);
    assert_eq!(packed.n(), n);
    for backend in KernelBackend::all() {
        for (bias_opt, act) in [
            (None, FusedAct::Identity),
            (Some(bias.as_slice()), FusedAct::Relu),
            (Some(bias.as_slice()), FusedAct::Sigmoid),
        ] {
            let mut reference = vec![f32::NAN; m * n];
            kernel::gemm_bias_act(
                packing_reference(backend),
                &a,
                &b,
                bias_opt,
                act,
                &mut reference,
                m,
                k,
                n,
            );
            let mut prepacked = vec![f32::NAN; m * n];
            kernel::gemm_bias_act_prepacked(backend, &a, &packed, bias_opt, act, &mut prepacked, m);
            // Bitwise, not tolerance: assert_eq on the raw f32s.
            assert_eq!(
                reference, prepacked,
                "{backend:?}/{act:?} diverged at {m}x{k}x{n} (seed {seed})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random ragged shapes: `m` spans the 8/4/1-row microkernel tails,
    /// `k`/`n` stay small enough to iterate quickly.
    #[test]
    fn prepacked_matches_packing_on_random_shapes(
        m in 1usize..20,
        k in 1usize..96,
        n in 1usize..48,
        seed in 0u64..10_000,
    ) {
        assert_prepacked_matches_packing(m, k, n, seed);
    }

    /// A whole dense layer served from resident panels equals the packing
    /// path bitwise, for every backend and batch size.
    #[test]
    fn dense_layer_prepacked_forward_matches_packing(
        batch in 1usize..14,
        in_dim in 1usize..40,
        out_dim in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let layer = DenseLayer::random(in_dim, out_dim, Activation::Relu, seed);
        let x = Matrix::from_vec(batch, in_dim, test_data(batch * in_dim, seed)).unwrap();
        for backend in KernelBackend::all() {
            let reference = layer.forward_with(packing_reference(backend), &x).unwrap();
            let served = layer.forward_with(backend, &x).unwrap();
            prop_assert_eq!(reference.as_slice(), served.as_slice());
        }
    }
}

#[test]
fn prepacked_matches_packing_on_block_boundary_shapes() {
    // Shapes straddling KC = 256 and NC = 512 so multi-panel walks (and
    // their remainder panels) are covered, with every microkernel tail:
    // m = 8 (wide only), 12 (8+4), 13 (8+4+1), 5 (4+1), 1, 3.
    for &(m, k, n) in &[
        (1, 1, 1),
        (1, 256, 512), // exactly one full panel
        (1, 257, 513), // one element past both block boundaries
        (8, 300, 17),
        (12, 513, 512),
        (13, 511, 30),
        (5, 256, 513),
        (3, 700, 65),
    ] {
        assert_prepacked_matches_packing(m, k, n, 42);
    }
}

#[test]
fn repacked_weights_serve_new_values_bitwise() {
    // set_weights re-packs: the layer must serve the *new* weights on the
    // prepacked path, bitwise equal to a fresh layer built from them.
    let mut layer = DenseLayer::random(33, 17, Activation::Relu, 7);
    let replacement = Matrix::from_vec(33, 17, test_data(33 * 17, 99)).unwrap();
    layer.set_weights(replacement.clone()).unwrap();
    let fresh = DenseLayer::new(replacement, layer.bias().clone(), Activation::Relu).unwrap();
    let x = Matrix::from_vec(6, 33, test_data(6 * 33, 101)).unwrap();
    assert_eq!(
        layer
            .forward_with(KernelBackend::BlockedPrepacked, &x)
            .unwrap(),
        fresh
            .forward_with(KernelBackend::BlockedPrepacked, &x)
            .unwrap()
    );
}
