//! Exercises the `CENTAUR_NUM_THREADS` override in its own test binary:
//! the variable and the cached thread count are process-global, so this
//! file holds exactly one `#[test]` and sets the variable before any
//! kernel call can populate the cache.
//!
//! On the single-core CI container `available_parallelism` is 1 and the
//! `BlockedParallel`/`BlockedPrepacked` band splits normally degenerate to
//! the single-threaded kernel; forcing 4 worker threads makes the
//! multi-band code path actually execute there — and band parallelism must
//! stay **bitwise identical** to the single-threaded blocked kernel.

use centaur_dlrm::kernel::{self, KernelBackend, PrepackedWeights};

#[test]
fn forced_thread_count_exercises_bands_and_stays_bitwise_identical() {
    std::env::set_var("CENTAUR_NUM_THREADS", "4");

    // Big enough to clear PARALLEL_FLOP_THRESHOLD (2·m·n·k ≥ 2^22) with
    // m ≥ 4 bands × 8 rows, so all four forced bands really spawn.
    let (m, k, n) = (64usize, 256usize, 256usize);
    assert!(2 * m * n * k >= 1 << 22, "shape must clear the spawn gate");
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 31) % 17) as f32 - 8.0).collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 13) % 11) as f32 * 0.125 - 0.5)
        .collect();

    let mut blocked = vec![0.0f32; m * n];
    kernel::gemm(KernelBackend::Blocked, &a, &b, &mut blocked, m, k, n);

    let mut banded = vec![f32::NAN; m * n];
    kernel::gemm(KernelBackend::BlockedParallel, &a, &b, &mut banded, m, k, n);
    assert_eq!(blocked, banded, "forced bands diverged from blocked");

    // The prepacked band path reads shared resident panels per band; it
    // must match too.
    let packed = PrepackedWeights::pack(&b, k, n);
    let mut prepacked = vec![f32::NAN; m * n];
    kernel::gemm_prepacked(
        KernelBackend::BlockedPrepacked,
        &a,
        &packed,
        &mut prepacked,
        m,
    );
    assert_eq!(blocked, prepacked, "forced prepacked bands diverged");
}
