//! Property-based tests for the reference DLRM implementation.

use centaur_dlrm::{Activation, DlrmModel, Matrix, Mlp, ModelConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matrix multiplication distributes over addition:
    /// (A + B) * C == A*C + B*C (within float tolerance).
    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..100,
    ) {
        let gen = |s: u64, rows, cols| Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + s as usize) % 11) as f32 - 5.0) * 0.25
        });
        let a = gen(seed, m, k);
        let b = gen(seed + 1, m, k);
        let c = gen(seed + 2, k, n);
        let lhs = (&a + &b).matmul(&c).unwrap();
        let rhs = &a.matmul(&c).unwrap() + &b.matmul(&c).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Transpose reverses matmul order: (A*B)^T == B^T * A^T.
    #[test]
    fn transpose_of_product(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Matrix::from_fn(k, n, |r, c| (r * c) as f32 * 0.125 - 1.0);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Every MLP forward pass preserves the batch dimension and produces
    /// finite outputs.
    #[test]
    fn mlp_forward_preserves_batch_and_is_finite(
        batch in 1usize..9,
        hidden in 1usize..64,
        seed in 0u64..500,
    ) {
        let mlp = Mlp::random(&[7, hidden, 3], Activation::Relu, seed).unwrap();
        let x = Matrix::from_fn(batch, 7, |r, c| ((r + c) as f32) * 0.1 - 0.3);
        let y = mlp.forward(&x).unwrap();
        prop_assert_eq!(y.shape(), (batch, 3));
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The full model always produces probabilities in [0, 1] and the
    /// batched path agrees with the single-sample path.
    #[test]
    fn model_probabilities_bounded_and_batch_consistent(
        seed in 0u64..200,
        lookups in 1usize..6,
    ) {
        let config = ModelConfig::builder()
            .name("prop")
            .num_tables(3)
            .rows_per_table(32)
            .embedding_dim(8)
            .lookups_per_table(lookups)
            .dense_features(5)
            .bottom_mlp(&[16, 8])
            .top_mlp(&[8])
            .build()
            .unwrap();
        let model = DlrmModel::random(&config, seed).unwrap();
        let dense = Matrix::from_fn(2, 5, |r, c| (r as f32 + c as f32 * 0.3) * 0.2 - 0.4);
        let sparse: Vec<Vec<Vec<u32>>> = (0..2)
            .map(|s| {
                (0..3)
                    .map(|t| (0..lookups).map(|i| ((s * 7 + t * 5 + i * 3) % 32) as u32).collect())
                    .collect()
            })
            .collect();
        let batched = model.forward_batch(&dense, &sparse).unwrap();
        prop_assert!(batched.iter().all(|p| (0.0..=1.0).contains(p)));
        for (i, sample) in sparse.iter().enumerate() {
            let single = model
                .forward_single(&Matrix::row_vector(dense.row(i)), sample)
                .unwrap();
            prop_assert!((batched[i] - single[0]).abs() < 1e-6);
        }
    }

    /// Derived byte/FLOP accounting in the config is internally consistent.
    #[test]
    fn config_accounting_consistent(
        tables in 1usize..8,
        lookups in 1usize..20,
        dim_pow in 2u32..7,
    ) {
        let dim = 2usize.pow(dim_pow);
        let config = ModelConfig::builder()
            .num_tables(tables)
            .rows_per_table(1000)
            .embedding_dim(dim)
            .lookups_per_table(lookups)
            .bottom_mlp(&[64, dim])
            .top_mlp(&[32])
            .build()
            .unwrap();
        prop_assert_eq!(config.row_bytes(), dim * 4);
        prop_assert_eq!(
            config.gathered_bytes_per_sample(),
            (tables * lookups * dim * 4) as u64
        );
        prop_assert_eq!(config.embedding_bytes(), (tables * 1000 * dim * 4) as u64);
        prop_assert_eq!(config.mlp_params() * 4, config.mlp_bytes());
        prop_assert!(config.dense_flops_per_sample() > 0);
        prop_assert_eq!(config.top_mlp_input_dim(), dim + tables * (tables + 1) / 2);
    }
}
