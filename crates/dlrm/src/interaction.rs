//! Dot-product feature interaction, the batched-GEMM step between the
//! sparse frontend and the top MLP (Figure 3, step 3 in the paper).
//!
//! DLRM concatenates the bottom-MLP output with the reduced embedding of
//! every table into a `[num_features, dim]` matrix `R`, computes `R * R^T`,
//! and keeps the strictly-lower-triangular entries (every distinct pair's
//! dot product). Those pairwise terms are then concatenated with the
//! bottom-MLP output to form the top-MLP input.

use crate::error::DlrmError;
use crate::kernel::dot;
use crate::tensor::Matrix;

/// Dot-product feature interaction operator.
///
/// The operator is stateless; it exists as a type so the accelerator models
/// can hold a configured instance (feature count, embedding dimension) and
/// reason about its GEMM cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureInteraction {
    num_features: usize,
    dim: usize,
}

impl FeatureInteraction {
    /// Creates an interaction stage for `num_features` vectors of width
    /// `dim` (typically `num_tables + 1`: one reduced embedding per table
    /// plus the bottom-MLP output).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] when either argument is zero.
    pub fn new(num_features: usize, dim: usize) -> Result<Self, DlrmError> {
        if num_features == 0 || dim == 0 {
            return Err(DlrmError::InvalidConfig(format!(
                "feature interaction needs non-zero features and dim, got {num_features}x{dim}"
            )));
        }
        Ok(FeatureInteraction { num_features, dim })
    }

    /// Number of interacting feature vectors.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Width of each feature vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of pairwise interaction terms produced
    /// (`num_features choose 2`).
    pub fn num_pairs(&self) -> usize {
        self.num_features * (self.num_features - 1) / 2
    }

    /// Width of the top-MLP input produced by
    /// [`FeatureInteraction::interact`]: the bottom-MLP output width plus
    /// one scalar per pair.
    pub fn output_dim(&self) -> usize {
        self.dim + self.num_pairs()
    }

    /// FLOPs of the `R * R^T` batched GEMM for one sample.
    pub fn flops(&self) -> u64 {
        2 * (self.num_features * self.num_features * self.dim) as u64
    }

    /// Computes the pairwise dot products for one sample.
    ///
    /// `features` must be `[num_features, dim]`; row 0 is, by DLRM
    /// convention, the bottom-MLP output. The result is the concatenation of
    /// row 0 with the strictly-lower-triangular entries of `features *
    /// features^T`, i.e. a `[1, output_dim()]` row vector ready for the top
    /// MLP.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] when `features` has an
    /// unexpected shape.
    pub fn interact(&self, features: &Matrix) -> Result<Matrix, DlrmError> {
        if features.shape() != (self.num_features, self.dim) {
            return Err(DlrmError::ShapeMismatch {
                op: "feature interaction",
                lhs: (self.num_features, self.dim),
                rhs: features.shape(),
            });
        }
        let mut out = Matrix::zeros(1, self.output_dim());
        self.interact_into(features.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// Allocation-free [`FeatureInteraction::interact`] over raw row-major
    /// buffers: `features` is `[num_features, dim]` and `out` receives the
    /// `[1, output_dim()]` top-MLP input.
    ///
    /// # Panics
    ///
    /// Panics if either slice length disagrees with the configured shape
    /// (shape validation is the caller's job on this hot path).
    pub fn interact_into(&self, features: &[f32], out: &mut [f32]) {
        assert_eq!(features.len(), self.num_features * self.dim);
        assert_eq!(out.len(), self.output_dim());
        let dim = self.dim;
        out[..dim].copy_from_slice(&features[..dim]);
        let mut k = dim;
        for i in 1..self.num_features {
            let row_i = &features[i * dim..(i + 1) * dim];
            for j in 0..i {
                out[k] = dot(row_i, &features[j * dim..(j + 1) * dim]);
                k += 1;
            }
        }
    }

    /// Batch-major [`FeatureInteraction::interact_into`]: `features` is the
    /// `[batch, num_features * dim]` matrix (each row one sample's stacked
    /// feature vectors, bottom-MLP output first) and `out` receives the
    /// `[batch, output_dim()]` top-MLP input in one pass over both buffers.
    ///
    /// # Panics
    ///
    /// Panics if either slice length disagrees with
    /// `batch ×` the configured shape (shape validation is the caller's job
    /// on this hot path).
    pub fn interact_batch_into(&self, features: &[f32], batch: usize, out: &mut [f32]) {
        let in_width = self.num_features * self.dim;
        assert_eq!(features.len(), batch * in_width);
        assert_eq!(out.len(), batch * self.output_dim());
        for (feature_row, out_row) in features
            .chunks_exact(in_width)
            .zip(out.chunks_exact_mut(self.output_dim()))
        {
            self.interact_into(feature_row, out_row);
        }
    }

    /// Computes the full Gram matrix `features * features^T` for one sample.
    ///
    /// This is the raw batched-GEMM the dense accelerator executes; the
    /// lower triangle of this matrix is what
    /// [`FeatureInteraction::interact`] selects.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] when `features` has an
    /// unexpected shape.
    pub fn gram_matrix(&self, features: &Matrix) -> Result<Matrix, DlrmError> {
        if features.shape() != (self.num_features, self.dim) {
            return Err(DlrmError::ShapeMismatch {
                op: "feature interaction gram",
                lhs: (self.num_features, self.dim),
                rhs: features.shape(),
            });
        }
        features.matmul(&features.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_config() {
        assert!(FeatureInteraction::new(0, 4).is_err());
        assert!(FeatureInteraction::new(4, 0).is_err());
    }

    #[test]
    fn pair_and_output_counts() {
        let fi = FeatureInteraction::new(6, 32).unwrap();
        assert_eq!(fi.num_pairs(), 15);
        assert_eq!(fi.output_dim(), 32 + 15);
        assert_eq!(fi.num_features(), 6);
        assert_eq!(fi.dim(), 32);
    }

    #[test]
    fn interact_known_values() {
        // Three 2-dim features: f0=[1,0], f1=[0,1], f2=[2,2]
        let features = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0]).unwrap();
        let fi = FeatureInteraction::new(3, 2).unwrap();
        let out = fi.interact(&features).unwrap();
        // output = [f0 (2 values), f1·f0, f2·f0, f2·f1] = [1,0, 0, 2, 2]
        assert_eq!(out.as_slice(), &[1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn interact_matches_gram_lower_triangle() {
        let fi = FeatureInteraction::new(4, 8).unwrap();
        let features = Matrix::from_fn(4, 8, |r, c| ((r * 13 + c * 7) % 5) as f32 - 2.0);
        let out = fi.interact(&features).unwrap();
        let gram = fi.gram_matrix(&features).unwrap();
        let mut k = 8; // skip the copied bottom-MLP output
        for i in 1..4 {
            for j in 0..i {
                assert!((out.get(0, k) - gram.get(i, j)).abs() < 1e-5);
                k += 1;
            }
        }
        assert_eq!(k, out.cols());
    }

    #[test]
    fn gram_matrix_is_symmetric() {
        let fi = FeatureInteraction::new(5, 16).unwrap();
        let features = Matrix::from_fn(5, 16, |r, c| (r as f32 - c as f32) * 0.3);
        let gram = fi.gram_matrix(&features).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!((gram.get(i, j) - gram.get(j, i)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let fi = FeatureInteraction::new(3, 4).unwrap();
        let wrong = Matrix::zeros(4, 4);
        assert!(fi.interact(&wrong).is_err());
        assert!(fi.gram_matrix(&wrong).is_err());
    }

    #[test]
    fn single_feature_has_no_pairs() {
        let fi = FeatureInteraction::new(1, 4).unwrap();
        assert_eq!(fi.num_pairs(), 0);
        let features = Matrix::filled(1, 4, 1.0);
        let out = fi.interact(&features).unwrap();
        assert_eq!(out.as_slice(), features.row(0));
    }

    #[test]
    fn flops_positive() {
        let fi = FeatureInteraction::new(6, 32).unwrap();
        assert_eq!(fi.flops(), 2 * 6 * 6 * 32);
    }
}
