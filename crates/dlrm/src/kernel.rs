//! The optimized compute backend: cache-blocked, packed GEMM microkernels
//! with fused bias + activation epilogues, reusable scratch workspaces and
//! SIMD-friendly chunked reductions.
//!
//! Everything that executes real math in the workspace — `Matrix::matmul`,
//! `DenseLayer`/`Mlp` forward passes, the feature interaction and the
//! embedding gather/reduce — routes through this module. Three backends are
//! offered:
//!
//! - [`KernelBackend::Naive`] — the textbook `ijk` triple loop. Slow by
//!   design; kept as the correctness oracle every optimized backend is
//!   property-tested against.
//! - [`KernelBackend::Blocked`] — the single-threaded blocked kernel:
//!   `B` is packed block-by-block into contiguous panels, and a 4-row
//!   microkernel accumulates into output rows that stay resident in L1.
//! - [`KernelBackend::BlockedParallel`] — the blocked kernel with the
//!   output rows split into per-thread bands (`std::thread::scope`; no
//!   external dependency). Only available with the `parallel` feature
//!   (enabled by default); falls back to [`KernelBackend::Blocked`] for
//!   small problems where threads would cost more than they save.
//! - [`KernelBackend::BlockedPrepacked`] — the default: identical blocked
//!   microkernels (including the band split), but paths that hold a
//!   resident [`PrepackedWeights`] — every `DenseLayer` — feed them
//!   straight from panels packed **once at load**, skipping the per-call
//!   `O(k·n)` pack loop that dominates `m = 1` and small serving batches.
//!   On generic GEMMs with no resident operand it packs on the fly like
//!   `BlockedParallel`.
//!
//! `Blocked`, `BlockedParallel` and `BlockedPrepacked` produce
//! **bitwise-identical** results: row-band parallelism never changes the
//! floating-point accumulation order within a row, and prepacking only
//! moves *when* the panels are laid out, not what the microkernels read.
//! `Naive` differs only by float-summation order, within `1e-4` relative
//! tolerance on well-conditioned inputs.
//!
//! Steady-state inference performs **zero heap allocations** when driven
//! through a [`Workspace`]: all intermediates (MLP ping/pong buffers, packed
//! `B` panels, interaction features) live in buffers that grow to a
//! high-water mark and are reused across calls.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows processed together by the GEMM microkernel.
const MR: usize = 4;
/// Rows processed by the wide microkernel used on batch-major GEMMs: each
/// pass over a packed `B` panel feeds 8 output rows, halving panel traffic
/// versus the 4-row kernel when `m` (the batch) is large.
const MR_WIDE: usize = 8;
/// `k`-dimension block size: one packed panel spans at most `KC` rows of `B`.
const KC: usize = 256;
/// `n`-dimension block size: columns of `B` packed per panel.
const NC: usize = 512;
/// Minimum FLOP count (`2·m·n·k`) before the parallel path spawns threads.
///
/// Re-tuned for the batch-major inference path, where `BlockedParallel`
/// finally sees GEMMs with `m = batch` rows to split: a spawned band must
/// carry enough work to amortize its `std::thread` spawn/join cost
/// (~30–60 µs) against the blocked kernel's ~20 GFLOP/s single-core rate,
/// i.e. ≥ ~2 MFLOP per band. At `1 << 22` (~4.2 MFLOP for two bands) the
/// batched MLP layer GEMMs of the paper models clear the bar from batch
/// ≈ 32 up (e.g. 64×256×256 ≈ 8.4 MFLOP), while per-sample `m = 1` layer
/// GEMMs (≤ 0.3 MFLOP on every Table-I shape) always stay on the
/// single-threaded kernel. See the `batch_forward` bench group and the
/// README "Measured kernel speedups" table for the numbers behind this.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 22;
/// Chunk width for the unrolled reduction helpers.
const LANES: usize = 8;
/// Accumulator tile width (floats) of the vectorized gather-reduce kernels'
/// fast path: for the paper-default 32-wide embedding rows, four 8-lane
/// vector registers hold the whole accumulator across the entire index
/// list, so each gathered row is loaded exactly once and the accumulator
/// never round-trips through memory. Other row widths take a single
/// prefetched pass with chunked vector adds into the L1-resident
/// accumulator (never a second pass over the rows).
const GATHER_TILE: usize = 32;
/// How many rows ahead the gather-reduce kernels prefetch. Embedding
/// gathers are latency-bound on large tables (every index is a likely
/// L2/L3 miss); with the index list known up front, prefetching ~8 rows
/// ahead keeps several misses in flight. Measured on DLRM(1)-shaped
/// gathers: distances 4–24 are within noise of each other and all well
/// ahead of no-prefetch, so the distance only needs to be "a few rows".
const GATHER_PREFETCH_DISTANCE: usize = 8;
/// Minimum total gathered bytes (`lookups × row_bytes`) before the
/// parallel sparse backend spawns threads over a batched gather-reduce.
///
/// Mirrors [`PARALLEL_FLOP_THRESHOLD`] for the sparse side, with bytes as
/// the work unit (gathers do no FLOPs worth counting): a spawned band must
/// amortize its ~30–60 µs `std::thread` spawn/join cost against the
/// vectorized kernel's measured ~25–30 GB/s single-core gather rate, i.e.
/// ≥ ~1 MB of gathered rows per band. At `1 << 21` (2 MB for two bands)
/// per-sample requests (a few KB each) and small batches never spawn; only
/// multi-hundred-sample batched gathers split.
const SPARSE_PARALLEL_BYTES_THRESHOLD: usize = 1 << 21;

/// Which GEMM implementation executes the dense math.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// Textbook `ijk` triple loop — the correctness oracle.
    Naive,
    /// Cache-blocked, packed, 4-row microkernel (single-threaded).
    #[default]
    Blocked,
    /// Blocked kernel with row-parallel execution across threads.
    BlockedParallel,
    /// The blocked kernel fed from weights packed **once at load**
    /// ([`PrepackedWeights`]) wherever a resident operand exists; generic
    /// GEMMs fall back to the on-the-fly-packing parallel kernel. Bitwise
    /// identical to `Blocked`/`BlockedParallel`.
    BlockedPrepacked,
}

impl KernelBackend {
    /// Every available backend, for equivalence sweeps in tests/benches.
    pub fn all() -> [KernelBackend; 4] {
        [
            KernelBackend::Naive,
            KernelBackend::Blocked,
            KernelBackend::BlockedParallel,
            KernelBackend::BlockedPrepacked,
        ]
    }

    /// Short label for bench/report output.
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Naive => "naive",
            KernelBackend::Blocked => "blocked",
            KernelBackend::BlockedParallel => "blocked-parallel",
            KernelBackend::BlockedPrepacked => "blocked-prepacked",
        }
    }
}

/// Parses a `CENTAUR_KERNEL_BACKEND` value. Returns `None` for anything
/// outside the accepted set (see [`KERNEL_BACKEND_VALUES`]) so callers can
/// distinguish "unset" from "misspelled" instead of silently falling back.
pub fn parse_kernel_backend(value: &str) -> Option<KernelBackend> {
    match value {
        "naive" => Some(KernelBackend::Naive),
        "blocked" => Some(KernelBackend::Blocked),
        "parallel" | "blocked-parallel" => Some(KernelBackend::BlockedParallel),
        "prepacked" | "blocked-prepacked" => Some(KernelBackend::BlockedPrepacked),
        _ => None,
    }
}

/// Accepted `CENTAUR_KERNEL_BACKEND` values, for error messages.
pub const KERNEL_BACKEND_VALUES: &str =
    "naive | blocked | parallel | blocked-parallel | prepacked | blocked-prepacked";

/// Parses a `CENTAUR_SPARSE_BACKEND` value. Returns `None` for anything
/// outside the accepted set (see [`SPARSE_BACKEND_VALUES`]).
pub fn parse_sparse_backend(value: &str) -> Option<SparseBackend> {
    match value {
        "scalar" => Some(SparseBackend::Scalar),
        "vectorized" => Some(SparseBackend::Vectorized),
        "parallel" | "vectorized-parallel" => Some(SparseBackend::VectorizedParallel),
        _ => None,
    }
}

/// Accepted `CENTAUR_SPARSE_BACKEND` values, for error messages.
pub const SPARSE_BACKEND_VALUES: &str = "scalar | vectorized | parallel | vectorized-parallel";

/// Parses a `CENTAUR_NUM_THREADS` value. Returns `None` for anything that
/// is not a positive integer (see [`NUM_THREADS_VALUES`]) so callers can
/// warn instead of silently falling back — same contract as
/// [`parse_kernel_backend`].
pub fn parse_num_threads(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&threads| threads > 0)
}

/// Accepted `CENTAUR_NUM_THREADS` values, for error messages.
pub const NUM_THREADS_VALUES: &str = "a positive integer (e.g. 1, 2, 8)";

/// Process-wide default backend, encoded for the atomic.
fn encode(backend: KernelBackend) -> u8 {
    match backend {
        KernelBackend::Naive => 0,
        KernelBackend::Blocked => 1,
        KernelBackend::BlockedParallel => 2,
        KernelBackend::BlockedPrepacked => 3,
    }
}

fn decode(value: u8) -> KernelBackend {
    match value {
        0 => KernelBackend::Naive,
        1 => KernelBackend::Blocked,
        2 => KernelBackend::BlockedParallel,
        _ => KernelBackend::BlockedPrepacked,
    }
}

static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_BACKEND: OnceLock<KernelBackend> = OnceLock::new();

fn builtin_default() -> KernelBackend {
    // Prepacked is strictly the fastest correct choice: resident weights
    // skip the per-call pack, generic GEMMs behave exactly like the
    // (feature-gated) parallel blocked kernel, and results stay bitwise
    // identical to `Blocked` either way.
    KernelBackend::BlockedPrepacked
}

/// The process-wide default backend used by [`Matrix::matmul`] and the
/// model forward passes.
///
/// Resolution order: the last [`set_global_backend`] call, else the
/// `CENTAUR_KERNEL_BACKEND` environment variable (`naive` | `blocked` |
/// `parallel` | `prepacked`), else `BlockedPrepacked`.
///
/// [`Matrix::matmul`]: crate::tensor::Matrix::matmul
pub fn global_backend() -> KernelBackend {
    let value = GLOBAL_BACKEND.load(Ordering::Relaxed);
    if value != u8::MAX {
        return decode(value);
    }
    *ENV_BACKEND.get_or_init(|| match std::env::var("CENTAUR_KERNEL_BACKEND") {
        Ok(value) => parse_kernel_backend(&value).unwrap_or_else(|| {
            // One-time by construction: the OnceLock runs this closure once.
            eprintln!(
                "warning: unknown CENTAUR_KERNEL_BACKEND value {value:?}, \
                 expected one of: {KERNEL_BACKEND_VALUES}; \
                 using the built-in default ({})",
                builtin_default().label()
            );
            builtin_default()
        }),
        Err(_) => builtin_default(),
    })
}

/// Overrides the process-wide default backend.
///
/// Prefer the explicit `*_with` APIs in tests — a global override leaks into
/// concurrently running tests.
pub fn set_global_backend(backend: KernelBackend) {
    GLOBAL_BACKEND.store(encode(backend), Ordering::Relaxed);
}

/// Which implementation executes the sparse embedding gather-reduce.
///
/// The optimized backends are **bitwise identical** to the scalar oracle:
/// every output element accumulates its rows in index order, the vector
/// units only widen how many elements advance per step (and the AVX2
/// dispatch excludes FMA, exactly like the GEMM microkernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseBackend {
    /// Row-at-a-time accumulate loop — the correctness oracle (the PR 2
    /// sparse path, unchanged).
    Scalar,
    /// Register-tiled accumulator with software prefetch of upcoming rows
    /// and runtime-dispatched AVX2 (no FMA).
    #[default]
    Vectorized,
    /// The vectorized kernel with batched gather-reduce split across
    /// per-thread sample bands (above
    /// [`SPARSE_PARALLEL_BYTES_THRESHOLD`]; single-sample requests never
    /// spawn).
    VectorizedParallel,
}

impl SparseBackend {
    /// Every available backend, for equivalence sweeps in tests/benches.
    pub fn all() -> [SparseBackend; 3] {
        [
            SparseBackend::Scalar,
            SparseBackend::Vectorized,
            SparseBackend::VectorizedParallel,
        ]
    }

    /// Short label for bench/report output.
    pub fn label(self) -> &'static str {
        match self {
            SparseBackend::Scalar => "scalar",
            SparseBackend::Vectorized => "vectorized",
            SparseBackend::VectorizedParallel => "vectorized-parallel",
        }
    }
}

fn encode_sparse(backend: SparseBackend) -> u8 {
    match backend {
        SparseBackend::Scalar => 0,
        SparseBackend::Vectorized => 1,
        SparseBackend::VectorizedParallel => 2,
    }
}

fn decode_sparse(value: u8) -> SparseBackend {
    match value {
        0 => SparseBackend::Scalar,
        1 => SparseBackend::Vectorized,
        _ => SparseBackend::VectorizedParallel,
    }
}

static GLOBAL_SPARSE_BACKEND: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_SPARSE_BACKEND: OnceLock<SparseBackend> = OnceLock::new();

fn builtin_sparse_default() -> SparseBackend {
    if cfg!(feature = "parallel") {
        SparseBackend::VectorizedParallel
    } else {
        SparseBackend::Vectorized
    }
}

/// The process-wide default sparse backend used by the embedding
/// gather-reduce paths.
///
/// Resolution order: the last [`set_global_sparse_backend`] call, else the
/// `CENTAUR_SPARSE_BACKEND` environment variable (`scalar` | `vectorized` |
/// `parallel`), else `VectorizedParallel` when the `parallel` feature is on
/// and `Vectorized` otherwise.
pub fn global_sparse_backend() -> SparseBackend {
    let value = GLOBAL_SPARSE_BACKEND.load(Ordering::Relaxed);
    if value != u8::MAX {
        return decode_sparse(value);
    }
    *ENV_SPARSE_BACKEND.get_or_init(|| match std::env::var("CENTAUR_SPARSE_BACKEND") {
        Ok(value) => parse_sparse_backend(&value).unwrap_or_else(|| {
            // One-time by construction: the OnceLock runs this closure once.
            eprintln!(
                "warning: unknown CENTAUR_SPARSE_BACKEND value {value:?}, \
                 expected one of: {SPARSE_BACKEND_VALUES}; \
                 using the built-in default ({})",
                builtin_sparse_default().label()
            );
            builtin_sparse_default()
        }),
        Err(_) => builtin_sparse_default(),
    })
}

/// Overrides the process-wide default sparse backend.
///
/// Prefer the explicit `*_with` APIs in tests — a global override leaks into
/// concurrently running tests.
pub fn set_global_sparse_backend(backend: SparseBackend) {
    GLOBAL_SPARSE_BACKEND.store(encode_sparse(backend), Ordering::Relaxed);
}

/// Activation fused into the GEMM epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FusedAct {
    /// No activation.
    #[default]
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// Numerically stable logistic sigmoid.
    Sigmoid,
}

impl FusedAct {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            FusedAct::Identity => x,
            FusedAct::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            FusedAct::Sigmoid => crate::tensor::sigmoid_scalar(x),
        }
    }
}

/// Reusable scratch buffers for allocation-free inference.
///
/// Buffers grow to a high-water mark and never shrink, so after the first
/// (warm-up) call through any given model shape, forward passes driven by
/// the same workspace perform no heap allocations (`Naive`/`Blocked`
/// backends; the parallel backend's thread spawning allocates by nature).
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// MLP layer input (ping) buffer.
    pub(crate) ping: Vec<f32>,
    /// MLP layer output (pong) buffer.
    pub(crate) pong: Vec<f32>,
    /// Packed-`B` panel for the blocked GEMM.
    pub(crate) pack: Vec<f32>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Total bytes currently held across all scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.ping.capacity() + self.pong.capacity() + self.pack.capacity())
            * std::mem::size_of::<f32>()
    }
}

/// Grows `buf` to at least `len` elements without ever shrinking it — the
/// high-water-mark discipline every scratch buffer in the workspace follows.
#[inline]
pub fn grow(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// `out = a · b` where `a` is `[m, k]`, `b` is `[k, n]`, all row-major.
///
/// Overwrite semantics: `out` is fully written. Allocates a packing scratch
/// internally; use [`gemm_into`] with a [`Workspace`] for the zero-alloc
/// path.
///
/// # Panics
///
/// Panics if a slice length disagrees with its shape.
pub fn gemm(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let mut pack = Vec::new();
    gemm_bias_act_into(
        backend,
        a,
        b,
        None,
        FusedAct::Identity,
        out,
        m,
        k,
        n,
        &mut pack,
    );
}

/// [`gemm`] writing its packed panels into a caller-provided workspace.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    gemm_bias_act_into(
        backend,
        a,
        b,
        None,
        FusedAct::Identity,
        out,
        m,
        k,
        n,
        &mut ws.pack,
    );
}

/// Fused `out = act(a · b + bias)` — GEMM, bias broadcast and activation in
/// one pass over a single output buffer, with no intermediate matrices.
///
/// `bias` is `[n]` broadcast over rows; `None` skips the bias add.
///
/// # Panics
///
/// Panics if a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_act(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    act: FusedAct,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let mut pack = Vec::new();
    gemm_bias_act_into(backend, a, b, bias, act, out, m, k, n, &mut pack);
}

/// [`gemm_bias_act`] with a caller-provided packing scratch (zero-alloc in
/// steady state for the `Naive`/`Blocked` backends).
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_act_into(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    act: FusedAct,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "A length must be m*k");
    assert_eq!(b.len(), k * n, "B length must be k*n");
    assert_eq!(out.len(), m * n, "out length must be m*n");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), n, "bias length must be n");
    }
    if m == 0 || n == 0 {
        return;
    }
    match backend {
        KernelBackend::Naive => gemm_naive(a, b, out, m, k, n),
        KernelBackend::Blocked => gemm_blocked(a, b, out, m, k, n, pack),
        // A generic GEMM has no resident operand to prepack, so the
        // prepacked backend packs on the fly like the parallel kernel
        // (bitwise identical either way). Resident-weight callers use
        // [`gemm_bias_act_prepacked`] instead.
        KernelBackend::BlockedParallel | KernelBackend::BlockedPrepacked => {
            gemm_parallel(a, b, out, m, k, n, pack)
        }
    }
    epilogue(out, bias, act, m, n);
}

/// Applies the fused bias + activation epilogue over the accumulated output.
fn epilogue(out: &mut [f32], bias: Option<&[f32]>, act: FusedAct, m: usize, n: usize) {
    match (bias, act) {
        (None, FusedAct::Identity) => {}
        (Some(bias), act) => {
            for row in out.chunks_exact_mut(n).take(m) {
                for (o, &b) in row.iter_mut().zip(bias) {
                    *o = act.apply(*o + b);
                }
            }
        }
        (None, act) => {
            for o in out.iter_mut() {
                *o = act.apply(*o);
            }
        }
    }
}

/// The correctness oracle: textbook `ijk` loop, scalar accumulator, no
/// blocking, strided access to `B` — intentionally unoptimized.
fn gemm_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Cache-blocked GEMM: packs `B` into `KC × NC` panels and runs the 4-row
/// microkernel over them. `out` is zeroed first and accumulated across `k`
/// blocks.
fn gemm_blocked(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut Vec<f32>,
) {
    out.fill(0.0);
    if k == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for kc in (0..k).step_by(KC) {
            let kcb = KC.min(k - kc);
            // Pack the B block so the microkernel streams contiguous panels
            // regardless of the parent matrix's row stride.
            grow(pack, kcb * nc);
            for kk in 0..kcb {
                let src = &b[(kc + kk) * n + jc..(kc + kk) * n + jc + nc];
                pack[kk * nc..kk * nc + nc].copy_from_slice(src);
            }
            let packed = &pack[..kcb * nc];
            microkernel_sweep(a, packed, out, m, kc, kcb, jc, nc, k, n);
        }
    }
}

/// Runs the 8/4/1-row microkernels over every output row against one packed
/// `B` panel — the row loop shared by the on-the-fly-packing and prepacked
/// blocked kernels (the panel *source* is the only thing that differs).
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_sweep(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    m: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let mut i = 0;
    while i + MR_WIDE <= m {
        microkernel_8(a, packed, out, i, kc, kcb, jc, nc, k, n);
        i += MR_WIDE;
    }
    while i + MR <= m {
        microkernel_4(a, packed, out, i, kc, kcb, jc, nc, k, n);
        i += MR;
    }
    while i < m {
        microkernel_1(a, packed, out, i, kc, kcb, jc, nc, k, n);
        i += 1;
    }
}

/// Accumulates 4 consecutive output rows against one packed `B` panel. The
/// 4 output row segments (≤ `NC` floats each) stay L1-resident across the
/// whole `k` block, and the inner loop is a pure vectorizable AXPY.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_4(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let rows = &mut out[i * n..(i + MR) * n];
    let (r0, rest) = rows.split_at_mut(n);
    let (r1, rest) = rest.split_at_mut(n);
    let (r2, r3) = rest.split_at_mut(n);
    let o0 = &mut r0[jc..jc + nc];
    let o1 = &mut r1[jc..jc + nc];
    let o2 = &mut r2[jc..jc + nc];
    let o3 = &mut r3[jc..jc + nc];
    for kk in 0..kcb {
        let a0 = a[i * k + kc + kk];
        let a1 = a[(i + 1) * k + kc + kk];
        let a2 = a[(i + 2) * k + kc + kk];
        let a3 = a[(i + 3) * k + kc + kk];
        let brow = &packed[kk * nc..kk * nc + nc];
        for j in 0..nc {
            let bv = brow[j];
            o0[j] += a0 * bv;
            o1[j] += a1 * bv;
            o2[j] += a2 * bv;
            o3[j] += a3 * bv;
        }
    }
}

/// Column-tile width of the register-blocked wide microkernel.
const TJ: usize = 16;

/// 8×16 register-tiled microkernel for batch-major GEMMs: an 8-row ×
/// 16-column accumulator tile stays in registers across the *whole* `k`
/// block, so the output is loaded and stored once per tile instead of once
/// per `kk` step (the 4-row kernel's store-port bottleneck), and each
/// packed-`B` panel is streamed `m / 8` times per batch instead of `m / 4`.
///
/// Per output element the accumulation order is still `kk` ascending —
/// identical to [`microkernel_4`]/[`microkernel_1`] — so results are
/// bitwise the same for every `m` and every row-to-kernel assignment.
///
/// On x86-64 with AVX2 the same body is re-compiled with 256-bit vectors
/// and dispatched at runtime ([`microkernel_8_avx2`]). FMA is deliberately
/// **not** enabled: fused multiply-adds round differently, and this kernel
/// guarantees bitwise-identical results to the scalar build — the AVX2
/// path executes the exact same IEEE multiply and add per element, just 8
/// lanes at a time.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_8(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by the runtime AVX2 check above.
        return unsafe { microkernel_8_avx2(a, packed, out, i, kc, kcb, jc, nc, k, n) };
    }
    microkernel_8_impl(a, packed, out, i, kc, kcb, jc, nc, k, n);
}

/// Whether the running CPU supports AVX2, detected once.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// [`microkernel_8_impl`] compiled with AVX2 codegen (256-bit vector mul +
/// add, no FMA — see [`microkernel_8`] for why fusion is excluded).
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
// SAFETY: unsafe solely because of `#[target_feature(enable = "avx2")]` —
// the body is safe Rust (bounds-checked slices, no raw pointers) recompiled
// under AVX2 codegen. Sole precondition: the running CPU supports AVX2,
// which the one caller (`microkernel_8`) verifies via `avx2_available()`
// (cached `is_x86_feature_detected!`) before dispatching here.
unsafe fn microkernel_8_avx2(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    microkernel_8_impl(a, packed, out, i, kc, kcb, jc, nc, k, n);
}

/// Shared body of the wide microkernel; `inline(always)` so the
/// `target_feature` wrapper re-compiles it under AVX2 codegen.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel_8_impl(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let mut jt = 0;
    while jt + TJ <= nc {
        let mut acc = [[0.0f32; TJ]; MR_WIDE];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&out[(i + r) * n + jc + jt..][..TJ]);
        }
        for kk in 0..kcb {
            let brow: &[f32; TJ] = packed[kk * nc + jt..][..TJ].try_into().expect("TJ tile");
            for (r, acc_row) in acc.iter_mut().enumerate() {
                let av = a[(i + r) * k + kc + kk];
                for (o, &bv) in acc_row.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            out[(i + r) * n + jc + jt..][..TJ].copy_from_slice(acc_row);
        }
        jt += TJ;
    }
    // Remainder columns (nc not a multiple of TJ): streaming form, same
    // per-element order.
    if jt < nc {
        for kk in 0..kcb {
            let brow = &packed[kk * nc + jt..kk * nc + nc];
            for r in 0..MR_WIDE {
                let av = a[(i + r) * k + kc + kk];
                let orow = &mut out[(i + r) * n + jc + jt..(i + r) * n + jc + nc];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Single-row edge case of the microkernel.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_1(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    i: usize,
    kc: usize,
    kcb: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let o = &mut out[i * n + jc..i * n + jc + nc];
    for kk in 0..kcb {
        let av = a[i * k + kc + kk];
        let brow = &packed[kk * nc..kk * nc + nc];
        for j in 0..nc {
            o[j] += av * brow[j];
        }
    }
}

/// Worker thread count the parallel band splits plan with, resolved once:
/// `available_parallelism` reads cgroup/affinity state from the kernel on
/// every call (~10 µs in a container), which used to dominate small GEMMs
/// on the parallel backend.
///
/// `CENTAUR_NUM_THREADS` overrides the detected value — the band paths of
/// `BlockedParallel`/`VectorizedParallel` degenerate on a single-core CI
/// container, so forcing a count > 1 is the only way to exercise them
/// there (and capping below the hardware count bounds a serving host's
/// kernel threads). Invalid values warn once (one-time by construction:
/// the `OnceLock` runs the closure once) and fall back to the detected
/// parallelism, same contract as [`parse_kernel_backend`].
#[cfg(feature = "parallel")]
pub(crate) fn hardware_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let detected = || std::thread::available_parallelism().map_or(1, |t| t.get());
        match std::env::var("CENTAUR_NUM_THREADS") {
            Ok(value) => parse_num_threads(&value).unwrap_or_else(|| {
                eprintln!(
                    "warning: invalid CENTAUR_NUM_THREADS value {value:?}, \
                     expected {NUM_THREADS_VALUES}; \
                     using the detected hardware parallelism"
                );
                detected()
            }),
            Err(_) => detected(),
        }
    })
}

/// Row-parallel blocked GEMM: output rows are split into per-thread bands
/// and each band runs the single-threaded blocked kernel independently
/// (bitwise-identical results to [`KernelBackend::Blocked`]).
/// Plans the row-band split shared by the on-the-fly-packing and prepacked
/// parallel kernels: returns the band height in rows, or `None` when the
/// problem should stay on the single-threaded kernel.
///
/// Cheap size gate first: small problems must not even pay for the
/// (cached) thread-count lookup, let alone a spawn. One band per
/// MR_WIDE-multiple of rows (band heights are rounded to the wide
/// microkernel, so planning with a finer granularity would promise more
/// bands than can actually spawn), at most one per worker thread. Band
/// height rounds to a multiple of MR_WIDE so every full band still runs
/// the 8×16 register-tiled kernel (a multiple of MR would hand 4-row bands
/// to the slower kernel on many-core hosts) and only the last band hits
/// the narrow edge paths. Per-element accumulation order is identical in
/// every microkernel, so banding stays bitwise-neutral.
#[cfg(feature = "parallel")]
fn parallel_band_rows(m: usize, k: usize, n: usize) -> Option<usize> {
    if 2 * m * n * k < PARALLEL_FLOP_THRESHOLD {
        return None;
    }
    let max_bands = m.div_ceil(MR_WIDE);
    let bands = hardware_threads().min(max_bands);
    if bands <= 1 {
        return None;
    }
    Some(m.div_ceil(bands).div_ceil(MR_WIDE) * MR_WIDE)
}

/// Runs `band_kernel(a_band, out_band, rows)` for every `band_rows`-high
/// row band on its own scoped thread — the spawn loop shared by the
/// packing and prepacked parallel kernels.
#[cfg(feature = "parallel")]
fn spawn_row_bands<F>(
    a: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    band_rows: usize,
    band_kernel: F,
) where
    F: Fn(&[f32], &mut [f32], usize) + Sync,
{
    std::thread::scope(|scope| {
        for (band, out_band) in out.chunks_mut(band_rows * n).enumerate() {
            let row0 = band * band_rows;
            let rows = out_band.len() / n;
            let a_band = &a[row0 * k..(row0 + rows) * k];
            let band_kernel = &band_kernel;
            scope.spawn(move || band_kernel(a_band, out_band, rows));
        }
    });
}

#[cfg(feature = "parallel")]
fn gemm_parallel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut Vec<f32>,
) {
    let Some(band_rows) = parallel_band_rows(m, k, n) else {
        return gemm_blocked(a, b, out, m, k, n, pack);
    };
    spawn_row_bands(a, out, k, n, band_rows, |a_band, out_band, rows| {
        let mut pack = Vec::new();
        gemm_blocked(a_band, b, out_band, rows, k, n, &mut pack);
    });
}

/// Without the `parallel` feature the parallel backend degrades to the
/// blocked kernel.
#[cfg(not(feature = "parallel"))]
fn gemm_parallel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pack: &mut Vec<f32>,
) {
    gemm_blocked(a, b, out, m, k, n, pack)
}

// ---------------------------------------------------------------------------
// Prepacked resident weights
// ---------------------------------------------------------------------------

/// How many [`PrepackedWeights::pack`] runs have executed process-wide.
///
/// Diagnostics for the pack-once contract: tests assert the counter rises
/// exactly once per dense layer at model load and stays flat across
/// steady-state serving (cloning a packed layer copies the panels without
/// re-packing).
static PREPACK_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`PrepackedWeights::pack`] executions (see
/// [`PREPACK_EVENTS`]).
pub fn prepack_events() -> u64 {
    PREPACK_EVENTS.load(Ordering::Relaxed)
}

/// A weight matrix `B` (`[k, n]` row-major) packed **once** into the exact
/// `KC × NC` panel sequence [`gemm_blocked`] writes into its workspace on
/// every call — including the remainder panels at the `k`/`n` edges — so
/// the 8/4/1-row microkernels can stream it directly with no per-call pack
/// loop.
///
/// At `m = 1` the `O(k·n)` pack is the same order of work as the
/// `O(m·k·n)` multiply itself, which is why a resident prepack is the
/// production move for serving: the dense accelerator holds MLP weights
/// next to the compute units, and the software path should too.
///
/// Panels are concatenated `jc`-major (`n` blocks) then `kc` (`k` blocks),
/// exactly the blocked kernel's loop order, so the panel for block
/// `(jc, kc)` starts at `k·jc + kc·nc` — a closed form, no directory
/// needed. The total element count is exactly `k·n` (packing is a
/// permutation; nothing is padded), so the resident footprint equals the
/// row-major matrix it mirrors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrepackedWeights {
    k: usize,
    n: usize,
    /// Concatenated `KC × NC` panels in `(jc outer, kc inner)` order.
    panels: Vec<f32>,
}

impl PrepackedWeights {
    /// Packs a row-major `[k, n]` matrix into resident panels.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "B length must be k*n");
        let mut panels = Vec::with_capacity(k * n);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for kc in (0..k).step_by(KC) {
                let kcb = KC.min(k - kc);
                for kk in 0..kcb {
                    let row = (kc + kk) * n + jc;
                    panels.extend_from_slice(&b[row..row + nc]);
                }
            }
        }
        PREPACK_EVENTS.fetch_add(1, Ordering::Relaxed);
        PrepackedWeights { k, n, panels }
    }

    /// Inner (`k`) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output (`n`) dimension of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resident footprint of the panels in bytes (exactly the row-major
    /// matrix's size — packing is a permutation, not an expansion).
    pub fn size_bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }

    /// The stored panel for block `(jc, kc)`: `kcb` rows of `nc` floats.
    #[inline]
    fn panel(&self, jc: usize, kc: usize, kcb: usize, nc: usize) -> &[f32] {
        let start = self.k * jc + kc * nc;
        &self.panels[start..start + kcb * nc]
    }
}

/// `out = a · packed` from resident panels: [`gemm`] with the per-call pack
/// loop already paid at load time. Bitwise identical to the
/// on-the-fly-packing path of the same backend (`Naive` walks the panels in
/// the oracle's exact accumulation order; the blocked backends feed the
/// same microkernels the workspace pack would).
///
/// # Panics
///
/// Panics if `a.len() != m * packed.k()` or `out.len() != m * packed.n()`.
pub fn gemm_prepacked(
    backend: KernelBackend,
    a: &[f32],
    packed: &PrepackedWeights,
    out: &mut [f32],
    m: usize,
) {
    gemm_bias_act_prepacked(backend, a, packed, None, FusedAct::Identity, out, m);
}

/// Fused `out = act(a · packed + bias)` from resident panels — the
/// prepacked counterpart of [`gemm_bias_act_into`], and the kernel every
/// `DenseLayer` forward pass runs on the prepacked backend. No packing
/// scratch is touched (or needed): steady state is zero-alloc with no
/// workspace pack buffer at all.
///
/// # Panics
///
/// Panics if a slice length disagrees with its shape.
pub fn gemm_bias_act_prepacked(
    backend: KernelBackend,
    a: &[f32],
    packed: &PrepackedWeights,
    bias: Option<&[f32]>,
    act: FusedAct,
    out: &mut [f32],
    m: usize,
) {
    let (k, n) = (packed.k, packed.n);
    assert_eq!(a.len(), m * k, "A length must be m*k");
    assert_eq!(out.len(), m * n, "out length must be m*n");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), n, "bias length must be n");
    }
    if m == 0 || n == 0 {
        return;
    }
    match backend {
        KernelBackend::Naive => gemm_naive_prepacked(a, packed, out, m),
        KernelBackend::Blocked => gemm_blocked_prepacked(a, packed, out, m),
        KernelBackend::BlockedParallel | KernelBackend::BlockedPrepacked => {
            gemm_parallel_prepacked(a, packed, out, m)
        }
    }
    epilogue(out, bias, act, m, n);
}

/// The oracle over resident panels: per output element the products
/// accumulate in ascending `k` order across the `kc` panels — exactly
/// [`gemm_naive`]'s order, so results are bitwise identical to it.
fn gemm_naive_prepacked(a: &[f32], pw: &PrepackedWeights, out: &mut [f32], m: usize) {
    let (k, n) = (pw.k, pw.n);
    for i in 0..m {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for j in 0..nc {
                let mut acc = 0.0f32;
                for kc in (0..k).step_by(KC) {
                    let kcb = KC.min(k - kc);
                    let panel = pw.panel(jc, kc, kcb, nc);
                    for kk in 0..kcb {
                        acc += a[i * k + kc + kk] * panel[kk * nc + j];
                    }
                }
                out[i * n + jc + j] = acc;
            }
        }
    }
}

/// [`gemm_blocked`] reading each `KC × NC` panel from the resident store
/// instead of packing it first — the microkernel sweep is byte-for-byte the
/// same code, so results are bitwise identical.
fn gemm_blocked_prepacked(a: &[f32], pw: &PrepackedWeights, out: &mut [f32], m: usize) {
    let (k, n) = (pw.k, pw.n);
    out.fill(0.0);
    if k == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for kc in (0..k).step_by(KC) {
            let kcb = KC.min(k - kc);
            let packed = pw.panel(jc, kc, kcb, nc);
            microkernel_sweep(a, packed, out, m, kc, kcb, jc, nc, k, n);
        }
    }
}

/// Row-parallel prepacked GEMM: the same band split as [`gemm_parallel`]
/// (shared [`parallel_band_rows`] plan + [`spawn_row_bands`] loop), but
/// every band reads the shared resident panels — no per-thread pack buffer
/// exists at all.
#[cfg(feature = "parallel")]
fn gemm_parallel_prepacked(a: &[f32], pw: &PrepackedWeights, out: &mut [f32], m: usize) {
    let (k, n) = (pw.k, pw.n);
    let Some(band_rows) = parallel_band_rows(m, k, n) else {
        return gemm_blocked_prepacked(a, pw, out, m);
    };
    spawn_row_bands(a, out, k, n, band_rows, |a_band, out_band, rows| {
        gemm_blocked_prepacked(a_band, pw, out_band, rows)
    });
}

/// Without the `parallel` feature the prepacked band path degrades to the
/// single-threaded prepacked kernel.
#[cfg(not(feature = "parallel"))]
fn gemm_parallel_prepacked(a: &[f32], pw: &PrepackedWeights, out: &mut [f32], m: usize) {
    gemm_blocked_prepacked(a, pw, out, m)
}

// ---------------------------------------------------------------------------
// Chunked reductions (gather/reduce building blocks)
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Vectorized gather-reduce kernels (the sparse engine's inner loops)
// ---------------------------------------------------------------------------

/// Total gathered bytes above which the parallel sparse backend splits a
/// batched gather-reduce across threads (exposed for the embedding layer's
/// partitioner).
pub(crate) fn sparse_parallel_bytes_threshold() -> usize {
    SPARSE_PARALLEL_BYTES_THRESHOLD
}

/// Issues software prefetches for one embedding row starting at `base`
/// (one prefetch per 64-byte line). No-op off x86-64 and past the end of
/// the table.
#[inline(always)]
fn prefetch_row(data: &[f32], base: usize, dim: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is an architectural hint that cannot fault and
    // is baseline on all x86-64 CPUs (SSE), so no cpuid check is needed. The
    // only pointer arithmetic is `as_ptr().add(base + off)`, formed only
    // when `base + off < data.len()`, so `add` stays within the allocation.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let mut off = 0;
        while off < dim {
            if base + off < data.len() {
                _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(base + off) as *const i8);
            }
            off += 16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, base, dim);
    }
}

/// Upper bound on rows prefetched per upcoming index list (8 KB of 32-wide
/// rows — enough to cover a whole production-length list without flooding
/// the load ports on pathological thousand-lookup bags).
const GATHER_LIST_PREFETCH_CAP: usize = 64;

/// Prefetches an upcoming index list's rows (up to
/// [`GATHER_LIST_PREFETCH_CAP`]). The in-kernel prefetcher can only see one
/// list, so the last [`GATHER_PREFETCH_DISTANCE`] rows of every list go
/// unprefetched — on short production lists (10–30 lookups) that is a
/// third or more of all gathers, and on skewed traffic the cold tail
/// misses are exactly the latency that dominates. Table-major batch loops
/// call this for sample `s + 1`'s list right before reducing sample `s`,
/// pipelining the whole next list's misses behind the current sample's
/// arithmetic.
#[inline]
pub fn prefetch_gather_list(data: &[f32], dim: usize, indices: &[u32]) {
    for &idx in indices.iter().take(GATHER_LIST_PREFETCH_CAP) {
        prefetch_row(data, idx as usize * dim, dim);
    }
}

/// `out += Σ rows[indices]` over a flat row-major `[rows, dim]` table:
/// the vectorized gather-**sum** inner loop (accumulate-into semantics, so
/// chunked streams — the EB-Streamer's SRAM-sized index chunks — can fold
/// into one running accumulator).
///
/// The accumulator lives in [`GATHER_TILE`]-float register tiles that stay
/// resident across the whole index list, while upcoming rows are software-
/// prefetched [`GATHER_PREFETCH_DISTANCE`] indices ahead — embedding
/// gathers on realistic tables miss L2 on almost every row, and the known
/// index stream lets several misses overlap instead of serialising on the
/// accumulate chain. On x86-64 with AVX2 the same body is re-compiled with
/// 256-bit vectors and dispatched at runtime (no FMA — there is no fused
/// op here at all, each element does the same IEEE add in index order, so
/// results are **bitwise identical** to the scalar oracle).
///
/// An empty index list leaves `out` untouched (callers zero-fill first,
/// matching the `SparseLengthsSum` empty-segment convention).
///
/// # Panics
///
/// Panics if `out.len() != dim` or any index addresses past the end of
/// `data` — callers validate indices first to report real errors.
pub fn gather_rows_sum(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    assert_eq!(out.len(), dim, "gather output width mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by the runtime AVX2 check above.
        return unsafe { gather_rows_sum_avx2(data, dim, indices, out) };
    }
    gather_rows_sum_impl(data, dim, indices, out);
}

/// [`gather_rows_sum_impl`] compiled with AVX2 codegen.
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: unsafe solely because of `#[target_feature(enable = "avx2")]` —
// the body is safe Rust (bounds-checked row slices; the only intrinsic is
// the non-faulting prefetch inside `prefetch_row`). Sole precondition: the
// running CPU supports AVX2, verified by the one caller
// (`gather_rows_sum`) via `avx2_available()` before dispatching here.
unsafe fn gather_rows_sum_avx2(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    gather_rows_sum_impl(data, dim, indices, out);
}

/// Shared body of the gather-sum kernel; `inline(always)` so the
/// `target_feature` wrapper re-compiles it under AVX2 codegen.
///
/// One pass over the index list, always: the fast path keeps the whole
/// accumulator in registers when the row is exactly [`GATHER_TILE`] wide
/// (the paper's 32-float rows); any other width accumulates each row with
/// the chunked vector add — the accumulator is a single L1-resident
/// stretch of `out`, and every row is fetched exactly once with the
/// prefetcher running ahead.
#[inline(always)]
fn gather_rows_sum_impl(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    if dim == GATHER_TILE {
        let mut acc = [0.0f32; GATHER_TILE];
        acc.copy_from_slice(out);
        for (i, &idx) in indices.iter().enumerate() {
            if let Some(&pf) = indices.get(i + GATHER_PREFETCH_DISTANCE) {
                prefetch_row(data, pf as usize * dim, dim);
            }
            let base = idx as usize * dim;
            let row = &data[base..base + GATHER_TILE];
            for (a, &r) in acc.iter_mut().zip(row) {
                *a += r;
            }
        }
        out.copy_from_slice(&acc);
        return;
    }
    for (i, &idx) in indices.iter().enumerate() {
        if let Some(&pf) = indices.get(i + GATHER_PREFETCH_DISTANCE) {
            prefetch_row(data, pf as usize * dim, dim);
        }
        let base = idx as usize * dim;
        add_assign(out, &data[base..base + dim]);
    }
}

/// `out = element-wise max over rows[indices]` — the vectorized gather-
/// **max** inner loop, structured exactly like [`gather_rows_sum`]
/// (register-tiled, prefetched, AVX2-dispatched, bitwise identical to the
/// scalar `max_assign` chain).
///
/// # Panics
///
/// Panics if `indices` is empty (max of an empty stream is the caller's
/// zero-fill case), `out.len() != dim`, or an index is out of bounds.
pub fn gather_rows_max(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    assert!(!indices.is_empty(), "gather_rows_max of an empty stream");
    assert_eq!(out.len(), dim, "gather output width mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: guarded by the runtime AVX2 check above.
        return unsafe { gather_rows_max_avx2(data, dim, indices, out) };
    }
    gather_rows_max_impl(data, dim, indices, out);
}

/// [`gather_rows_max_impl`] compiled with AVX2 codegen.
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: unsafe solely because of `#[target_feature(enable = "avx2")]` —
// the body is safe Rust (bounds-checked row slices; the only intrinsic is
// the non-faulting prefetch inside `prefetch_row`). Sole precondition: the
// running CPU supports AVX2, verified by the one caller
// (`gather_rows_max`) via `avx2_available()` before dispatching here.
unsafe fn gather_rows_max_avx2(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    gather_rows_max_impl(data, dim, indices, out);
}

/// Shared body of the gather-max kernel (same single-pass structure as
/// [`gather_rows_sum_impl`]).
#[inline(always)]
fn gather_rows_max_impl(data: &[f32], dim: usize, indices: &[u32], out: &mut [f32]) {
    let first = indices[0] as usize * dim;
    if dim == GATHER_TILE {
        let mut acc = [0.0f32; GATHER_TILE];
        acc.copy_from_slice(&data[first..first + GATHER_TILE]);
        for (i, &idx) in indices[1..].iter().enumerate() {
            if let Some(&pf) = indices[1..].get(i + GATHER_PREFETCH_DISTANCE) {
                prefetch_row(data, pf as usize * dim, dim);
            }
            let base = idx as usize * dim;
            let row = &data[base..base + GATHER_TILE];
            for (a, &r) in acc.iter_mut().zip(row) {
                if r > *a {
                    *a = r;
                }
            }
        }
        out.copy_from_slice(&acc);
        return;
    }
    out.copy_from_slice(&data[first..first + dim]);
    for (i, &idx) in indices[1..].iter().enumerate() {
        if let Some(&pf) = indices[1..].get(i + GATHER_PREFETCH_DISTANCE) {
            prefetch_row(data, pf as usize * dim, dim);
        }
        let base = idx as usize * dim;
        max_assign(out, &data[base..base + dim]);
    }
}

/// `acc[i] += row[i]`, unrolled in chunks of [`LANES`] so the compiler emits
/// straight-line vector adds.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline(always)]
pub fn add_assign(acc: &mut [f32], row: &[f32]) {
    assert_eq!(acc.len(), row.len(), "reduction width mismatch");
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut row_chunks = row.chunks_exact(LANES);
    for (a, r) in acc_chunks.by_ref().zip(row_chunks.by_ref()) {
        for l in 0..LANES {
            a[l] += r[l];
        }
    }
    for (a, r) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        *a += r;
    }
}

/// `acc[i] = max(acc[i], row[i])`, chunked like [`add_assign`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn max_assign(acc: &mut [f32], row: &[f32]) {
    assert_eq!(acc.len(), row.len(), "reduction width mismatch");
    let mut acc_chunks = acc.chunks_exact_mut(LANES);
    let mut row_chunks = row.chunks_exact(LANES);
    for (a, r) in acc_chunks.by_ref().zip(row_chunks.by_ref()) {
        for l in 0..LANES {
            if r[l] > a[l] {
                a[l] = r[l];
            }
        }
    }
    for (a, r) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(row_chunks.remainder())
    {
        if *r > *a {
            *a = *r;
        }
    }
}

/// `acc[i] *= s`.
#[inline]
pub fn scale(acc: &mut [f32], s: f32) {
    for a in acc.iter_mut() {
        *a *= s;
    }
}

/// Dot product of two equal-length slices, accumulated in [`LANES`] partial
/// sums so the compiler can keep them in vector registers.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot width mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (a, b) in xc.by_ref().zip(yc.by_ref()) {
        for l in 0..LANES {
            lanes[l] += a[l] * b[l];
        }
    }
    let mut acc: f32 = lanes.iter().sum();
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        acc += a * b;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, n: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut v = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                v[i * n + j] = f(i, j);
            }
        }
        v
    }

    fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 5),
            (5, 7, 1),
            (4, 4, 4),
            (3, 300, 9),
            (17, 33, 65),
            (64, 128, 64),
            (70, 513, 70),
        ] {
            let a = fill(m, k, |i, j| ((i * 13 + j * 7) % 19) as f32 * 0.25 - 2.0);
            let b = fill(k, n, |i, j| ((i * 5 + j * 11) % 17) as f32 * 0.125 - 1.0);
            let mut naive = vec![0.0; m * n];
            let mut blocked = vec![0.0; m * n];
            let mut parallel = vec![0.0; m * n];
            gemm(KernelBackend::Naive, &a, &b, &mut naive, m, k, n);
            gemm(KernelBackend::Blocked, &a, &b, &mut blocked, m, k, n);
            gemm(
                KernelBackend::BlockedParallel,
                &a,
                &b,
                &mut parallel,
                m,
                k,
                n,
            );
            assert!(
                max_rel_diff(&naive, &blocked) < 1e-4,
                "blocked mismatch at {m}x{k}x{n}"
            );
            // Row-band parallelism must be bitwise identical to blocked.
            assert_eq!(blocked, parallel, "parallel mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_ops() {
        let (m, k, n) = (6, 40, 10);
        let a = fill(m, k, |i, j| (i as f32 - j as f32) * 0.1);
        let b = fill(k, n, |i, j| ((i + j) % 7) as f32 * 0.2 - 0.5);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.3 - 1.0).collect();
        let mut plain = vec![0.0; m * n];
        gemm(KernelBackend::Blocked, &a, &b, &mut plain, m, k, n);
        let mut fused = vec![0.0; m * n];
        gemm_bias_act(
            KernelBackend::Blocked,
            &a,
            &b,
            Some(&bias),
            FusedAct::Relu,
            &mut fused,
            m,
            k,
            n,
        );
        for i in 0..m {
            for j in 0..n {
                let expected = (plain[i * n + j] + bias[j]).max(0.0);
                assert!((fused[i * n + j] - expected).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gemm_into_is_alloc_free_after_warmup() {
        let (m, k, n) = (8, 300, 40);
        let a = fill(m, k, |i, j| (i + j) as f32 * 0.01);
        let b = fill(k, n, |i, j| (i as f32 - j as f32) * 0.01);
        let mut out = vec![0.0; m * n];
        let mut ws = Workspace::new();
        gemm_into(KernelBackend::Blocked, &a, &b, &mut out, m, k, n, &mut ws);
        let cap = ws.pack.capacity();
        for _ in 0..3 {
            gemm_into(KernelBackend::Blocked, &a, &b, &mut out, m, k, n, &mut ws);
        }
        assert_eq!(ws.pack.capacity(), cap, "pack buffer must not regrow");
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut out = vec![7.0; 0];
        gemm(KernelBackend::Blocked, &[], &[], &mut out, 0, 3, 0);
        // k == 0: the product is the zero matrix.
        let mut out = [0.5, 0.5];
        gemm(KernelBackend::Blocked, &[], &[], &mut out, 2, 0, 1);
        assert_eq!(out, [0.0, 0.0]);
    }

    #[test]
    fn reductions_match_scalar_loops() {
        let row: Vec<f32> = (0..37).map(|i| i as f32 * 0.5 - 9.0).collect();
        let other: Vec<f32> = (0..37).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();
        let mut acc = row.clone();
        add_assign(&mut acc, &other);
        for i in 0..37 {
            assert_eq!(acc[i], row[i] + other[i]);
        }
        let mut acc = row.clone();
        max_assign(&mut acc, &other);
        for i in 0..37 {
            assert_eq!(acc[i], row[i].max(other[i]));
        }
        let d = dot(&row, &other);
        let expected: f32 = row.iter().zip(&other).map(|(a, b)| a * b).sum();
        assert!((d - expected).abs() < 1e-3);
        let mut acc = row.clone();
        scale(&mut acc, 0.5);
        assert_eq!(acc[4], row[4] * 0.5);
    }

    #[test]
    fn backend_labels_and_global_default() {
        assert_eq!(KernelBackend::Naive.label(), "naive");
        assert_eq!(KernelBackend::BlockedPrepacked.label(), "blocked-prepacked");
        assert_eq!(KernelBackend::all().len(), 4);
        // The global default must be one of the optimized backends.
        assert_ne!(global_backend(), KernelBackend::Naive);
    }

    #[test]
    fn prepacked_gemm_is_bitwise_identical_to_packing_path() {
        // Shapes straddling the KC=256/NC=512 block boundaries and hitting
        // the 8-, 4- and 1-row microkernel tails.
        for &(m, k, n) in &[
            (1, 7, 5),
            (1, 300, 17),
            (4, 257, 16),
            (8, 64, 33),
            (13, 513, 30),
            (3, 100, 513),
        ] {
            let a = fill(m, k, |i, j| ((i * 13 + j * 7) % 19) as f32 * 0.25 - 2.0);
            let b = fill(k, n, |i, j| ((i * 5 + j * 11) % 17) as f32 * 0.125 - 1.0);
            let packed = PrepackedWeights::pack(&b, k, n);
            assert_eq!(packed.size_bytes(), k * n * 4, "pack is a permutation");
            for backend in KernelBackend::all() {
                // The prepacked-only backend's on-the-fly reference is the
                // blocked kernel it feeds.
                let reference_backend = if backend == KernelBackend::BlockedPrepacked {
                    KernelBackend::Blocked
                } else {
                    backend
                };
                let mut reference = vec![f32::NAN; m * n];
                gemm(reference_backend, &a, &b, &mut reference, m, k, n);
                let mut out = vec![f32::NAN; m * n];
                gemm_prepacked(backend, &a, &packed, &mut out, m);
                assert_eq!(reference, out, "{backend:?} diverged at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn prepack_counts_events_and_handles_empty_dims() {
        let before = prepack_events();
        let packed = PrepackedWeights::pack(&[], 0, 3);
        // The counter is process-global and other tests in this binary pack
        // concurrently, so only monotonicity can be asserted here; the
        // exactly-once-per-layer accounting lives in `tests/zero_alloc.rs`,
        // whose binary holds a single test.
        assert!(prepack_events() > before);
        let mut out = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        // k == 0: the product is the zero matrix (plus any epilogue).
        gemm_prepacked(KernelBackend::Blocked, &[], &packed, &mut out, 2);
        assert_eq!(out, [0.0; 6]);
        let empty = PrepackedWeights::pack(&[], 4, 0);
        gemm_prepacked(KernelBackend::Blocked, &[0.0; 8], &empty, &mut [], 2);
    }

    #[test]
    fn num_threads_env_values_parse() {
        assert_eq!(parse_num_threads("1"), Some(1));
        assert_eq!(parse_num_threads("16"), Some(16));
        // The historic failure mode class: misspellings and out-of-domain
        // values must be rejected, never silently defaulted.
        for bad in ["0", "-1", "two", "4.0", " 4", "4 ", ""] {
            assert_eq!(parse_num_threads(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn kernel_backend_env_values_parse() {
        assert_eq!(parse_kernel_backend("naive"), Some(KernelBackend::Naive));
        assert_eq!(
            parse_kernel_backend("blocked"),
            Some(KernelBackend::Blocked)
        );
        assert_eq!(
            parse_kernel_backend("parallel"),
            Some(KernelBackend::BlockedParallel)
        );
        assert_eq!(
            parse_kernel_backend("blocked-parallel"),
            Some(KernelBackend::BlockedParallel)
        );
        assert_eq!(
            parse_kernel_backend("prepacked"),
            Some(KernelBackend::BlockedPrepacked)
        );
        // Every label round-trips, so docs/benches and the env var agree.
        for backend in KernelBackend::all() {
            assert_eq!(parse_kernel_backend(backend.label()), Some(backend));
        }
    }

    #[test]
    fn misspelled_kernel_backend_is_rejected_not_defaulted() {
        // The historic failure mode: `vectorised`, stray whitespace and
        // case changes silently fell back to the built-in default.
        for bad in ["vectorised", "Blocked", " blocked", "blocked ", "", "fast"] {
            assert_eq!(parse_kernel_backend(bad), None, "{bad:?} must not parse");
        }
        // The accepted set named in the warning mentions every real value.
        for backend in KernelBackend::all() {
            assert!(KERNEL_BACKEND_VALUES.contains(backend.label()));
        }
    }

    #[test]
    fn sparse_backend_env_values_parse() {
        assert_eq!(parse_sparse_backend("scalar"), Some(SparseBackend::Scalar));
        assert_eq!(
            parse_sparse_backend("vectorized"),
            Some(SparseBackend::Vectorized)
        );
        assert_eq!(
            parse_sparse_backend("parallel"),
            Some(SparseBackend::VectorizedParallel)
        );
        assert_eq!(
            parse_sparse_backend("vectorized-parallel"),
            Some(SparseBackend::VectorizedParallel)
        );
        for backend in SparseBackend::all() {
            assert_eq!(parse_sparse_backend(backend.label()), Some(backend));
        }
    }

    #[test]
    fn misspelled_sparse_backend_is_rejected_not_defaulted() {
        for bad in ["vectorised", "Scalar", "simd", " vectorized", ""] {
            assert_eq!(parse_sparse_backend(bad), None, "{bad:?} must not parse");
        }
        for backend in SparseBackend::all() {
            assert!(SPARSE_BACKEND_VALUES.contains(backend.label()));
        }
    }
}
