//! Access-trace types shared by every timing simulator in the workspace.
//!
//! The timing models (CPU-only, CPU-GPU, Centaur) never need embedding
//! *values* — only which rows of which tables a request touches and how many
//! bytes move. A [`GatherTrace`] captures exactly that, so Table-I-sized
//! models (hundreds of GB of embeddings in production) can be simulated
//! without allocating the tables.

use crate::config::ModelConfig;
use crate::EMBEDDING_ELEM_BYTES;
use serde::{Deserialize, Serialize};

/// A single embedding gather: one row of one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EmbeddingAccess {
    /// Which embedding table is read.
    pub table: usize,
    /// Which row of that table is read.
    pub row: u64,
}

/// All embedding gathers of one inference request (one sample), grouped per
/// table in lookup order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SampleTrace {
    /// `rows_per_table[t]` lists the rows gathered from table `t`.
    pub rows_per_table: Vec<Vec<u64>>,
}

impl SampleTrace {
    /// Total gathers in this sample.
    pub fn num_lookups(&self) -> usize {
        self.rows_per_table.iter().map(Vec::len).sum()
    }

    /// Iterates over the individual accesses in table order.
    pub fn iter_accesses(&self) -> impl Iterator<Item = EmbeddingAccess> + '_ {
        self.rows_per_table
            .iter()
            .enumerate()
            .flat_map(|(table, rows)| rows.iter().map(move |&row| EmbeddingAccess { table, row }))
    }

    /// Converts the per-table `u64` rows into the `u32` index lists the
    /// functional [`crate::EmbeddingBag`] API expects.
    pub fn as_u32_indices(&self) -> Vec<Vec<u32>> {
        self.rows_per_table
            .iter()
            .map(|rows| rows.iter().map(|&r| r as u32).collect())
            .collect()
    }
}

/// The embedding gathers of a whole batch of requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherTrace {
    /// Embedding dimension (row width in elements).
    pub embedding_dim: usize,
    /// One entry per sample in the batch.
    pub samples: Vec<SampleTrace>,
}

impl GatherTrace {
    /// Creates a trace from per-sample tables of rows.
    pub fn new(embedding_dim: usize, samples: Vec<SampleTrace>) -> Self {
        GatherTrace {
            embedding_dim,
            samples,
        }
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.samples.len()
    }

    /// Bytes of one embedding row.
    pub fn row_bytes(&self) -> usize {
        self.embedding_dim * EMBEDDING_ELEM_BYTES
    }

    /// Total number of embedding gathers in the batch.
    pub fn total_lookups(&self) -> usize {
        self.samples.iter().map(SampleTrace::num_lookups).sum()
    }

    /// Total *useful* bytes gathered — the numerator of the paper's
    /// effective-throughput metric.
    pub fn gathered_bytes(&self) -> u64 {
        self.total_lookups() as u64 * self.row_bytes() as u64
    }

    /// Total bytes of sparse indices (4 bytes per index) the host must ship
    /// to whichever engine performs the gathers.
    pub fn index_bytes(&self) -> u64 {
        self.total_lookups() as u64 * 4
    }

    /// Iterates over every access of every sample, in batch order.
    pub fn iter_accesses(&self) -> impl Iterator<Item = EmbeddingAccess> + '_ {
        self.samples.iter().flat_map(SampleTrace::iter_accesses)
    }
}

/// Layout of the embedding tables in the (simulated) host physical address
/// space: each table occupies a contiguous region starting at `base`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLayout {
    base: u64,
    row_bytes: u64,
    rows_per_table: u64,
    num_tables: usize,
    table_stride: u64,
}

impl TableLayout {
    /// Default base physical address for embedding tables in the simulated
    /// address space (1 GiB, clear of the model/code region).
    pub const DEFAULT_BASE: u64 = 1 << 30;

    /// Creates a layout for `num_tables` tables of `rows_per_table` rows of
    /// `row_bytes` bytes, packed contiguously from `base` with each table
    /// aligned up to a 4 KiB page boundary.
    pub fn new(base: u64, num_tables: usize, rows_per_table: u64, row_bytes: u64) -> Self {
        let raw = rows_per_table * row_bytes;
        let table_stride = raw.div_ceil(4096) * 4096;
        TableLayout {
            base,
            row_bytes,
            rows_per_table,
            num_tables,
            table_stride,
        }
    }

    /// Creates the layout implied by a model configuration, based at
    /// [`TableLayout::DEFAULT_BASE`].
    pub fn for_config(config: &ModelConfig) -> Self {
        TableLayout::new(
            Self::DEFAULT_BASE,
            config.num_tables,
            config.rows_per_table,
            config.row_bytes() as u64,
        )
    }

    /// Number of tables covered by the layout.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Bytes per embedding row.
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Physical address of the first byte of `access`.
    ///
    /// # Panics
    ///
    /// Panics if the access is outside the layout (tables or rows out of
    /// range) — traces are generated against the same config, so this is a
    /// programming error rather than a runtime condition.
    pub fn address_of(&self, access: EmbeddingAccess) -> u64 {
        assert!(
            access.table < self.num_tables,
            "table {} out of range ({})",
            access.table,
            self.num_tables
        );
        assert!(
            access.row < self.rows_per_table,
            "row {} out of range ({})",
            access.row,
            self.rows_per_table
        );
        self.base + access.table as u64 * self.table_stride + access.row * self.row_bytes
    }

    /// Total bytes spanned by the layout (including per-table alignment
    /// padding).
    pub fn span_bytes(&self) -> u64 {
        self.num_tables as u64 * self.table_stride
    }

    /// One past the highest address used by the layout.
    pub fn end_address(&self) -> u64 {
        self.base + self.span_bytes()
    }
}

/// Everything a timing simulator needs to know about one batched inference
/// request: the model, the batch size and the gather trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceTrace {
    /// The model configuration the request targets.
    pub config: ModelConfig,
    /// Embedding gathers of every sample in the batch.
    pub gather: GatherTrace,
}

impl InferenceTrace {
    /// Creates an inference trace, checking that the gather trace is
    /// consistent with the configuration (same table count per sample).
    ///
    /// # Panics
    ///
    /// Panics if any sample references a different number of tables than the
    /// configuration declares.
    pub fn new(config: ModelConfig, gather: GatherTrace) -> Self {
        for sample in &gather.samples {
            assert_eq!(
                sample.rows_per_table.len(),
                config.num_tables,
                "sample trace table count does not match config"
            );
        }
        InferenceTrace { config, gather }
    }

    /// Batch size of the request.
    pub fn batch_size(&self) -> usize {
        self.gather.batch_size()
    }

    /// Bytes of dense features the host supplies for the whole batch.
    pub fn dense_bytes(&self) -> u64 {
        self.config.dense_bytes_per_sample() * self.batch_size() as u64
    }

    /// Bytes of sparse indices for the whole batch.
    pub fn index_bytes(&self) -> u64 {
        self.gather.index_bytes()
    }

    /// Useful embedding bytes gathered for the whole batch.
    pub fn gathered_bytes(&self) -> u64 {
        self.gather.gathered_bytes()
    }

    /// Dense-layer FLOPs for the whole batch.
    pub fn dense_flops(&self) -> u64 {
        self.config.dense_flops_per_sample() * self.batch_size() as u64
    }

    /// The table layout implied by the configuration.
    pub fn layout(&self) -> TableLayout {
        TableLayout::for_config(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperModel;

    fn sample(rows: &[&[u64]]) -> SampleTrace {
        SampleTrace {
            rows_per_table: rows.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn sample_trace_counts_and_iteration() {
        let s = sample(&[&[1, 2, 3], &[7]]);
        assert_eq!(s.num_lookups(), 4);
        let accesses: Vec<_> = s.iter_accesses().collect();
        assert_eq!(accesses.len(), 4);
        assert_eq!(accesses[0], EmbeddingAccess { table: 0, row: 1 });
        assert_eq!(accesses[3], EmbeddingAccess { table: 1, row: 7 });
        assert_eq!(s.as_u32_indices(), vec![vec![1, 2, 3], vec![7]]);
    }

    #[test]
    fn gather_trace_accounting() {
        let trace = GatherTrace::new(
            32,
            vec![sample(&[&[0, 1], &[2]]), sample(&[&[3], &[4, 5, 6]])],
        );
        assert_eq!(trace.batch_size(), 2);
        assert_eq!(trace.row_bytes(), 128);
        assert_eq!(trace.total_lookups(), 7);
        assert_eq!(trace.gathered_bytes(), 7 * 128);
        assert_eq!(trace.index_bytes(), 28);
        assert_eq!(trace.iter_accesses().count(), 7);
    }

    #[test]
    fn table_layout_addresses_are_disjoint_and_aligned() {
        let layout = TableLayout::new(0x1000, 3, 100, 128);
        let a00 = layout.address_of(EmbeddingAccess { table: 0, row: 0 });
        let a01 = layout.address_of(EmbeddingAccess { table: 0, row: 1 });
        let a10 = layout.address_of(EmbeddingAccess { table: 1, row: 0 });
        assert_eq!(a00, 0x1000);
        assert_eq!(a01 - a00, 128);
        assert_eq!((a10 - a00) % 4096, 0);
        assert!(a10 >= a00 + 100 * 128);
        assert_eq!(layout.end_address(), 0x1000 + layout.span_bytes());
    }

    #[test]
    #[should_panic(expected = "row 100 out of range")]
    fn table_layout_panics_on_bad_row() {
        let layout = TableLayout::new(0, 1, 100, 128);
        layout.address_of(EmbeddingAccess { table: 0, row: 100 });
    }

    #[test]
    fn layout_for_paper_config_spans_table_size() {
        let c = PaperModel::Dlrm5.config();
        let layout = TableLayout::for_config(&c);
        assert_eq!(layout.num_tables(), 50);
        // Span must be at least the raw embedding bytes (3.2 GB).
        assert!(layout.span_bytes() >= c.embedding_bytes());
    }

    #[test]
    fn inference_trace_aggregates() {
        let c = PaperModel::Dlrm1.config().with_rows_per_table(1000);
        let per_sample: Vec<SampleTrace> = (0..4)
            .map(|s| SampleTrace {
                rows_per_table: (0..c.num_tables)
                    .map(|t| {
                        (0..c.lookups_per_table as u64)
                            .map(|i| (s + t as u64 + i) % 1000)
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        let trace = InferenceTrace::new(c.clone(), GatherTrace::new(c.embedding_dim, per_sample));
        assert_eq!(trace.batch_size(), 4);
        assert_eq!(trace.gathered_bytes(), 4 * c.gathered_bytes_per_sample());
        assert_eq!(trace.index_bytes(), 4 * c.index_bytes_per_sample());
        assert_eq!(trace.dense_bytes(), 4 * 13 * 4);
        assert_eq!(trace.dense_flops(), 4 * c.dense_flops_per_sample());
    }

    #[test]
    #[should_panic(expected = "table count")]
    fn inference_trace_validates_table_count() {
        let c = PaperModel::Dlrm1.config();
        let bad = GatherTrace::new(32, vec![sample(&[&[1]])]); // 1 table vs 5
        InferenceTrace::new(c, bad);
    }
}
