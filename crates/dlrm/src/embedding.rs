//! Embedding tables and the `SparseLengthsSum`-style gather/reduce operator.
//!
//! An embedding table stores millions of low-dimensional vectors
//! contiguously; a *gather* reads a set of rows selected by sparse indices
//! and a *reduction* combines them element-wise (sum by default, exactly as
//! Caffe2's `SparseLengthsSum` in Figure 2 of the paper).

use crate::error::DlrmError;
use crate::kernel::{
    add_assign, gather_rows_max, gather_rows_sum, global_sparse_backend, max_assign, scale,
    SparseBackend,
};
use crate::tensor::Matrix;
use crate::EMBEDDING_ELEM_BYTES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element-wise operator used to combine gathered embedding rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReductionOp {
    /// Element-wise sum (Caffe2 `SparseLengthsSum`, the paper's default).
    #[default]
    Sum,
    /// Element-wise mean (`SparseLengthsMean`).
    Mean,
    /// Element-wise maximum.
    Max,
}

impl ReductionOp {
    /// Human readable operator name as used by Caffe2-style frameworks.
    pub fn op_name(self) -> &'static str {
        match self {
            ReductionOp::Sum => "SparseLengthsSum",
            ReductionOp::Mean => "SparseLengthsMean",
            ReductionOp::Max => "SparseLengthsMax",
        }
    }
}

/// A single embedding lookup table: `rows` vectors of `dim` `f32` elements.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    dim: usize,
    rows: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a table of zeros.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        EmbeddingTable {
            dim,
            rows,
            data: vec![0.0; rows * dim],
        }
    }

    /// Creates a table with uniform random values in `[-0.5, 0.5)`, seeded
    /// deterministically.
    pub fn random(rows: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * dim).map(|_| rng.gen::<f32>() - 0.5).collect();
        EmbeddingTable { dim, rows, data }
    }

    /// Creates a table from a generator function `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, dim: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * dim);
        for r in 0..rows {
            for c in 0..dim {
                data.push(f(r, c));
            }
        }
        EmbeddingTable { dim, rows, data }
    }

    /// Embedding (vector) dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (distinct categorical values) in the table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Size of one embedding row in bytes.
    pub fn row_bytes(&self) -> usize {
        self.dim * EMBEDDING_ELEM_BYTES
    }

    /// Total size of the table in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows * self.row_bytes()
    }

    /// Borrows row `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::IndexOutOfBounds`] when the index exceeds the
    /// number of rows.
    pub fn row(&self, index: u32) -> Result<&[f32], DlrmError> {
        let idx = index as usize;
        if idx >= self.rows {
            return Err(DlrmError::IndexOutOfBounds {
                index: index as u64,
                rows: self.rows as u64,
                table: 0,
            });
        }
        Ok(&self.data[idx * self.dim..(idx + 1) * self.dim])
    }

    /// Borrows the whole table as a flat row-major `[rows, dim]` slice —
    /// the raw storage the vectorized gather kernels and the EB-Streamer's
    /// hot-row cache stream rows out of.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Checks every index against the table bounds, returning the same
    /// error [`EmbeddingTable::row`] would for the first invalid one — the
    /// validation pre-pass of the vectorized gather paths, which separate
    /// error discovery from the branch-free inner loop.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::IndexOutOfBounds`] for the first invalid index.
    pub fn validate_indices(&self, indices: &[u32]) -> Result<(), DlrmError> {
        match indices.iter().find(|&&idx| idx as usize >= self.rows) {
            Some(&idx) => Err(DlrmError::IndexOutOfBounds {
                index: idx as u64,
                rows: self.rows as u64,
                table: 0,
            }),
            None => Ok(()),
        }
    }

    /// Gathers the requested rows into a `[indices.len(), dim]` matrix
    /// without reducing them (step 1 in Figure 3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::IndexOutOfBounds`] when any index is invalid.
    pub fn gather(&self, indices: &[u32]) -> Result<Matrix, DlrmError> {
        let mut out = Matrix::zeros(indices.len(), self.dim);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx)?);
        }
        Ok(out)
    }

    /// Gathers the requested rows and reduces them into a single `[1, dim]`
    /// vector using `op` (steps 1 and 2 in Figure 3; equivalent to the
    /// pseudo-code of `SparseLengthsSum` in Figure 2 for a single output).
    ///
    /// An empty index list reduces to the zero vector, matching the
    /// behaviour of `SparseLengthsSum` with an empty segment.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::IndexOutOfBounds`] when any index is invalid.
    pub fn gather_reduce(&self, indices: &[u32], op: ReductionOp) -> Result<Matrix, DlrmError> {
        let mut acc = Matrix::zeros(1, self.dim);
        self.gather_reduce_into(indices, op, acc.as_mut_slice())?;
        Ok(acc)
    }

    /// Allocation-free [`EmbeddingTable::gather_reduce`]: accumulates the
    /// gathered rows directly into `out` (width `dim`), using the chunked
    /// SIMD-friendly reductions from [`crate::kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::IndexOutOfBounds`] when any index is invalid and
    /// [`DlrmError::ShapeMismatch`] when `out` is not `dim` wide.
    pub fn gather_reduce_into(
        &self,
        indices: &[u32],
        op: ReductionOp,
        out: &mut [f32],
    ) -> Result<(), DlrmError> {
        self.gather_reduce_into_with(indices, op, out, global_sparse_backend())
    }

    /// [`EmbeddingTable::gather_reduce_into`] on an explicit
    /// [`SparseBackend`]. The optimized backends validate the whole index
    /// list up front, then run the register-tiled, prefetching,
    /// AVX2-dispatched kernels from [`crate::kernel`] — bitwise identical
    /// to the scalar oracle. (A single reduction has no sample dimension
    /// to split, so `VectorizedParallel` executes the vectorized kernel.)
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingTable::gather_reduce_into`], with identical
    /// error selection (the first invalid index in list order).
    pub fn gather_reduce_into_with(
        &self,
        indices: &[u32],
        op: ReductionOp,
        out: &mut [f32],
        backend: SparseBackend,
    ) -> Result<(), DlrmError> {
        if out.len() != self.dim {
            return Err(DlrmError::ShapeMismatch {
                op: "gather_reduce_into",
                lhs: (1, self.dim),
                rhs: (1, out.len()),
            });
        }
        if backend != SparseBackend::Scalar {
            self.validate_indices(indices)?;
            self.gather_reduce_unchecked(indices, op, out);
            return Ok(());
        }
        out.fill(0.0);
        if indices.is_empty() {
            return Ok(());
        }
        match op {
            ReductionOp::Sum | ReductionOp::Mean => {
                for &idx in indices {
                    add_assign(out, self.row(idx)?);
                }
                if op == ReductionOp::Mean {
                    scale(out, 1.0 / indices.len() as f32);
                }
            }
            ReductionOp::Max => {
                out.copy_from_slice(self.row(indices[0])?);
                for &idx in &indices[1..] {
                    max_assign(out, self.row(idx)?);
                }
            }
        }
        Ok(())
    }

    /// The vectorized gather-reduce inner dispatch over pre-validated
    /// indices (see [`EmbeddingTable::validate_indices`]).
    fn gather_reduce_unchecked(&self, indices: &[u32], op: ReductionOp, out: &mut [f32]) {
        match op {
            ReductionOp::Sum => {
                out.fill(0.0);
                gather_rows_sum(&self.data, self.dim, indices, out);
            }
            ReductionOp::Mean => {
                out.fill(0.0);
                gather_rows_sum(&self.data, self.dim, indices, out);
                if !indices.is_empty() {
                    scale(out, 1.0 / indices.len() as f32);
                }
            }
            ReductionOp::Max => {
                if indices.is_empty() {
                    out.fill(0.0);
                } else {
                    gather_rows_max(&self.data, self.dim, indices, out);
                }
            }
        }
    }
}

/// A bag of embedding tables plus the batched `SparseLengthsSum` operator
/// over all of them — the full "sparse frontend" of a DLRM model.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingBag {
    tables: Vec<EmbeddingTable>,
    op: ReductionOp,
}

impl EmbeddingBag {
    /// Creates a bag from individual tables.
    pub fn new(tables: Vec<EmbeddingTable>, op: ReductionOp) -> Self {
        EmbeddingBag { tables, op }
    }

    /// Creates `num_tables` random tables of identical shape.
    pub fn random(num_tables: usize, rows: usize, dim: usize, seed: u64) -> Self {
        let tables = (0..num_tables)
            .map(|t| EmbeddingTable::random(rows, dim, seed.wrapping_add(t as u64)))
            .collect();
        EmbeddingBag {
            tables,
            op: ReductionOp::Sum,
        }
    }

    /// Number of tables in the bag.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Embedding dimension (0 when the bag is empty).
    pub fn dim(&self) -> usize {
        self.tables.first().map_or(0, EmbeddingTable::dim)
    }

    /// The reduction operator used by [`EmbeddingBag::sparse_lengths_reduce`].
    pub fn reduction_op(&self) -> ReductionOp {
        self.op
    }

    /// Borrows table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn table(&self, t: usize) -> &EmbeddingTable {
        &self.tables[t]
    }

    /// Iterates over the tables.
    pub fn iter(&self) -> impl Iterator<Item = &EmbeddingTable> + '_ {
        self.tables.iter()
    }

    /// Total memory footprint of all tables in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tables.iter().map(EmbeddingTable::size_bytes).sum()
    }

    /// Runs the per-table gather/reduce for one request.
    ///
    /// `indices_per_table[t]` holds the sparse indices for table `t`; the
    /// result is a `[num_tables, dim]` matrix of reduced embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::TableCountMismatch`] if the outer length differs
    /// from the number of tables, or [`DlrmError::IndexOutOfBounds`] for an
    /// invalid row index (annotated with the offending table).
    pub fn sparse_lengths_reduce(
        &self,
        indices_per_table: &[Vec<u32>],
    ) -> Result<Matrix, DlrmError> {
        if indices_per_table.len() != self.tables.len() {
            return Err(DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: self.tables.len(),
            });
        }
        let dim = self.dim();
        let mut out = Matrix::zeros(self.tables.len(), dim);
        self.sparse_lengths_reduce_into(indices_per_table, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`EmbeddingBag::sparse_lengths_reduce`]: reduces each
    /// table directly into the rows of a caller-owned `[num_tables, dim]`
    /// matrix.
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingBag::sparse_lengths_reduce`], plus
    /// [`DlrmError::ShapeMismatch`] when `out` has the wrong shape.
    pub fn sparse_lengths_reduce_into(
        &self,
        indices_per_table: &[Vec<u32>],
        out: &mut Matrix,
    ) -> Result<(), DlrmError> {
        if out.shape() != (self.tables.len(), self.dim()) {
            return Err(DlrmError::ShapeMismatch {
                op: "sparse_lengths_reduce_into",
                lhs: (self.tables.len(), self.dim()),
                rhs: out.shape(),
            });
        }
        self.reduce_into_slice(indices_per_table, out.as_mut_slice())
    }

    /// Slice-level [`EmbeddingBag::sparse_lengths_reduce_into`]: `out` is a
    /// row-major `[num_tables, dim]` buffer. Used by the zero-allocation
    /// model forward path, which reduces straight into the feature-
    /// interaction input.
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingBag::sparse_lengths_reduce`], plus
    /// [`DlrmError::ShapeMismatch`] when `out` has the wrong length.
    pub fn reduce_into_slice(
        &self,
        indices_per_table: &[Vec<u32>],
        out: &mut [f32],
    ) -> Result<(), DlrmError> {
        self.reduce_into_slice_with(indices_per_table, out, global_sparse_backend())
    }

    /// [`EmbeddingBag::reduce_into_slice`] on an explicit [`SparseBackend`].
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingBag::reduce_into_slice`].
    pub fn reduce_into_slice_with(
        &self,
        indices_per_table: &[Vec<u32>],
        out: &mut [f32],
        backend: SparseBackend,
    ) -> Result<(), DlrmError> {
        if indices_per_table.len() != self.tables.len() {
            return Err(DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: self.tables.len(),
            });
        }
        let dim = self.dim();
        if out.len() != self.tables.len() * dim {
            return Err(DlrmError::ShapeMismatch {
                op: "reduce_into_slice",
                lhs: (self.tables.len(), dim),
                rhs: (out.len(), 1),
            });
        }
        for (t, (table, indices)) in self.tables.iter().zip(indices_per_table).enumerate() {
            // Explicit slicing (not chunks_exact_mut) so dim == 0 tables
            // still route through gather_reduce_into and validate indices.
            table
                .gather_reduce_into_with(
                    indices,
                    self.op,
                    &mut out[t * dim..(t + 1) * dim],
                    backend,
                )
                .map_err(|e| annotate_table(e, t))?;
        }
        Ok(())
    }

    /// Batch-major gather/reduce: reduces every sample's bags directly into
    /// a caller-owned `[batch, row_stride]` row-major buffer, writing each
    /// sample's `num_tables * dim` reduced block at column `row_offset` of
    /// its row.
    ///
    /// This is the sparse frontend of the batch-major forward path: the
    /// model passes its `[batch, num_features * dim]` interaction-feature
    /// matrix with `row_offset = dim`, so reduced embeddings land in
    /// feature rows `1..=num_tables` of every sample with no intermediate
    /// per-sample matrices and no copies.
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingBag::sparse_lengths_reduce`] per sample, plus
    /// [`DlrmError::ShapeMismatch`] when `out` is not
    /// `batch_indices.len() * row_stride` long or the reduced block does
    /// not fit a row (`row_offset + num_tables * dim > row_stride`).
    pub fn reduce_batch_into(
        &self,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        row_stride: usize,
        row_offset: usize,
    ) -> Result<(), DlrmError> {
        self.reduce_batch_into_with(
            batch_indices,
            out,
            row_stride,
            row_offset,
            global_sparse_backend(),
        )
    }

    /// [`EmbeddingBag::reduce_batch_into`] on an explicit [`SparseBackend`].
    ///
    /// The optimized backends validate the whole batch up front (identical
    /// error selection to the scalar loop), then execute **table-major**:
    /// all samples' gathers for table `t` run back to back before moving to
    /// table `t + 1`, so one table's rows stay cache-resident across the
    /// batch instead of every sample cycling the whole bag through L2.
    /// `VectorizedParallel` additionally splits the samples into per-thread
    /// bands (disjoint output blocks, so results stay bitwise identical)
    /// once the request gathers enough bytes to amortize thread spawns;
    /// single-sample and small-batch requests never pay spawn cost.
    ///
    /// # Errors
    ///
    /// Same as [`EmbeddingBag::reduce_batch_into`].
    pub fn reduce_batch_into_with(
        &self,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        row_stride: usize,
        row_offset: usize,
        backend: SparseBackend,
    ) -> Result<(), DlrmError> {
        let width = self.num_tables() * self.dim();
        if row_offset + width > row_stride {
            return Err(DlrmError::ShapeMismatch {
                op: "reduce_batch_into row layout",
                lhs: (1, row_stride),
                rhs: (1, row_offset + width),
            });
        }
        if out.len() != batch_indices.len() * row_stride {
            return Err(DlrmError::ShapeMismatch {
                op: "reduce_batch_into",
                lhs: (batch_indices.len(), row_stride),
                rhs: (out.len(), 1),
            });
        }
        if backend == SparseBackend::Scalar {
            for (sample, per_table) in batch_indices.iter().enumerate() {
                let base = sample * row_stride + row_offset;
                self.reduce_into_slice_with(per_table, &mut out[base..base + width], backend)?;
            }
            return Ok(());
        }
        // Optimized path: one validation pre-pass in the scalar loop's
        // discovery order, then branch-free table-major kernels.
        for per_table in batch_indices {
            self.validate_request(per_table)?;
        }
        #[cfg(feature = "parallel")]
        if backend == SparseBackend::VectorizedParallel {
            let gathered = self.gathered_bytes_batch(batch_indices);
            if gathered >= crate::kernel::sparse_parallel_bytes_threshold() {
                let bands = crate::kernel::hardware_threads().min(batch_indices.len().max(1));
                if bands > 1 {
                    let band_samples = batch_indices.len().div_ceil(bands);
                    std::thread::scope(|scope| {
                        for (band_indices, band_out) in batch_indices
                            .chunks(band_samples)
                            .zip(out.chunks_mut(band_samples * row_stride))
                        {
                            scope.spawn(move || {
                                self.reduce_batch_table_major(
                                    band_indices,
                                    band_out,
                                    row_stride,
                                    row_offset,
                                );
                            });
                        }
                    });
                    return Ok(());
                }
            }
        }
        self.reduce_batch_table_major(batch_indices, out, row_stride, row_offset);
        Ok(())
    }

    /// Validates one sample's request exactly as the scalar loop would
    /// discover problems: table count first, then each table's indices in
    /// order, with out-of-bounds errors annotated with their table. The
    /// optimized batch paths (and the EB-Streamer) run this pre-pass so
    /// their branch-free kernels never see an invalid index.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::TableCountMismatch`] or the first
    /// [`DlrmError::IndexOutOfBounds`] in scalar discovery order.
    pub fn validate_request(&self, indices_per_table: &[Vec<u32>]) -> Result<(), DlrmError> {
        if indices_per_table.len() != self.tables.len() {
            return Err(DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: self.tables.len(),
            });
        }
        for (t, (table, indices)) in self.tables.iter().zip(indices_per_table).enumerate() {
            table
                .validate_indices(indices)
                .map_err(|e| annotate_table(e, t))?;
        }
        Ok(())
    }

    /// The table-major vectorized batch loop over pre-validated indices.
    fn reduce_batch_table_major(
        &self,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        row_stride: usize,
        row_offset: usize,
    ) {
        if row_stride == 0 {
            // Zero-width layout (dim 0): nothing to write, indices already
            // validated, and `chunks_mut(0)` would panic.
            return;
        }
        let dim = self.dim();
        for (t, table) in self.tables.iter().enumerate() {
            for (s, (per_table, row)) in batch_indices
                .iter()
                .zip(out.chunks_mut(row_stride))
                .enumerate()
            {
                // Pipeline the next sample's cold misses behind this
                // sample's reduction (the in-kernel prefetcher cannot see
                // past the current index list).
                if let Some(next) = batch_indices.get(s + 1) {
                    crate::kernel::prefetch_gather_list(table.as_slice(), dim, &next[t]);
                }
                let base = row_offset + t * dim;
                table.gather_reduce_unchecked(&per_table[t], self.op, &mut row[base..base + dim]);
            }
        }
    }

    /// Total bytes gathered by a whole batch (the parallel partitioner's
    /// work estimate).
    #[cfg(feature = "parallel")]
    fn gathered_bytes_batch(&self, batch_indices: &[Vec<Vec<u32>>]) -> usize {
        let lookups: usize = batch_indices
            .iter()
            .map(|per_table| Self::lookups_in_request(per_table))
            .sum();
        lookups * self.dim() * EMBEDDING_ELEM_BYTES
    }

    /// Batched version of [`EmbeddingBag::sparse_lengths_reduce`]: one index
    /// list per `(sample, table)` pair. Returns one `[num_tables, dim]`
    /// matrix per sample.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as the single-request variant.
    pub fn sparse_lengths_reduce_batch(
        &self,
        batch_indices: &[Vec<Vec<u32>>],
    ) -> Result<Vec<Matrix>, DlrmError> {
        batch_indices
            .iter()
            .map(|per_table| self.sparse_lengths_reduce(per_table))
            .collect()
    }

    /// Total number of embedding rows gathered for one request.
    pub fn lookups_in_request(indices_per_table: &[Vec<u32>]) -> usize {
        indices_per_table.iter().map(Vec::len).sum()
    }

    /// Total bytes read from embedding tables for one request, the quantity
    /// the paper uses to define *effective* memory throughput.
    pub fn gathered_bytes(&self, indices_per_table: &[Vec<u32>]) -> usize {
        Self::lookups_in_request(indices_per_table) * self.dim() * EMBEDDING_ELEM_BYTES
    }
}

fn annotate_table(err: DlrmError, table: usize) -> DlrmError {
    match err {
        DlrmError::IndexOutOfBounds { index, rows, .. } => {
            DlrmError::IndexOutOfBounds { index, rows, table }
        }
        other => other,
    }
}

/// Reference implementation of Caffe2's `SparseLengthsSum` exactly as given
/// in Figure 2 of the paper: a flat index array plus an offsets array
/// producing `offsets.len()` reduced vectors from a single table.
///
/// `offsets[a]` is the position in `indices` where output `a` begins; output
/// `a` reduces `indices[offsets[a] .. offsets[a + 1]]` (the last segment runs
/// to the end of the index array).
///
/// # Errors
///
/// Returns [`DlrmError::InvalidConfig`] if the offsets are not monotonically
/// non-decreasing or exceed the index array length, and
/// [`DlrmError::IndexOutOfBounds`] for invalid row indices.
pub fn sparse_lengths_sum(
    table: &EmbeddingTable,
    indices: &[u32],
    offsets: &[usize],
) -> Result<Matrix, DlrmError> {
    let mut out = Matrix::zeros(offsets.len(), table.dim());
    for a in 0..offsets.len() {
        let start = offsets[a];
        let end = if a + 1 < offsets.len() {
            offsets[a + 1]
        } else {
            indices.len()
        };
        if start > end || end > indices.len() {
            return Err(DlrmError::InvalidConfig(format!(
                "invalid offsets: segment {a} spans {start}..{end} over {} indices",
                indices.len()
            )));
        }
        table.gather_reduce_into(&indices[start..end], ReductionOp::Sum, out.row_mut(a))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> EmbeddingTable {
        // Row r is [r, r+0.5, r+1.0, r+1.5]
        EmbeddingTable::from_fn(8, 4, |r, c| r as f32 + c as f32 * 0.5)
    }

    #[test]
    fn table_shape_and_bytes() {
        let t = small_table();
        assert_eq!(t.rows(), 8);
        assert_eq!(t.dim(), 4);
        assert_eq!(t.row_bytes(), 16);
        assert_eq!(t.size_bytes(), 128);
    }

    #[test]
    fn row_out_of_bounds() {
        let t = small_table();
        assert!(t.row(7).is_ok());
        assert!(matches!(
            t.row(8),
            Err(DlrmError::IndexOutOfBounds {
                index: 8,
                rows: 8,
                ..
            })
        ));
    }

    #[test]
    fn gather_preserves_order() {
        let t = small_table();
        let g = t.gather(&[3, 1, 3]).unwrap();
        assert_eq!(g.shape(), (3, 4));
        assert_eq!(g.row(0), t.row(3).unwrap());
        assert_eq!(g.row(1), t.row(1).unwrap());
        assert_eq!(g.row(2), t.row(3).unwrap());
    }

    #[test]
    fn gather_reduce_sum_matches_manual() {
        let t = small_table();
        let r = t.gather_reduce(&[0, 2, 5], ReductionOp::Sum).unwrap();
        // col 0: 0 + 2 + 5 = 7 ; col 1: 0.5*3 + 7 = 8.5 ...
        assert_eq!(r.shape(), (1, 4));
        assert!((r.get(0, 0) - 7.0).abs() < 1e-6);
        assert!((r.get(0, 1) - 8.5).abs() < 1e-6);
    }

    #[test]
    fn gather_reduce_mean_and_max() {
        let t = small_table();
        let mean = t.gather_reduce(&[0, 2, 4], ReductionOp::Mean).unwrap();
        assert!((mean.get(0, 0) - 2.0).abs() < 1e-6);
        let max = t.gather_reduce(&[0, 2, 4], ReductionOp::Max).unwrap();
        assert!((max.get(0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn gather_reduce_empty_is_zero() {
        let t = small_table();
        let r = t.gather_reduce(&[], ReductionOp::Sum).unwrap();
        assert!(r.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reduction_op_names() {
        assert_eq!(ReductionOp::Sum.op_name(), "SparseLengthsSum");
        assert_eq!(ReductionOp::Mean.op_name(), "SparseLengthsMean");
        assert_eq!(ReductionOp::Max.op_name(), "SparseLengthsMax");
        assert_eq!(ReductionOp::default(), ReductionOp::Sum);
    }

    #[test]
    fn bag_reduce_shapes_and_errors() {
        let bag = EmbeddingBag::random(3, 16, 4, 7);
        let idx = vec![vec![0, 1], vec![2], vec![3, 4, 5]];
        let out = bag.sparse_lengths_reduce(&idx).unwrap();
        assert_eq!(out.shape(), (3, 4));

        let wrong = vec![vec![0u32]; 2];
        assert!(matches!(
            bag.sparse_lengths_reduce(&wrong),
            Err(DlrmError::TableCountMismatch {
                provided: 2,
                expected: 3
            })
        ));

        let oob = vec![vec![0], vec![99], vec![0]];
        assert!(matches!(
            bag.sparse_lengths_reduce(&oob),
            Err(DlrmError::IndexOutOfBounds { table: 1, .. })
        ));
    }

    #[test]
    fn zero_dim_bag_still_validates_indices() {
        // dim == 0 tables must still reject out-of-bounds rows.
        let tables = (0..2).map(|s| EmbeddingTable::random(8, 0, s)).collect();
        let bag = EmbeddingBag::new(tables, ReductionOp::Sum);
        let mut out = Matrix::zeros(2, 0);
        assert!(matches!(
            bag.sparse_lengths_reduce_into(&[vec![0], vec![99]], &mut out),
            Err(DlrmError::IndexOutOfBounds { table: 1, .. })
        ));
        assert!(bag
            .sparse_lengths_reduce_into(&[vec![0], vec![7]], &mut out)
            .is_ok());
    }

    #[test]
    fn bag_batch_matches_single() {
        let bag = EmbeddingBag::random(2, 32, 8, 11);
        let req1 = vec![vec![1, 2, 3], vec![4, 5]];
        let req2 = vec![vec![0], vec![31]];
        let batch = bag
            .sparse_lengths_reduce_batch(&[req1.clone(), req2.clone()])
            .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], bag.sparse_lengths_reduce(&req1).unwrap());
        assert_eq!(batch[1], bag.sparse_lengths_reduce(&req2).unwrap());
    }

    #[test]
    fn bag_accounting() {
        let bag = EmbeddingBag::random(2, 32, 32, 1);
        let req = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(EmbeddingBag::lookups_in_request(&req), 5);
        assert_eq!(bag.gathered_bytes(&req), 5 * 32 * 4);
        assert_eq!(bag.size_bytes(), 2 * 32 * 32 * 4);
    }

    #[test]
    fn sparse_lengths_sum_matches_figure2_pseudocode() {
        let t = small_table();
        // Two outputs: rows {0,1,2} and rows {3,4}.
        let indices = [0, 1, 2, 3, 4];
        let offsets = [0, 3];
        let out = sparse_lengths_sum(&t, &indices, &offsets).unwrap();
        assert_eq!(out.shape(), (2, 4));
        assert!((out.get(0, 0) - 3.0).abs() < 1e-6);
        assert!((out.get(1, 0) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_lengths_sum_rejects_bad_offsets() {
        let t = small_table();
        assert!(sparse_lengths_sum(&t, &[0, 1], &[0, 5]).is_err());
        assert!(sparse_lengths_sum(&t, &[0, 1], &[1, 0]).is_err());
    }

    #[test]
    fn random_tables_are_deterministic_per_seed() {
        let a = EmbeddingTable::random(16, 8, 99);
        let b = EmbeddingTable::random(16, 8, 99);
        let c = EmbeddingTable::random(16, 8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
