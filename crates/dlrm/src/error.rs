//! Error types for the DLRM reference implementation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or evaluating a DLRM model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlrmError {
    /// Two matrices had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A sparse index referenced a row outside an embedding table.
    IndexOutOfBounds {
        /// The offending row index.
        index: u64,
        /// Number of rows in the table.
        rows: u64,
        /// The table that was accessed.
        table: usize,
    },
    /// A model configuration was inconsistent (e.g. zero tables, empty MLP).
    InvalidConfig(String),
    /// The number of per-table index lists did not match the model.
    TableCountMismatch {
        /// Number of index lists supplied by the caller.
        provided: usize,
        /// Number of embedding tables in the model.
        expected: usize,
    },
    /// A batch of requests had inconsistent sizes.
    BatchMismatch {
        /// Description of which inputs disagreed.
        what: &'static str,
        /// Size of the first input.
        left: usize,
        /// Size of the second input.
        right: usize,
    },
}

impl fmt::Display for DlrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlrmError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            DlrmError::IndexOutOfBounds { index, rows, table } => write!(
                f,
                "sparse index {index} out of bounds for table {table} with {rows} rows"
            ),
            DlrmError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            DlrmError::TableCountMismatch { provided, expected } => write!(
                f,
                "provided sparse indices for {provided} tables but model has {expected}"
            ),
            DlrmError::BatchMismatch { what, left, right } => {
                write!(f, "batch size mismatch in {what}: {left} vs {right}")
            }
        }
    }
}

impl Error for DlrmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = DlrmError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("gemm"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let err = DlrmError::IndexOutOfBounds {
            index: 10,
            rows: 5,
            table: 2,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("table 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DlrmError>();
    }

    #[test]
    fn error_trait_object_usable() {
        let err: Box<dyn Error> = Box::new(DlrmError::InvalidConfig("empty".into()));
        assert!(err.to_string().contains("empty"));
    }
}
