//! Request/response types for serving a DLRM model: one user query in, one
//! click-probability out.
//!
//! These are the wire-level unit the serving layer queues, batches and
//! dispatches — deliberately plain owned data (`Vec`s, no `Matrix`) so a
//! request can be built by a load generator, moved across a channel into a
//! worker thread, and staged into a batch without touching the model crate's
//! tensor machinery.

use crate::config::ModelConfig;
use crate::error::DlrmError;

/// One inference query: a single sample's dense features plus its per-table
/// sparse index lists.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Caller-assigned request id, echoed in the response.
    pub id: u64,
    /// Dense features (`[dense_features]`).
    pub dense: Vec<f32>,
    /// Sparse indices, one list per embedding table.
    pub sparse: Vec<Vec<u32>>,
}

impl InferenceRequest {
    /// Validates the request's shape against a model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::BatchMismatch`] when the dense feature width is
    /// wrong and [`DlrmError::TableCountMismatch`] when the number of index
    /// lists does not match the model's table count.
    pub fn check_shape(&self, config: &ModelConfig) -> Result<(), DlrmError> {
        if self.dense.len() != config.dense_features {
            return Err(DlrmError::BatchMismatch {
                what: "request dense features vs model dense features",
                left: self.dense.len(),
                right: config.dense_features,
            });
        }
        if self.sparse.len() != config.num_tables {
            return Err(DlrmError::TableCountMismatch {
                provided: self.sparse.len(),
                expected: config.num_tables,
            });
        }
        Ok(())
    }

    /// Total embedding lookups the request will perform.
    pub fn lookups(&self) -> usize {
        self.sparse.iter().map(Vec::len).sum()
    }

    /// The same request re-stamped with a different caller-assigned id.
    ///
    /// Multi-tenant harnesses merge per-tenant request streams into one
    /// shared pool and need ids that are unique (and dense) across the merged
    /// stream, not just within each tenant's own stream.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }
}

/// The served answer to one [`InferenceRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceResponse {
    /// The request id this answers.
    pub id: u64,
    /// Predicted click probability.
    pub probability: f32,
}

/// Why a serving layer refused to answer a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Shed at admission: the arrival queue was already at its configured
    /// depth bound when the request arrived.
    QueueFull,
    /// Shed at dispatch: the request's deadline had already passed when a
    /// worker reached it, so serving it would waste accelerator time on an
    /// answer the caller no longer wants.
    DeadlineExpired,
    /// Failed after exhausting its retry budget: every serve attempt ended
    /// in a replica crash or datapath error, and the supervisor gave up
    /// rather than retry forever. Never silent — a failed request surfaces
    /// here exactly like a shed one.
    Failed,
}

impl RejectReason {
    /// Short label for report output (`queue_full`, `deadline_expired`,
    /// `failed`).
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExpired => "deadline_expired",
            RejectReason::Failed => "failed",
        }
    }
}

/// The wire-level refusal of one [`InferenceRequest`] — what an
/// overload-protected deployment sends back instead of a prediction when it
/// sheds or fails the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedRequest {
    /// The request id this refuses.
    pub id: u64,
    /// Why it was refused.
    pub reason: RejectReason,
    /// Retry metadata: how many times the request was re-served after a
    /// replica crash or datapath error before this refusal. Always `0` for
    /// admission/deadline sheds (those never reached a replica); for
    /// [`RejectReason::Failed`] it equals the exhausted retry budget.
    pub retries: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperModel;

    fn request_for(config: &ModelConfig) -> InferenceRequest {
        InferenceRequest {
            id: 7,
            dense: vec![0.0; config.dense_features],
            sparse: (0..config.num_tables).map(|t| vec![t as u32, 1]).collect(),
        }
    }

    #[test]
    fn well_shaped_request_passes() {
        let config = PaperModel::Dlrm1.config();
        let request = request_for(&config);
        assert!(request.check_shape(&config).is_ok());
        assert_eq!(request.lookups(), 2 * config.num_tables);
    }

    #[test]
    fn with_id_restamps_only_the_id() {
        let config = PaperModel::Dlrm1.config();
        let request = request_for(&config);
        let dense = request.dense.clone();
        let restamped = request.with_id(99);
        assert_eq!(restamped.id, 99);
        assert_eq!(restamped.dense, dense, "payload is untouched");
    }

    #[test]
    fn wrong_dense_width_is_rejected() {
        let config = PaperModel::Dlrm1.config();
        let mut request = request_for(&config);
        request.dense.push(0.0);
        assert!(matches!(
            request.check_shape(&config),
            Err(DlrmError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn reject_reasons_label_distinctly() {
        assert_eq!(RejectReason::QueueFull.label(), "queue_full");
        assert_eq!(RejectReason::DeadlineExpired.label(), "deadline_expired");
        assert_eq!(RejectReason::Failed.label(), "failed");
        let rejected = RejectedRequest {
            id: 3,
            reason: RejectReason::DeadlineExpired,
            retries: 0,
        };
        assert_eq!(rejected.id, 3);
        assert_eq!(rejected.reason, RejectReason::DeadlineExpired);
        let failed = RejectedRequest {
            id: 4,
            reason: RejectReason::Failed,
            retries: 2,
        };
        assert_eq!(failed.retries, 2, "failed requests carry retry metadata");
    }

    #[test]
    fn wrong_table_count_is_rejected() {
        let config = PaperModel::Dlrm1.config();
        let mut request = request_for(&config);
        request.sparse.pop();
        assert!(matches!(
            request.check_shape(&config),
            Err(DlrmError::TableCountMismatch { .. })
        ));
    }
}
