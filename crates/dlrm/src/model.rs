//! The assembled DLRM model: bottom MLP, embedding bag, feature interaction,
//! top MLP and sigmoid (Figure 1 of the paper).

use crate::config::ModelConfig;
use crate::embedding::{EmbeddingBag, EmbeddingTable, ReductionOp};
use crate::error::DlrmError;
use crate::interaction::FeatureInteraction;
use crate::kernel::{self, grow, KernelBackend, Workspace};
use crate::mlp::{Activation, Mlp};
use crate::tensor::Matrix;

/// A complete DLRM-style recommendation model with instantiated parameters.
///
/// The forward pass follows the paper's Figure 1 exactly:
///
/// 1. dense features → **bottom MLP** → a dense feature vector,
/// 2. sparse indices → **embedding gathers + reductions** (one reduced
///    vector per table),
/// 3. bottom output + reduced embeddings → **dot-product feature
///    interaction**,
/// 4. interaction output → **top MLP** → **sigmoid** → event probability.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmModel {
    config: ModelConfig,
    bottom_mlp: Mlp,
    embeddings: EmbeddingBag,
    interaction: FeatureInteraction,
    top_mlp: Mlp,
}

/// Reusable scratch for the zero-allocation model forward path: the MLP
/// ping/pong/pack workspace plus the interaction input/output buffers.
///
/// Hold one per serving thread and feed it to
/// [`DlrmModel::forward_sample_ws`] / [`DlrmModel::forward_batch_with`];
/// after the first (warm-up) call every buffer has reached its high-water
/// mark and steady-state inference allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ModelWorkspace {
    /// MLP scratch (ping/pong layer buffers + GEMM packing panel; the pack
    /// panel never grows on the prepacked backend, which serves from the
    /// layers' resident panels instead).
    mlp: Workspace,
    /// Interaction input: `[num_tables + 1, embedding_dim]` row-major.
    features: Vec<f32>,
    /// Interaction output: `[1, output_dim]`.
    interact: Vec<f32>,
}

impl ModelWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        ModelWorkspace::default()
    }

    /// Total bytes currently held across all scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.mlp.capacity_bytes()
            + (self.features.capacity() + self.interact.capacity()) * std::mem::size_of::<f32>()
    }
}

/// Reusable scratch for the **batch-major** zero-allocation forward path
/// ([`DlrmModel::forward_batch_into`]): the same buffers as
/// [`ModelWorkspace`], but sized `batch ×` so the whole batch flows through
/// one GEMM per MLP layer.
///
/// Hold one per serving thread; after the first (warm-up) call at a given
/// batch size every buffer has reached its high-water mark and steady-state
/// batched inference allocates nothing (`Naive`/`Blocked` backends).
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    /// MLP scratch (ping/pong layer buffers + GEMM packing panel), sized to
    /// `batch × widest layer`. On the prepacked backend the pack panel is
    /// dropped entirely (capacity stays zero): layers serve from their
    /// resident panels.
    mlp: Workspace,
    /// Batch-major interaction input: `[batch, num_features * dim]`.
    features: Vec<f32>,
    /// Batch-major interaction output: `[batch, interact_width]`.
    interact: Vec<f32>,
}

impl BatchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Total bytes currently held across all scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        self.mlp.capacity_bytes()
            + (self.features.capacity() + self.interact.capacity()) * std::mem::size_of::<f32>()
    }
}

/// Validates that a batched request's dense rows and per-sample sparse index
/// lists agree — the one shared batch check used by
/// [`DlrmModel::forward_batch_with`] and the accelerator runtime's
/// `infer_batch` (previously copy-pasted in both).
///
/// # Errors
///
/// Returns [`DlrmError::BatchMismatch`] when the two batch sizes differ.
pub fn check_batch_inputs(
    dense: &Matrix,
    batch_indices: &[Vec<Vec<u32>>],
) -> Result<(), DlrmError> {
    if dense.rows() != batch_indices.len() {
        return Err(DlrmError::BatchMismatch {
            what: "dense rows vs sparse samples",
            left: dense.rows(),
            right: batch_indices.len(),
        });
    }
    Ok(())
}

/// Intermediate results of a single-sample forward pass, exposed so that
/// accelerator models can be validated stage by stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardBreakdown {
    /// Output of the bottom MLP (`[1, embedding_dim]`).
    pub bottom_output: Matrix,
    /// Reduced embedding per table (`[num_tables, embedding_dim]`).
    pub reduced_embeddings: Matrix,
    /// Concatenated interaction input (`[num_tables + 1, embedding_dim]`).
    pub interaction_input: Matrix,
    /// Top-MLP input (`[1, pairs + embedding_dim]`).
    pub interaction_output: Matrix,
    /// Pre-sigmoid top-MLP output (`[1, 1]`).
    pub top_output: Matrix,
    /// Final event probability.
    pub probability: f32,
}

impl DlrmModel {
    /// Builds a model with random parameters for `config`, seeded
    /// deterministically.
    ///
    /// Prefer a scaled-down `rows_per_table` (see
    /// [`ModelConfig::with_rows_per_table`]) when you only need functional
    /// results: the Table-I configurations allocate 128 MB–3.2 GB of
    /// embeddings at full size.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn random(config: &ModelConfig, seed: u64) -> Result<Self, DlrmError> {
        config.validate()?;
        let bottom_mlp = Mlp::random(&config.bottom_mlp_dims(), Activation::Relu, seed)?;
        let top_mlp = Mlp::random(
            &config.top_mlp_dims(),
            Activation::Identity,
            seed.wrapping_add(0xB0B),
        )?;
        let tables = (0..config.num_tables)
            .map(|t| {
                EmbeddingTable::random(
                    config.rows_per_table as usize,
                    config.embedding_dim,
                    seed.wrapping_add(0xE3B + t as u64),
                )
            })
            .collect();
        let embeddings = EmbeddingBag::new(tables, ReductionOp::Sum);
        let interaction = config.feature_interaction();
        Ok(DlrmModel {
            config: config.clone(),
            bottom_mlp,
            embeddings,
            interaction,
            top_mlp,
        })
    }

    /// Builds a model from explicit components.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] if the components do not fit
    /// together (MLP widths, table count or embedding width mismatch).
    pub fn from_parts(
        config: ModelConfig,
        bottom_mlp: Mlp,
        embeddings: EmbeddingBag,
        top_mlp: Mlp,
    ) -> Result<Self, DlrmError> {
        config.validate()?;
        if embeddings.num_tables() != config.num_tables {
            return Err(DlrmError::InvalidConfig(format!(
                "embedding bag has {} tables, config expects {}",
                embeddings.num_tables(),
                config.num_tables
            )));
        }
        if embeddings.dim() != config.embedding_dim {
            return Err(DlrmError::InvalidConfig(format!(
                "embedding dim {} does not match config {}",
                embeddings.dim(),
                config.embedding_dim
            )));
        }
        if bottom_mlp.dims() != config.bottom_mlp_dims() {
            return Err(DlrmError::InvalidConfig(
                "bottom MLP dims do not match config".into(),
            ));
        }
        if top_mlp.dims() != config.top_mlp_dims() {
            return Err(DlrmError::InvalidConfig(
                "top MLP dims do not match config".into(),
            ));
        }
        let interaction = config.feature_interaction();
        Ok(DlrmModel {
            config,
            bottom_mlp,
            embeddings,
            interaction,
            top_mlp,
        })
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The bottom MLP.
    pub fn bottom_mlp(&self) -> &Mlp {
        &self.bottom_mlp
    }

    /// The top MLP.
    pub fn top_mlp(&self) -> &Mlp {
        &self.top_mlp
    }

    /// The embedding tables.
    pub fn embeddings(&self) -> &EmbeddingBag {
        &self.embeddings
    }

    /// The feature-interaction operator.
    pub fn interaction(&self) -> &FeatureInteraction {
        &self.interaction
    }

    /// Resident footprint of both MLPs as served from on the prepacked
    /// path: every layer's packed weight panels plus its bias row. This is
    /// what the dense accelerator accounts against its weight SRAM — and it
    /// equals `config.mlp_bytes()` exactly, because prepacking is a
    /// permutation of the weight matrix (no padding).
    pub fn mlp_packed_bytes(&self) -> usize {
        self.bottom_mlp.packed_bytes() + self.top_mlp.packed_bytes()
    }

    /// Runs a single-sample forward pass and returns every intermediate
    /// (useful for validating accelerator datapaths stage by stage).
    ///
    /// # Errors
    ///
    /// Propagates shape and index errors from the individual stages.
    pub fn forward_breakdown(
        &self,
        dense: &Matrix,
        indices_per_table: &[Vec<u32>],
    ) -> Result<ForwardBreakdown, DlrmError> {
        if dense.rows() != 1 || dense.cols() != self.config.dense_features {
            return Err(DlrmError::ShapeMismatch {
                op: "dense features",
                lhs: (1, self.config.dense_features),
                rhs: dense.shape(),
            });
        }
        // 1. Bottom MLP over dense features.
        let bottom_output = self.bottom_mlp.forward(dense)?;
        // 2. Embedding gathers + reductions.
        let reduced_embeddings = self.embeddings.sparse_lengths_reduce(indices_per_table)?;
        // 3. Feature interaction over [bottom; reduced embeddings].
        let interaction_input = bottom_output.vconcat(&reduced_embeddings)?;
        let interaction_output = self.interaction.interact(&interaction_input)?;
        // 4. Top MLP + sigmoid.
        let top_output = self.top_mlp.forward(&interaction_output)?;
        let probability = crate::tensor::sigmoid_scalar(top_output.get(0, 0));
        Ok(ForwardBreakdown {
            bottom_output,
            reduced_embeddings,
            interaction_input,
            interaction_output,
            top_output,
            probability,
        })
    }

    /// Runs a single-sample forward pass and returns the event probability
    /// as a one-element vector.
    ///
    /// # Errors
    ///
    /// Propagates shape and index errors from the individual stages.
    pub fn forward_single(
        &self,
        dense: &Matrix,
        indices_per_table: &[Vec<u32>],
    ) -> Result<Vec<f32>, DlrmError> {
        Ok(vec![
            self.forward_breakdown(dense, indices_per_table)?
                .probability,
        ])
    }

    /// Runs a batched forward pass: one dense-feature row and one per-table
    /// index list per sample. Returns one probability per sample.
    ///
    /// This is the **batch-major** path: the whole batch flows through one
    /// GEMM per MLP layer (`m = batch`), the embedding reductions land
    /// directly in a batch-major feature matrix, the interaction runs as one
    /// batched kernel and the final sigmoid vectorizes over the batch. No
    /// per-sample `m = 1` GEMMs execute anywhere on this path.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::BatchMismatch`] when the dense batch and sparse
    /// batch disagree, plus any stage error.
    pub fn forward_batch(
        &self,
        dense: &Matrix,
        batch_indices: &[Vec<Vec<u32>>],
    ) -> Result<Vec<f32>, DlrmError> {
        self.forward_batch_with(kernel::global_backend(), dense, batch_indices)
    }

    /// [`DlrmModel::forward_batch`] on an explicit [`KernelBackend`].
    ///
    /// Allocates a fresh [`BatchWorkspace`] plus the output vector; callers
    /// on the steady-state serving path should hold their own workspace and
    /// use [`DlrmModel::forward_batch_into`], which allocates nothing after
    /// warm-up.
    ///
    /// # Errors
    ///
    /// Same as [`DlrmModel::forward_batch`].
    pub fn forward_batch_with(
        &self,
        backend: KernelBackend,
        dense: &Matrix,
        batch_indices: &[Vec<Vec<u32>>],
    ) -> Result<Vec<f32>, DlrmError> {
        let mut ws = BatchWorkspace::new();
        let mut out = vec![0.0; batch_indices.len()];
        self.forward_batch_into(backend, dense, batch_indices, &mut out, &mut ws)?;
        Ok(out)
    }

    /// The zero-allocation batch-major hot path: one batch end to end with
    /// every intermediate written into `ws` and one probability per sample
    /// written into `out`.
    ///
    /// Stage by stage (compare [`DlrmModel::forward_sample_ws`], which runs
    /// the same math one sample at a time):
    ///
    /// 1. embedding gathers/reductions for **all** samples, straight into
    ///    the batch-major `[batch, num_features * dim]` feature matrix;
    /// 2. bottom MLP over the whole dense batch — one GEMM per layer with
    ///    `m = batch`, its output scattered into feature row 0 of every
    ///    sample;
    /// 3. one batched feature-interaction pass producing the
    ///    `[batch, interact_width]` top-MLP input;
    /// 4. top MLP with `m = batch`, then one vectorized sigmoid sweep over
    ///    the batch of logits.
    ///
    /// Numerically identical (bitwise, per backend) to looping
    /// [`DlrmModel::forward_sample_ws`] over the batch: the blocked GEMM
    /// accumulates each output row in the same order regardless of `m`.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::BatchMismatch`] when the dense rows, sparse
    /// samples and `out` length disagree, plus shape and index errors from
    /// the individual stages.
    pub fn forward_batch_into(
        &self,
        backend: KernelBackend,
        dense: &Matrix,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        ws: &mut BatchWorkspace,
    ) -> Result<(), DlrmError> {
        check_batch_inputs(dense, batch_indices)?;
        let batch = batch_indices.len();
        if out.len() != batch {
            return Err(DlrmError::BatchMismatch {
                what: "output slots vs samples",
                left: out.len(),
                right: batch,
            });
        }
        let dense_width = self.config.dense_features;
        if dense.cols() != dense_width {
            return Err(DlrmError::ShapeMismatch {
                op: "dense features",
                lhs: (batch, dense_width),
                rhs: dense.shape(),
            });
        }
        let dim = self.config.embedding_dim;
        let num_features = self.interaction.num_features();
        let interact_width = self.interaction.output_dim();
        let stride = num_features * dim;
        grow(&mut ws.features, batch * stride);
        grow(&mut ws.interact, batch * interact_width);

        // 1. Embedding gathers + reductions for every sample, straight into
        //    interaction feature rows 1..=num_tables of each sample's block,
        //    on the process-default sparse engine (table-major vectorized
        //    kernels; `CENTAUR_SPARSE_BACKEND` selects the oracle instead).
        self.embeddings.reduce_batch_into(
            batch_indices,
            &mut ws.features[..batch * stride],
            stride,
            dim,
        )?;

        // 2. Bottom MLP over the whole batch: one GEMM per layer with
        //    m = batch, scattered into feature row 0 of every sample.
        {
            let BatchWorkspace { mlp, features, .. } = ws;
            let (bottom, cols) = self.bottom_mlp.forward_batch_ws(
                backend,
                dense.as_slice(),
                batch,
                dense_width,
                mlp,
            )?;
            if cols != dim {
                return Err(DlrmError::ShapeMismatch {
                    op: "bottom MLP output",
                    lhs: (batch, dim),
                    rhs: (batch, cols),
                });
            }
            for (src, dst) in bottom
                .chunks_exact(dim)
                .zip(features.chunks_exact_mut(stride))
            {
                dst[..dim].copy_from_slice(src);
            }
        }

        // 3. Batched dot-product feature interaction.
        {
            let BatchWorkspace {
                features, interact, ..
            } = ws;
            self.interaction.interact_batch_into(
                &features[..batch * stride],
                batch,
                &mut interact[..batch * interact_width],
            );
        }

        // 4. Top MLP with m = batch, then one vectorized sigmoid sweep.
        let BatchWorkspace { mlp, interact, .. } = ws;
        let (top, top_cols) = self.top_mlp.forward_batch_ws(
            backend,
            &interact[..batch * interact_width],
            batch,
            interact_width,
            mlp,
        )?;
        if top_cols == 1 {
            crate::tensor::sigmoid_into(&top[..batch], out);
        } else {
            // A top MLP wider than one unit: take logit 0 per sample, the
            // same element the per-sample path reads.
            for (o, row) in out.iter_mut().zip(top.chunks_exact(top_cols)) {
                *o = crate::tensor::sigmoid_scalar(row[0]);
            }
        }
        Ok(())
    }

    /// The zero-allocation hot path: one sample end to end (bottom MLP,
    /// gather/reduce, interaction, top MLP, sigmoid) with every
    /// intermediate written into `ws`. Numerically identical to
    /// [`DlrmModel::forward_breakdown`] on the same backend.
    ///
    /// # Errors
    ///
    /// Propagates shape and index errors from the individual stages.
    pub fn forward_sample_ws(
        &self,
        backend: KernelBackend,
        dense_row: &[f32],
        indices_per_table: &[Vec<u32>],
        ws: &mut ModelWorkspace,
    ) -> Result<f32, DlrmError> {
        let dense_width = self.config.dense_features;
        if dense_row.len() != dense_width {
            return Err(DlrmError::ShapeMismatch {
                op: "dense features",
                lhs: (1, dense_width),
                rhs: (1, dense_row.len()),
            });
        }
        let dim = self.config.embedding_dim;
        let num_features = self.interaction.num_features();
        let interact_width = self.interaction.output_dim();
        grow(&mut ws.features, num_features * dim);
        grow(&mut ws.interact, interact_width);

        // 1. Embedding gathers + reductions, straight into interaction
        //    feature rows 1..=num_tables, on the process-default sparse
        //    engine.
        self.embeddings
            .reduce_into_slice(indices_per_table, &mut ws.features[dim..num_features * dim])?;

        // 2. Bottom MLP into interaction feature row 0.
        {
            let ModelWorkspace { mlp, features, .. } = ws;
            let (bottom, cols) =
                self.bottom_mlp
                    .forward_ws(backend, dense_row, 1, dense_width, mlp)?;
            if cols != dim {
                return Err(DlrmError::ShapeMismatch {
                    op: "bottom MLP output",
                    lhs: (1, dim),
                    rhs: (1, cols),
                });
            }
            features[..dim].copy_from_slice(bottom);
        }

        // 3. Dot-product feature interaction.
        {
            let ModelWorkspace {
                features, interact, ..
            } = ws;
            self.interaction.interact_into(
                &features[..num_features * dim],
                &mut interact[..interact_width],
            );
        }

        // 4. Top MLP + sigmoid.
        let ModelWorkspace { mlp, interact, .. } = ws;
        let (top, _) = self.top_mlp.forward_ws(
            backend,
            &interact[..interact_width],
            1,
            interact_width,
            mlp,
        )?;
        Ok(crate::tensor::sigmoid_scalar(top[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperModel;

    fn tiny_config() -> ModelConfig {
        ModelConfig::builder()
            .name("tiny")
            .num_tables(3)
            .rows_per_table(64)
            .embedding_dim(8)
            .lookups_per_table(4)
            .dense_features(5)
            .bottom_mlp(&[16, 8])
            .top_mlp(&[16, 8])
            .build()
            .unwrap()
    }

    fn tiny_indices(config: &ModelConfig) -> Vec<Vec<u32>> {
        (0..config.num_tables)
            .map(|t| {
                (0..config.lookups_per_table as u32)
                    .map(|i| (t as u32 * 7 + i) % 64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_produces_probability() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 1).unwrap();
        let dense = Matrix::from_fn(1, 5, |_, c| c as f32 * 0.2 - 0.4);
        let p = model
            .forward_single(&dense, &tiny_indices(&config))
            .unwrap();
        assert_eq!(p.len(), 1);
        assert!((0.0..=1.0).contains(&p[0]));
    }

    #[test]
    fn forward_breakdown_shapes() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 2).unwrap();
        let dense = Matrix::filled(1, 5, 0.1);
        let b = model
            .forward_breakdown(&dense, &tiny_indices(&config))
            .unwrap();
        assert_eq!(b.bottom_output.shape(), (1, 8));
        assert_eq!(b.reduced_embeddings.shape(), (3, 8));
        assert_eq!(b.interaction_input.shape(), (4, 8));
        assert_eq!(b.interaction_output.shape(), (1, 8 + 6));
        assert_eq!(b.top_output.shape(), (1, 1));
    }

    #[test]
    fn forward_is_deterministic() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 3).unwrap();
        let dense = Matrix::filled(1, 5, 0.3);
        let idx = tiny_indices(&config);
        assert_eq!(
            model.forward_single(&dense, &idx).unwrap(),
            model.forward_single(&dense, &idx).unwrap()
        );
    }

    #[test]
    fn batch_matches_single() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 4).unwrap();
        let dense = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.1);
        let batch: Vec<Vec<Vec<u32>>> = (0..3)
            .map(|s| {
                (0..config.num_tables)
                    .map(|t| vec![(s * 3 + t) as u32, (s + t * 5) as u32 % 64])
                    .collect()
            })
            .collect();
        let batched = model.forward_batch(&dense, &batch).unwrap();
        for (i, sample) in batch.iter().enumerate() {
            let single = model
                .forward_single(&Matrix::row_vector(dense.row(i)), sample)
                .unwrap();
            assert!((batched[i] - single[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_mismatch_detected() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 5).unwrap();
        let dense = Matrix::zeros(2, 5);
        let batch = vec![tiny_indices(&config)];
        assert!(matches!(
            model.forward_batch(&dense, &batch),
            Err(DlrmError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn dense_shape_checked() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 6).unwrap();
        let wrong = Matrix::zeros(1, 4);
        assert!(model
            .forward_single(&wrong, &tiny_indices(&config))
            .is_err());
    }

    #[test]
    fn from_parts_validates_components() {
        let config = tiny_config();
        let good = DlrmModel::random(&config, 7).unwrap();
        // Rebuilding from its own parts succeeds.
        let rebuilt = DlrmModel::from_parts(
            config.clone(),
            good.bottom_mlp().clone(),
            good.embeddings().clone(),
            good.top_mlp().clone(),
        )
        .unwrap();
        assert_eq!(&rebuilt, &good);

        // Wrong table count fails.
        let bad_bag = EmbeddingBag::random(2, 64, 8, 0);
        assert!(DlrmModel::from_parts(
            config.clone(),
            good.bottom_mlp().clone(),
            bad_bag,
            good.top_mlp().clone(),
        )
        .is_err());
    }

    #[test]
    fn paper_model_scaled_down_runs() {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(128);
        let model = DlrmModel::random(&config, 9).unwrap();
        let dense = Matrix::filled(1, 13, 0.05);
        let indices: Vec<Vec<u32>> = (0..config.num_tables)
            .map(|t| {
                (0..config.lookups_per_table as u32)
                    .map(|i| (t as u32 + i * 11) % 128)
                    .collect()
            })
            .collect();
        let p = model.forward_single(&dense, &indices).unwrap();
        assert!((0.0..=1.0).contains(&p[0]));
    }

    #[test]
    fn probability_changes_with_indices() {
        let config = tiny_config();
        let model = DlrmModel::random(&config, 10).unwrap();
        let dense = Matrix::filled(1, 5, 0.1);
        let a = model
            .forward_single(&dense, &tiny_indices(&config))
            .unwrap();
        let other: Vec<Vec<u32>> = (0..3).map(|t| vec![60 - t as u32]).collect();
        let b = model.forward_single(&dense, &other).unwrap();
        assert_ne!(a, b);
    }
}
