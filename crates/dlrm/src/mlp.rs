//! Multi-layer perceptron building blocks: dense (fully-connected) layers,
//! activations and MLP stacks used for the bottom and top MLPs of DLRM.

use crate::error::DlrmError;
use crate::kernel::{self, grow, FusedAct, KernelBackend, PrepackedWeights, Workspace};
use crate::tensor::{gemm_flops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit (the DLRM default for hidden layers).
    #[default]
    Relu,
    /// Logistic sigmoid (used on the final output to produce a probability).
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    /// Applies the activation to a matrix.
    pub fn apply(self, input: &Matrix) -> Matrix {
        match self {
            Activation::Relu => input.relu(),
            Activation::Sigmoid => input.sigmoid(),
            Activation::Identity => input.clone(),
        }
    }

    /// The fused-epilogue equivalent used by the optimized kernels.
    pub fn fused(self) -> FusedAct {
        match self {
            Activation::Relu => FusedAct::Relu,
            Activation::Sigmoid => FusedAct::Sigmoid,
            Activation::Identity => FusedAct::Identity,
        }
    }
}

/// A dense layer `y = act(x * W + b)` with `W` of shape `[in, out]`.
///
/// The weight matrix is held in **two** resident layouts: the row-major
/// `[in, out]` matrix (the reference form every on-the-fly-packing backend
/// reads) and the [`PrepackedWeights`] panels packed **once at
/// construction**, which [`KernelBackend::BlockedPrepacked`] feeds to the
/// GEMM microkernels with no per-call pack loop. Both layouts stay in sync:
/// every weight mutation ([`DenseLayer::set_weights`]) re-packs.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    /// `weights` in the blocked kernel's panel layout, packed once.
    packed: PrepackedWeights,
}

impl DenseLayer {
    /// Creates a layer from explicit weights (`[in, out]`), bias (`[1, out]`)
    /// and activation; the weights are prepacked into resident panels here,
    /// once, and reused by every prepacked-backend forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if the bias width does not equal
    /// the weight output width.
    pub fn new(weights: Matrix, bias: Matrix, activation: Activation) -> Result<Self, DlrmError> {
        if bias.rows() != 1 || bias.cols() != weights.cols() {
            return Err(DlrmError::ShapeMismatch {
                op: "dense layer bias",
                lhs: weights.shape(),
                rhs: bias.shape(),
            });
        }
        let packed = PrepackedWeights::pack(weights.as_slice(), weights.rows(), weights.cols());
        Ok(DenseLayer {
            weights,
            bias,
            activation,
            packed,
        })
    }

    /// Creates a layer with Xavier-style uniform random weights.
    pub fn random(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let weights = Matrix::from_fn(in_dim, out_dim, |_, _| rng.gen_range(-limit..limit));
        let bias = Matrix::from_fn(1, out_dim, |_, _| rng.gen_range(-0.01..0.01));
        DenseLayer::new(weights, bias, activation).expect("bias shape is valid by construction")
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Borrows the resident prepacked weight panels.
    pub fn packed(&self) -> &PrepackedWeights {
        &self.packed
    }

    /// Resident footprint of the layer's parameters as served from on the
    /// prepacked path: the packed panels plus the (unpadded) bias row —
    /// byte-for-byte equal to [`DenseLayer::size_bytes`], because packing
    /// is a permutation of the weight matrix, not an expansion.
    pub fn packed_size_bytes(&self) -> usize {
        self.packed.size_bytes() + self.bias.len() * std::mem::size_of::<f32>()
    }

    /// Replaces the layer's weights (same `[in, out]` shape) and
    /// **re-packs** the resident panels so the prepacked path never serves
    /// stale weights.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if the new matrix's shape
    /// differs from the current one (layer widths are structural; changing
    /// them would silently break the surrounding MLP's wiring).
    pub fn set_weights(&mut self, weights: Matrix) -> Result<(), DlrmError> {
        if weights.shape() != self.weights.shape() {
            return Err(DlrmError::ShapeMismatch {
                op: "dense layer weight update",
                lhs: self.weights.shape(),
                rhs: weights.shape(),
            });
        }
        self.packed = PrepackedWeights::pack(weights.as_slice(), weights.rows(), weights.cols());
        self.weights = weights;
        Ok(())
    }

    /// Activation applied by the layer.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Size of the layer's parameters in bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// Floating-point operations for a forward pass with the given batch.
    pub fn flops(&self, batch: usize) -> u64 {
        gemm_flops(batch, self.out_dim(), self.in_dim()) + (batch * self.out_dim()) as u64
    }

    /// Forward pass: `act(input * W + b)`, computed by the fused
    /// GEMM + bias + activation kernel on the process-wide default backend —
    /// one output allocation, no intermediate matrices.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `input.cols() != in_dim`.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, DlrmError> {
        self.forward_with(kernel::global_backend(), input)
    }

    /// [`DenseLayer::forward`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `input.cols() != in_dim`.
    pub fn forward_with(
        &self,
        backend: KernelBackend,
        input: &Matrix,
    ) -> Result<Matrix, DlrmError> {
        self.check_input(input.cols())?;
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        let mut pack = Vec::new();
        self.forward_into(
            backend,
            input.as_slice(),
            input.rows(),
            out.as_mut_slice(),
            &mut pack,
        );
        Ok(out)
    }

    /// Allocation-free forward pass into a caller-provided output buffer
    /// (`[batch, out_dim]`), using `pack` as the GEMM packing scratch.
    ///
    /// On [`KernelBackend::BlockedPrepacked`] the GEMM streams the resident
    /// panels packed at construction and `pack` is never touched (it stays
    /// at zero capacity on a workspace that only ever serves prepacked) —
    /// bitwise identical to the on-the-fly-packing backends.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != batch * in_dim` or
    /// `out.len() != batch * out_dim` (shape validation is the caller's job
    /// on this hot path).
    pub fn forward_into(
        &self,
        backend: KernelBackend,
        input: &[f32],
        batch: usize,
        out: &mut [f32],
        pack: &mut Vec<f32>,
    ) {
        if backend == KernelBackend::BlockedPrepacked {
            kernel::gemm_bias_act_prepacked(
                backend,
                input,
                &self.packed,
                Some(self.bias.as_slice()),
                self.activation.fused(),
                out,
                batch,
            );
            return;
        }
        kernel::gemm_bias_act_into(
            backend,
            input,
            self.weights.as_slice(),
            Some(self.bias.as_slice()),
            self.activation.fused(),
            out,
            batch,
            self.in_dim(),
            self.out_dim(),
            pack,
        );
    }

    fn check_input(&self, cols: usize) -> Result<(), DlrmError> {
        if cols != self.in_dim() {
            return Err(DlrmError::ShapeMismatch {
                op: "dense layer input",
                lhs: (1, self.in_dim()),
                rhs: (1, cols),
            });
        }
        Ok(())
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Creates an MLP from explicit layers.
    pub fn new(layers: Vec<DenseLayer>) -> Self {
        Mlp { layers }
    }

    /// Creates an MLP with random parameters from a list of layer widths.
    ///
    /// `dims = [in, h1, h2, ..., out]`; hidden layers use ReLU and the final
    /// layer uses `final_activation`.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] if fewer than two widths are
    /// given or any width is zero.
    pub fn random(
        dims: &[usize],
        final_activation: Activation,
        seed: u64,
    ) -> Result<Self, DlrmError> {
        if dims.len() < 2 {
            return Err(DlrmError::InvalidConfig(format!(
                "an MLP needs at least an input and an output width, got {dims:?}"
            )));
        }
        if dims.contains(&0) {
            return Err(DlrmError::InvalidConfig(
                "MLP layer widths must be non-zero".to_string(),
            ));
        }
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for (i, pair) in dims.windows(2).enumerate() {
            let activation = if i + 2 == dims.len() {
                final_activation
            } else {
                Activation::Relu
            };
            layers.push(DenseLayer::random(
                pair[0],
                pair[1],
                activation,
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
            ));
        }
        Ok(Mlp { layers })
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the MLP has no layers (acts as identity).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> impl Iterator<Item = &DenseLayer> + '_ {
        self.layers.iter()
    }

    /// Input dimension of the first layer (`None` when empty).
    pub fn in_dim(&self) -> Option<usize> {
        self.layers.first().map(DenseLayer::in_dim)
    }

    /// Output dimension of the last layer (`None` when empty).
    pub fn out_dim(&self) -> Option<usize> {
        self.layers.last().map(DenseLayer::out_dim)
    }

    /// Layer widths `[in, h1, ..., out]` (empty when the MLP has no layers).
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        if let Some(first) = self.layers.first() {
            dims.push(first.in_dim());
            for layer in &self.layers {
                dims.push(layer.out_dim());
            }
        }
        dims
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_params).sum()
    }

    /// Total parameter footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.layers.iter().map(DenseLayer::size_bytes).sum()
    }

    /// Resident footprint of the stack as served from on the prepacked
    /// path (packed panels + biases) — what the dense accelerator accounts
    /// against its weight SRAM. Equals [`Mlp::size_bytes`] by construction.
    pub fn packed_bytes(&self) -> usize {
        self.layers.iter().map(DenseLayer::packed_size_bytes).sum()
    }

    /// Total forward-pass FLOPs for a batch.
    pub fn flops(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.flops(batch)).sum()
    }

    /// Forward pass through every layer in order.
    ///
    /// Uses an internal scratch [`Workspace`] (two ping/pong buffers for the
    /// whole stack instead of several allocations per layer); callers on the
    /// steady-state path should hold their own workspace and use
    /// [`Mlp::forward_ws`], which allocates nothing at all.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the individual layers.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, DlrmError> {
        self.forward_with(kernel::global_backend(), input)
    }

    /// [`Mlp::forward`] on an explicit backend.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the individual layers.
    pub fn forward_with(
        &self,
        backend: KernelBackend,
        input: &Matrix,
    ) -> Result<Matrix, DlrmError> {
        let mut ws = Workspace::new();
        let batch = input.rows();
        let (data, cols) =
            self.forward_ws(backend, input.as_slice(), batch, input.cols(), &mut ws)?;
        Matrix::from_vec(batch, cols, data.to_vec())
    }

    /// Zero-allocation forward pass: runs the whole stack through the
    /// workspace's ping/pong buffers and returns the output as
    /// `(data, out_cols)` borrowed from the workspace.
    ///
    /// After the workspace has warmed up to the model's widest layer, this
    /// performs **no heap allocations** per call (`Naive`/`Blocked`
    /// backends).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `in_cols` does not match the
    /// first layer, or [`DlrmError::BatchMismatch`] if
    /// `input.len() != batch * in_cols`.
    pub fn forward_ws<'w>(
        &self,
        backend: KernelBackend,
        input: &[f32],
        batch: usize,
        in_cols: usize,
        ws: &'w mut Workspace,
    ) -> Result<(&'w [f32], usize), DlrmError> {
        if input.len() != batch * in_cols {
            return Err(DlrmError::BatchMismatch {
                what: "mlp input length vs batch * in_cols",
                left: input.len(),
                right: batch * in_cols,
            });
        }
        if let Some(first) = self.layers.first() {
            if in_cols != first.in_dim() {
                return Err(DlrmError::ShapeMismatch {
                    op: "mlp input",
                    lhs: (batch, first.in_dim()),
                    rhs: (batch, in_cols),
                });
            }
        }
        // Size both ping/pong buffers to the widest layer up front: the
        // buffers swap roles every layer, so growing lazily inside the loop
        // would keep reallocating on stacks with an odd number of layers.
        let max_width = self
            .layers
            .iter()
            .map(DenseLayer::out_dim)
            .fold(in_cols, usize::max);
        grow(&mut ws.ping, batch * max_width);
        grow(&mut ws.pong, batch * max_width);
        ws.ping[..input.len()].copy_from_slice(input);
        let mut cols = in_cols;
        for layer in &self.layers {
            let out_len = batch * layer.out_dim();
            // Split the borrows: read from ping, write into pong, pack in
            // its own buffer; then swap the ping/pong roles.
            let Workspace {
                ping, pong, pack, ..
            } = ws;
            layer.forward_into(
                backend,
                &ping[..batch * cols],
                batch,
                &mut pong[..out_len],
                pack,
            );
            std::mem::swap(&mut ws.ping, &mut ws.pong);
            cols = layer.out_dim();
        }
        Ok((&ws.ping[..batch * cols], cols))
    }

    /// The batch-major forward pass: the whole batch flows through **one
    /// GEMM per layer with `m = batch`**, so each layer's packed `B` panels
    /// are amortized over every sample instead of being re-packed per
    /// sample — the weight-reuse win the paper attributes to batching.
    ///
    /// Numerically this is bitwise-identical to running
    /// [`Mlp::forward_ws`] with `batch == 1` once per sample: the blocked
    /// microkernels accumulate each output row in the same `k`-block order
    /// regardless of `m`.
    ///
    /// # Errors
    ///
    /// Same as [`Mlp::forward_ws`].
    pub fn forward_batch_ws<'w>(
        &self,
        backend: KernelBackend,
        input: &[f32],
        batch: usize,
        in_cols: usize,
        ws: &'w mut Workspace,
    ) -> Result<(&'w [f32], usize), DlrmError> {
        self.forward_ws(backend, input, batch, in_cols, ws)
    }
}

/// The paper-facing name for a stack of dense layers; `MlpStack` and
/// [`Mlp`] are the same type.
pub type MlpStack = Mlp;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layer_forward_known_values() {
        // y = relu(x*W + b) with hand-computed numbers.
        let w = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 2.0]).unwrap();
        let b = Matrix::row_vector(&[0.0, 1.0]);
        let layer = DenseLayer::new(w, b, Activation::Relu).unwrap();
        let x = Matrix::row_vector(&[2.0, 4.0]);
        let y = layer.forward(&x).unwrap();
        // z = [2*1 + 4*0.5, 2*-1 + 4*2] + [0,1] = [4, 7]
        assert_eq!(y.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn dense_layer_relu_clamps() {
        let w = Matrix::from_vec(1, 1, vec![-1.0]).unwrap();
        let b = Matrix::row_vector(&[0.0]);
        let layer = DenseLayer::new(w, b, Activation::Relu).unwrap();
        let y = layer.forward(&Matrix::row_vector(&[3.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0]);
    }

    #[test]
    fn dense_layer_bias_shape_checked() {
        let w = Matrix::zeros(2, 3);
        let b = Matrix::zeros(1, 2);
        assert!(DenseLayer::new(w, b, Activation::Relu).is_err());
    }

    #[test]
    fn dense_layer_accounting() {
        let layer = DenseLayer::random(8, 4, Activation::Relu, 3);
        assert_eq!(layer.in_dim(), 8);
        assert_eq!(layer.out_dim(), 4);
        assert_eq!(layer.num_params(), 8 * 4 + 4);
        assert_eq!(layer.size_bytes(), (8 * 4 + 4) * 4);
        assert_eq!(layer.flops(2), 2 * (2 * 8 * 4) as u64 + 8);
    }

    #[test]
    fn mlp_dims_and_forward_shape() {
        let mlp = Mlp::random(&[13, 64, 32], Activation::Relu, 1).unwrap();
        assert_eq!(mlp.num_layers(), 2);
        assert_eq!(mlp.dims(), vec![13, 64, 32]);
        assert_eq!(mlp.in_dim(), Some(13));
        assert_eq!(mlp.out_dim(), Some(32));
        let x = Matrix::filled(4, 13, 0.5);
        let y = mlp.forward(&x).unwrap();
        assert_eq!(y.shape(), (4, 32));
    }

    #[test]
    fn mlp_final_activation_sigmoid_bounds_output() {
        let mlp = Mlp::random(&[8, 16, 1], Activation::Sigmoid, 5).unwrap();
        let x = Matrix::from_fn(3, 8, |r, c| (r + c) as f32 - 4.0);
        let y = mlp.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mlp_rejects_bad_dims() {
        assert!(Mlp::random(&[8], Activation::Relu, 0).is_err());
        assert!(Mlp::random(&[8, 0, 4], Activation::Relu, 0).is_err());
    }

    #[test]
    fn empty_mlp_is_identity() {
        let mlp = Mlp::default();
        assert!(mlp.is_empty());
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(mlp.forward(&x).unwrap(), x);
        assert_eq!(mlp.dims(), Vec::<usize>::new());
    }

    #[test]
    fn mlp_deterministic_per_seed() {
        let a = Mlp::random(&[4, 8, 2], Activation::Relu, 42).unwrap();
        let b = Mlp::random(&[4, 8, 2], Activation::Relu, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mlp_size_bytes_matches_param_count() {
        let mlp = Mlp::random(&[13, 512, 256, 64], Activation::Relu, 9).unwrap();
        let params = 13 * 512 + 512 + 512 * 256 + 256 + 256 * 64 + 64;
        assert_eq!(mlp.num_params(), params);
        assert_eq!(mlp.size_bytes(), params * 4);
    }

    #[test]
    fn prepacked_forward_is_bitwise_identical_to_packing_path() {
        // Ragged widths so the 8/4/1-row microkernel tails and the packed
        // panel remainders are all exercised.
        let mlp = Mlp::random(&[13, 67, 29, 3], Activation::Relu, 21).unwrap();
        for batch in [1usize, 4, 9, 16] {
            let x = Matrix::from_fn(batch, 13, |r, c| (r as f32 * 0.3 - c as f32 * 0.2).sin());
            let reference = mlp.forward_with(KernelBackend::Blocked, &x).unwrap();
            let prepacked = mlp
                .forward_with(KernelBackend::BlockedPrepacked, &x)
                .unwrap();
            assert_eq!(reference, prepacked, "batch {batch}");
        }
        // A workspace that only ever serves prepacked never grows a pack
        // buffer: its footprint is exactly the two ping/pong layer buffers.
        let mut ws = Workspace::new();
        mlp.forward_ws(
            KernelBackend::BlockedPrepacked,
            &vec![0.1; 4 * 13],
            4,
            13,
            &mut ws,
        )
        .unwrap();
        let widest = 67;
        assert_eq!(ws.capacity_bytes(), 2 * 4 * widest * 4, "pack buffer grew");
    }

    #[test]
    fn set_weights_repacks_and_checks_shape() {
        let mut layer = DenseLayer::random(9, 7, Activation::Relu, 5);
        let replacement = Matrix::from_fn(9, 7, |r, c| (r * 7 + c) as f32 * 0.05 - 1.0);
        layer.set_weights(replacement.clone()).unwrap();
        // The resident panels and the served result both match a layer
        // constructed fresh from the new weights — set_weights really
        // re-packed (asserting on the process-global prepack_events counter
        // would race with concurrently running tests in this binary; the
        // exact-count accounting lives in `tests/zero_alloc.rs`).
        let fresh = DenseLayer::new(replacement, layer.bias().clone(), Activation::Relu).unwrap();
        assert_eq!(layer.packed(), fresh.packed(), "panels must be re-packed");
        let x = Matrix::from_fn(3, 9, |r, c| (r as f32 - c as f32) * 0.1);
        assert_eq!(
            layer
                .forward_with(KernelBackend::BlockedPrepacked, &x)
                .unwrap(),
            fresh
                .forward_with(KernelBackend::BlockedPrepacked, &x)
                .unwrap()
        );
        // Shape changes are structural and rejected.
        assert!(layer.set_weights(Matrix::zeros(9, 8)).is_err());
        assert!(layer.set_weights(Matrix::zeros(8, 7)).is_err());
    }

    #[test]
    fn packed_bytes_equal_row_major_bytes() {
        let mlp = Mlp::random(&[13, 512, 256, 64], Activation::Relu, 9).unwrap();
        assert_eq!(mlp.packed_bytes(), mlp.size_bytes());
        for layer in mlp.iter() {
            assert_eq!(layer.packed_size_bytes(), layer.size_bytes());
            assert_eq!(layer.packed().k(), layer.in_dim());
            assert_eq!(layer.packed().n(), layer.out_dim());
        }
    }

    #[test]
    fn activation_apply() {
        let x = Matrix::row_vector(&[-2.0, 2.0]);
        assert_eq!(Activation::Identity.apply(&x), x);
        assert_eq!(Activation::Relu.apply(&x).as_slice(), &[0.0, 2.0]);
        let s = Activation::Sigmoid.apply(&x);
        assert!(s.get(0, 0) < 0.5 && s.get(0, 1) > 0.5);
    }
}
