//! Model configurations, including the six recommendation models of
//! Table I in the paper.

use crate::error::DlrmError;
use crate::interaction::FeatureInteraction;
use crate::EMBEDDING_ELEM_BYTES;
use serde::{Deserialize, Serialize};

/// Full architectural description of a DLRM-style recommendation model.
///
/// A configuration is *purely structural*: it carries no weights. Use
/// [`crate::model::DlrmModel::random`] to instantiate parameters, or feed the
/// configuration directly to the timing simulators (which never need real
/// weights).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, e.g. `"DLRM(3)"`.
    pub name: String,
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Number of rows in each embedding table.
    pub rows_per_table: u64,
    /// Embedding vector width (the paper's default is 32).
    pub embedding_dim: usize,
    /// Average number of gather operations per table per sample.
    pub lookups_per_table: usize,
    /// Number of continuous (dense) input features.
    pub dense_features: usize,
    /// Bottom-MLP layer widths *excluding* the input width (which is
    /// `dense_features`); the last entry is the bottom-MLP output width and
    /// must equal `embedding_dim` so it can join the feature interaction.
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP hidden layer widths *excluding* the input width (derived from
    /// the interaction) and *excluding* the final single-unit output layer.
    pub top_mlp_hidden: Vec<usize>,
}

impl ModelConfig {
    /// Starts building a configuration.
    pub fn builder() -> ModelConfigBuilder {
        ModelConfigBuilder::default()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), DlrmError> {
        if self.num_tables == 0 {
            return Err(DlrmError::InvalidConfig("num_tables must be > 0".into()));
        }
        if self.rows_per_table == 0 {
            return Err(DlrmError::InvalidConfig(
                "rows_per_table must be > 0".into(),
            ));
        }
        if self.embedding_dim == 0 {
            return Err(DlrmError::InvalidConfig("embedding_dim must be > 0".into()));
        }
        if self.lookups_per_table == 0 {
            return Err(DlrmError::InvalidConfig(
                "lookups_per_table must be > 0".into(),
            ));
        }
        if self.dense_features == 0 {
            return Err(DlrmError::InvalidConfig(
                "dense_features must be > 0".into(),
            ));
        }
        if self.bottom_mlp.is_empty() {
            return Err(DlrmError::InvalidConfig(
                "bottom_mlp must have at least one layer".into(),
            ));
        }
        if self
            .bottom_mlp
            .iter()
            .chain(&self.top_mlp_hidden)
            .any(|&d| d == 0)
        {
            return Err(DlrmError::InvalidConfig(
                "MLP layer widths must be non-zero".into(),
            ));
        }
        if *self.bottom_mlp.last().expect("non-empty") != self.embedding_dim {
            return Err(DlrmError::InvalidConfig(format!(
                "bottom MLP output ({}) must equal embedding_dim ({}) for feature interaction",
                self.bottom_mlp.last().expect("non-empty"),
                self.embedding_dim
            )));
        }
        Ok(())
    }

    /// Bytes per embedding row.
    pub fn row_bytes(&self) -> usize {
        self.embedding_dim * EMBEDDING_ELEM_BYTES
    }

    /// Bytes of one embedding table.
    pub fn table_bytes(&self) -> u64 {
        self.rows_per_table * self.row_bytes() as u64
    }

    /// Total embedding-table footprint in bytes (the "Table size" column of
    /// Table I).
    pub fn embedding_bytes(&self) -> u64 {
        self.table_bytes() * self.num_tables as u64
    }

    /// Number of feature vectors entering the interaction stage
    /// (`num_tables` reduced embeddings + the bottom-MLP output).
    pub fn interaction_features(&self) -> usize {
        self.num_tables + 1
    }

    /// The feature-interaction operator implied by this configuration.
    pub fn feature_interaction(&self) -> FeatureInteraction {
        FeatureInteraction::new(self.interaction_features(), self.embedding_dim)
            .expect("validated config produces a valid interaction")
    }

    /// Width of the top-MLP input (pairwise terms + bottom-MLP output).
    pub fn top_mlp_input_dim(&self) -> usize {
        self.feature_interaction().output_dim()
    }

    /// Complete bottom-MLP layer widths including the input width.
    pub fn bottom_mlp_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.bottom_mlp.len() + 1);
        dims.push(self.dense_features);
        dims.extend_from_slice(&self.bottom_mlp);
        dims
    }

    /// Complete top-MLP layer widths including the derived input width and
    /// the single-unit output.
    pub fn top_mlp_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.top_mlp_hidden.len() + 2);
        dims.push(self.top_mlp_input_dim());
        dims.extend_from_slice(&self.top_mlp_hidden);
        dims.push(1);
        dims
    }

    /// Number of MLP parameters (bottom + top, weights + biases).
    pub fn mlp_params(&self) -> u64 {
        let count =
            |dims: &[usize]| -> u64 { dims.windows(2).map(|w| (w[0] * w[1] + w[1]) as u64).sum() };
        count(&self.bottom_mlp_dims()) + count(&self.top_mlp_dims())
    }

    /// MLP parameter footprint in bytes (the "MLP size" column of Table I).
    pub fn mlp_bytes(&self) -> u64 {
        self.mlp_params() * EMBEDDING_ELEM_BYTES as u64
    }

    /// Total embedding rows gathered for one sample.
    pub fn lookups_per_sample(&self) -> usize {
        self.num_tables * self.lookups_per_table
    }

    /// Bytes of embedding data gathered for one sample (the numerator of the
    /// paper's *effective throughput* metric).
    pub fn gathered_bytes_per_sample(&self) -> u64 {
        self.lookups_per_sample() as u64 * self.row_bytes() as u64
    }

    /// Bytes of sparse indices transferred per sample (4-byte indices).
    pub fn index_bytes_per_sample(&self) -> u64 {
        self.lookups_per_sample() as u64 * 4
    }

    /// Bytes of dense features transferred per sample.
    pub fn dense_bytes_per_sample(&self) -> u64 {
        (self.dense_features * EMBEDDING_ELEM_BYTES) as u64
    }

    /// Total forward-pass FLOPs per sample for the dense (MLP + interaction)
    /// portion of the model.
    pub fn dense_flops_per_sample(&self) -> u64 {
        let gemm =
            |dims: &[usize]| -> u64 { dims.windows(2).map(|w| 2 * (w[0] * w[1]) as u64).sum() };
        gemm(&self.bottom_mlp_dims())
            + gemm(&self.top_mlp_dims())
            + self.feature_interaction().flops()
    }

    /// Returns a copy of this configuration with each table scaled down to
    /// `rows` rows — handy for functional tests that need real data without
    /// allocating the multi-GB tables of Table I.
    pub fn with_rows_per_table(&self, rows: u64) -> ModelConfig {
        ModelConfig {
            rows_per_table: rows,
            name: format!("{}[rows={rows}]", self.name),
            ..self.clone()
        }
    }

    /// Returns a copy with a different number of lookups per table (used by
    /// the Figure 7(b)/13(b) lookup sweeps).
    pub fn with_lookups_per_table(&self, lookups: usize) -> ModelConfig {
        ModelConfig {
            lookups_per_table: lookups,
            name: format!("{}[lookups={lookups}]", self.name),
            ..self.clone()
        }
    }

    /// Returns a copy with a different number of tables.
    pub fn with_num_tables(&self, num_tables: usize) -> ModelConfig {
        ModelConfig {
            num_tables,
            name: format!("{}[tables={num_tables}]", self.name),
            ..self.clone()
        }
    }
}

/// Builder for [`ModelConfig`].
#[derive(Debug, Clone, Default)]
pub struct ModelConfigBuilder {
    name: Option<String>,
    num_tables: Option<usize>,
    rows_per_table: Option<u64>,
    embedding_dim: Option<usize>,
    lookups_per_table: Option<usize>,
    dense_features: Option<usize>,
    bottom_mlp: Option<Vec<usize>>,
    top_mlp: Option<Vec<usize>>,
}

impl ModelConfigBuilder {
    /// Sets the model name (defaults to `"custom"`).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Sets the number of embedding tables.
    pub fn num_tables(mut self, n: usize) -> Self {
        self.num_tables = Some(n);
        self
    }

    /// Sets the number of rows per table.
    pub fn rows_per_table(mut self, rows: u64) -> Self {
        self.rows_per_table = Some(rows);
        self
    }

    /// Sets the embedding dimension (defaults to 32).
    pub fn embedding_dim(mut self, dim: usize) -> Self {
        self.embedding_dim = Some(dim);
        self
    }

    /// Sets the average lookups per table per sample.
    pub fn lookups_per_table(mut self, lookups: usize) -> Self {
        self.lookups_per_table = Some(lookups);
        self
    }

    /// Sets the number of dense input features (defaults to 13, the Criteo
    /// convention used by DLRM).
    pub fn dense_features(mut self, n: usize) -> Self {
        self.dense_features = Some(n);
        self
    }

    /// Sets the bottom-MLP layer widths (excluding the input width); the
    /// last width must equal the embedding dimension.
    pub fn bottom_mlp(mut self, dims: &[usize]) -> Self {
        self.bottom_mlp = Some(dims.to_vec());
        self
    }

    /// Sets the top-MLP widths. The final `1`-unit output layer is implied
    /// and must not be included; a trailing `1` is accepted and stripped for
    /// convenience.
    pub fn top_mlp(mut self, dims: &[usize]) -> Self {
        let mut dims = dims.to_vec();
        if dims.last() == Some(&1) {
            dims.pop();
        }
        self.top_mlp = Some(dims);
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] if a required field is missing
    /// or the configuration is inconsistent.
    pub fn build(self) -> Result<ModelConfig, DlrmError> {
        let embedding_dim = self.embedding_dim.unwrap_or(crate::DEFAULT_EMBEDDING_DIM);
        let config = ModelConfig {
            name: self.name.unwrap_or_else(|| "custom".to_string()),
            num_tables: self
                .num_tables
                .ok_or_else(|| DlrmError::InvalidConfig("num_tables not set".into()))?,
            rows_per_table: self
                .rows_per_table
                .ok_or_else(|| DlrmError::InvalidConfig("rows_per_table not set".into()))?,
            embedding_dim,
            lookups_per_table: self
                .lookups_per_table
                .ok_or_else(|| DlrmError::InvalidConfig("lookups_per_table not set".into()))?,
            dense_features: self.dense_features.unwrap_or(13),
            bottom_mlp: self.bottom_mlp.unwrap_or_else(|| vec![64, embedding_dim]),
            top_mlp_hidden: self.top_mlp.unwrap_or_else(|| vec![64, 32]),
        };
        config.validate()?;
        Ok(config)
    }
}

/// The six recommendation models of Table I in the paper.
///
/// Table sizes follow the paper exactly (128 MB, 1.28 GB or 3.2 GB of
/// embeddings); MLP layer widths are chosen to land close to the paper's
/// reported MLP footprints (57.4 KB for DLRM(1)–(5), 557 KB for DLRM(6)) —
/// see `EXPERIMENTS.md` for the exact derived sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaperModel {
    /// DLRM(1): 5 tables, 20 gathers/table, 128 MB of embeddings.
    Dlrm1,
    /// DLRM(2): 50 tables, 20 gathers/table, 1.28 GB of embeddings.
    Dlrm2,
    /// DLRM(3): 5 tables, 80 gathers/table, 128 MB of embeddings.
    Dlrm3,
    /// DLRM(4): 50 tables, 80 gathers/table, 1.28 GB of embeddings.
    Dlrm4,
    /// DLRM(5): 50 tables, 80 gathers/table, 3.2 GB of embeddings.
    Dlrm5,
    /// DLRM(6): 5 tables, 2 gathers/table, 128 MB of embeddings and a
    /// deliberately heavyweight MLP (the MLP-bound sensitivity study).
    Dlrm6,
}

impl PaperModel {
    /// All six models in paper order.
    pub fn all() -> [PaperModel; 6] {
        [
            PaperModel::Dlrm1,
            PaperModel::Dlrm2,
            PaperModel::Dlrm3,
            PaperModel::Dlrm4,
            PaperModel::Dlrm5,
            PaperModel::Dlrm6,
        ]
    }

    /// The paper's name for the model, e.g. `"DLRM(4)"`.
    pub fn label(self) -> &'static str {
        match self {
            PaperModel::Dlrm1 => "DLRM(1)",
            PaperModel::Dlrm2 => "DLRM(2)",
            PaperModel::Dlrm3 => "DLRM(3)",
            PaperModel::Dlrm4 => "DLRM(4)",
            PaperModel::Dlrm5 => "DLRM(5)",
            PaperModel::Dlrm6 => "DLRM(6)",
        }
    }

    /// Builds the full [`ModelConfig`] for this paper model.
    pub fn config(self) -> ModelConfig {
        // 32-dim f32 embeddings = 128 B rows. 200_000 rows/table = 25.6 MB
        // per table; 500_000 rows = 64 MB per table.
        let (num_tables, lookups, rows_per_table): (usize, usize, u64) = match self {
            PaperModel::Dlrm1 => (5, 20, 200_000),
            PaperModel::Dlrm2 => (50, 20, 200_000),
            PaperModel::Dlrm3 => (5, 80, 200_000),
            PaperModel::Dlrm4 => (50, 80, 200_000),
            PaperModel::Dlrm5 => (50, 80, 500_000),
            PaperModel::Dlrm6 => (5, 2, 200_000),
        };
        let (bottom, top): (Vec<usize>, Vec<usize>) = match self {
            // Lightweight MLP (~57 KB class).
            PaperModel::Dlrm1
            | PaperModel::Dlrm2
            | PaperModel::Dlrm3
            | PaperModel::Dlrm4
            | PaperModel::Dlrm5 => (vec![128, 64, 32], vec![64, 32]),
            // Heavyweight MLP (~557 KB class).
            PaperModel::Dlrm6 => (vec![256, 256, 128, 32], vec![256, 128, 64]),
        };
        ModelConfig {
            name: self.label().to_string(),
            num_tables,
            rows_per_table,
            embedding_dim: crate::DEFAULT_EMBEDDING_DIM,
            lookups_per_table: lookups,
            dense_features: 13,
            bottom_mlp: bottom,
            top_mlp_hidden: top,
        }
    }

    /// The batch sizes swept by every evaluation figure in the paper.
    pub fn paper_batch_sizes() -> [usize; 6] {
        [1, 4, 16, 32, 64, 128]
    }
}

impl std::fmt::Display for PaperModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let c = ModelConfig::builder()
            .name("test")
            .num_tables(4)
            .rows_per_table(100)
            .embedding_dim(16)
            .lookups_per_table(8)
            .dense_features(13)
            .bottom_mlp(&[32, 16])
            .top_mlp(&[64, 32, 1])
            .build()
            .unwrap();
        assert_eq!(c.name, "test");
        assert_eq!(c.top_mlp_hidden, vec![64, 32]);
        assert_eq!(c.bottom_mlp_dims(), vec![13, 32, 16]);
        assert_eq!(c.top_mlp_dims().last(), Some(&1));
    }

    #[test]
    fn builder_requires_fields() {
        assert!(ModelConfig::builder().build().is_err());
        assert!(ModelConfig::builder().num_tables(2).build().is_err());
    }

    #[test]
    fn validation_rejects_mismatched_bottom_output() {
        let c = ModelConfig::builder()
            .num_tables(2)
            .rows_per_table(10)
            .embedding_dim(32)
            .lookups_per_table(2)
            .bottom_mlp(&[64, 16]) // != embedding_dim
            .build();
        assert!(matches!(c, Err(DlrmError::InvalidConfig(_))));
    }

    #[test]
    fn validation_rejects_zeros() {
        for bad in [
            ModelConfig {
                num_tables: 0,
                ..PaperModel::Dlrm1.config()
            },
            ModelConfig {
                rows_per_table: 0,
                ..PaperModel::Dlrm1.config()
            },
            ModelConfig {
                lookups_per_table: 0,
                ..PaperModel::Dlrm1.config()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn paper_table_sizes_match_table1() {
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        // 128 MB class (paper rounds 25.6 MB * 5 = 122 MiB ≈ 128 MB decimal).
        let c1 = PaperModel::Dlrm1.config();
        assert_eq!(c1.num_tables, 5);
        assert_eq!(c1.lookups_per_table, 20);
        assert!((c1.embedding_bytes() as f64 / 1e6 - 128.0).abs() < 1.0);

        let c2 = PaperModel::Dlrm2.config();
        assert_eq!(c2.num_tables, 50);
        assert!((c2.embedding_bytes() as f64 / 1e9 - 1.28).abs() < 0.01);

        let c5 = PaperModel::Dlrm5.config();
        assert!((c5.embedding_bytes() as f64 / 1e9 - 3.2).abs() < 0.05);

        let c6 = PaperModel::Dlrm6.config();
        assert_eq!(c6.lookups_per_table, 2);
        // DLRM(6) has a much larger MLP than the others.
        assert!(c6.mlp_bytes() > 5 * PaperModel::Dlrm1.config().mlp_bytes());
        assert!(mb(c6.mlp_bytes()) < 1.5, "MLP should stay cache-resident");
    }

    #[test]
    fn light_mlps_are_llc_resident() {
        for m in [PaperModel::Dlrm1, PaperModel::Dlrm2, PaperModel::Dlrm3] {
            let c = m.config();
            // well under the 35 MB Broadwell LLC
            assert!(c.mlp_bytes() < 2 * 1024 * 1024, "{}: {}", m, c.mlp_bytes());
        }
    }

    #[test]
    fn derived_quantities_consistent() {
        let c = PaperModel::Dlrm4.config();
        assert_eq!(c.row_bytes(), 128);
        assert_eq!(c.lookups_per_sample(), 50 * 80);
        assert_eq!(c.gathered_bytes_per_sample(), 50 * 80 * 128);
        assert_eq!(c.index_bytes_per_sample(), 50 * 80 * 4);
        assert_eq!(c.dense_bytes_per_sample(), 13 * 4);
        assert_eq!(c.interaction_features(), 51);
        assert_eq!(c.top_mlp_input_dim(), 51 * 50 / 2 + 32);
        assert!(c.dense_flops_per_sample() > 0);
        assert_eq!(c.bottom_mlp_dims()[0], 13);
        assert_eq!(*c.top_mlp_dims().last().unwrap(), 1);
    }

    #[test]
    fn with_helpers_rename() {
        let c = PaperModel::Dlrm1.config();
        assert_eq!(c.with_rows_per_table(64).rows_per_table, 64);
        assert_eq!(c.with_lookups_per_table(7).lookups_per_table, 7);
        assert_eq!(c.with_num_tables(3).num_tables, 3);
        assert!(c.with_rows_per_table(64).name.contains("rows=64"));
    }

    #[test]
    fn all_paper_models_validate() {
        for m in PaperModel::all() {
            m.config().validate().unwrap();
        }
        assert_eq!(PaperModel::all().len(), 6);
        assert_eq!(PaperModel::Dlrm3.to_string(), "DLRM(3)");
        assert_eq!(PaperModel::paper_batch_sizes(), [1, 4, 16, 32, 64, 128]);
    }
}
