//! # centaur-dlrm
//!
//! A from-scratch, dependency-light functional implementation of the
//! DLRM-style personalized recommendation model used throughout the Centaur
//! paper (Hwang et al., ISCA 2020): sparse embedding tables with
//! `SparseLengthsSum`-style gather/reduce, bottom and top multi-layer
//! perceptrons, dot-product feature interaction and a final sigmoid.
//!
//! This crate is the *reference semantics* for every system model in the
//! workspace: the CPU-only baseline, the CPU-GPU baseline and the Centaur
//! accelerator all either call into it directly (functional path) or are
//! validated against it (timing path).
//!
//! ## Quick example
//!
//! ```
//! use centaur_dlrm::config::ModelConfig;
//! use centaur_dlrm::model::DlrmModel;
//! use centaur_dlrm::tensor::Matrix;
//!
//! # fn main() -> Result<(), centaur_dlrm::DlrmError> {
//! // A small model: 4 embedding tables of 1000 rows, 32-dim embeddings.
//! let config = ModelConfig::builder()
//!     .num_tables(4)
//!     .rows_per_table(1_000)
//!     .embedding_dim(32)
//!     .dense_features(13)
//!     .bottom_mlp(&[64, 32])
//!     .top_mlp(&[64, 1])
//!     .lookups_per_table(8)
//!     .build()?;
//! let model = DlrmModel::random(&config, 42)?;
//!
//! // One request: dense features + per-table sparse indices.
//! let dense = Matrix::from_fn(1, 13, |_, j| j as f32 * 0.1);
//! let indices: Vec<Vec<u32>> = (0..4).map(|t| vec![t, t + 1, t + 7]).collect();
//! let probability = model.forward_single(&dense, &indices)?;
//! assert!(probability[0] >= 0.0 && probability[0] <= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod embedding;
pub mod error;
pub mod interaction;
pub mod kernel;
pub mod mlp;
pub mod model;
pub mod request;
pub mod tensor;
pub mod trace;

pub use config::{ModelConfig, ModelConfigBuilder, PaperModel};
pub use embedding::{EmbeddingBag, EmbeddingTable, ReductionOp};
pub use error::DlrmError;
pub use interaction::FeatureInteraction;
pub use kernel::{
    global_backend, global_sparse_backend, parse_kernel_backend, parse_num_threads,
    parse_sparse_backend, prepack_events, set_global_backend, set_global_sparse_backend, FusedAct,
    KernelBackend, PrepackedWeights, SparseBackend, Workspace,
};
pub use mlp::{Activation, DenseLayer, Mlp, MlpStack};
pub use model::{check_batch_inputs, BatchWorkspace, DlrmModel, ForwardBreakdown, ModelWorkspace};
pub use request::{InferenceRequest, InferenceResponse, RejectReason, RejectedRequest};
pub use tensor::Matrix;
pub use trace::{EmbeddingAccess, GatherTrace, InferenceTrace};

/// Number of bytes in a single embedding element (`f32`).
pub const EMBEDDING_ELEM_BYTES: usize = 4;

/// The default embedding dimension used by the paper (32-wide vectors,
/// i.e. 128-byte embedding rows).
pub const DEFAULT_EMBEDDING_DIM: usize = 32;
