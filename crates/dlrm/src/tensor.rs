//! A minimal dense matrix type and the numeric kernels (GEMM, bias,
//! activations) the DLRM reference model is built from.
//!
//! The matrix is row-major `Vec<f32>` storage for semantic clarity; the
//! heavy math (GEMM, fused bias/activation) is delegated to the optimized
//! backends in [`crate::kernel`], with [`KernelBackend::Naive`] retained as
//! the correctness oracle. The Criterion benches in `centaur-bench` and
//! `centaur-dlrm` exercise these kernels so the relative cost of dense
//! layers is visible.

use crate::error::DlrmError;
use crate::kernel::KernelBackend;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the only tensor type used by the reference DLRM: a batch of
/// dense feature vectors is a `[batch, features]` matrix, an MLP weight is a
/// `[in, out]` matrix, a reduced embedding is a `[1, dim]` matrix, and so on.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a generator function `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix that takes ownership of a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, DlrmError> {
        if data.len() != rows * cols {
            return Err(DlrmError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a `[1, n]` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of bytes the matrix occupies (`f32` elements).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns element `(r, c)` without bounds checking beyond the debug
    /// assertions of slice indexing.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `value`.
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self.data[r * self.cols + c] = value;
    }

    /// Matrix product `self * rhs`, executed by the process-wide default
    /// [`KernelBackend`] (the cache-blocked kernel unless overridden).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, DlrmError> {
        self.matmul_with(crate::kernel::global_backend(), rhs)
    }

    /// Matrix product `self * rhs` on an explicit [`KernelBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, backend: KernelBackend, rhs: &Matrix) -> Result<Matrix, DlrmError> {
        if self.cols != rhs.rows {
            return Err(DlrmError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::gemm(
            backend,
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Matrix product for a *sparse* left operand: skips zero elements of
    /// `self` in an `ikj` loop.
    ///
    /// The zero-skip branch used to live in [`Matrix::matmul`], where it
    /// poisoned branch prediction on dense data; it only pays off when the
    /// left operand is mostly zeros (e.g. one-hot/multi-hot encodings), so
    /// it now lives in this explicitly sparse-aware entry point.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_sparse_aware(&self, rhs: &Matrix) -> Result<Matrix, DlrmError> {
        if self.cols != rhs.rows {
            return Err(DlrmError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    out_row[j] += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a `[1, cols]` bias row vector to every row of the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if the bias width differs from
    /// the matrix width.
    pub fn add_bias(&self, bias: &Matrix) -> Result<Matrix, DlrmError> {
        if bias.cols != self.cols || bias.rows != 1 {
            return Err(DlrmError::ShapeMismatch {
                op: "add_bias",
                lhs: self.shape(),
                rhs: bias.shape(),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        Ok(out)
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&self) -> Matrix {
        self.map(|x| if x > 0.0 { x } else { 0.0 })
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self) -> Matrix {
        self.map(sigmoid_scalar)
    }

    /// Concatenates two matrices horizontally (same number of rows).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if the row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Result<Matrix, DlrmError> {
        if self.rows != rhs.rows {
            return Err(DlrmError::ShapeMismatch {
                op: "hconcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Concatenates two matrices vertically (same number of columns).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::ShapeMismatch`] if the column counts differ.
    pub fn vconcat(&self, rhs: &Matrix) -> Result<Matrix, DlrmError> {
        if self.cols != rhs.cols {
            return Err(DlrmError::ShapeMismatch {
                op: "vconcat",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Dot product between two rows of (possibly different) matrices.
    ///
    /// # Panics
    ///
    /// Panics if the two rows have different lengths or are out of bounds.
    pub fn row_dot(&self, r: usize, other: &Matrix, other_r: usize) -> f32 {
        let a = self.row(r);
        let b = other.row(other_r);
        assert_eq!(a.len(), b.len(), "row_dot requires equal row widths");
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// Useful for approximate-equality checks in tests. Returns `f32::MAX`
    /// when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        if self.shape() != other.shape() {
            return f32::MAX;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                shown.join(", "),
                if self.cols > 8 { ", ..." } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "element-wise sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.map(|x| x * rhs)
    }
}

/// Numerically stable logistic sigmoid for a single value.
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Vectorized logistic sigmoid over a whole slice: `out[i] =
/// sigmoid(src[i])`. One pass, no allocation — the batch-major forward
/// paths use this to convert a batch of top-MLP logits into probabilities
/// in a single sweep instead of one scalar call per sample.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sigmoid_into(src: &[f32], out: &mut [f32]) {
    assert_eq!(src.len(), out.len(), "sigmoid width mismatch");
    for (o, &x) in out.iter_mut().zip(src) {
        *o = sigmoid_scalar(x);
    }
}

/// Counts the floating-point operations of a GEMM of the given shape
/// (`2 * m * n * k`, the usual multiply-accumulate convention).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.5);
        let slow = naive_matmul(&a, &b);
        for backend in KernelBackend::all() {
            let fast = a.matmul_with(backend, &b).unwrap();
            assert!(fast.max_abs_diff(&slow) < 1e-5, "{backend:?}");
        }
        assert!(a.matmul(&b).unwrap().max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn sparse_aware_matmul_matches_dense() {
        // Mostly-zero left operand: the sparse-aware path must agree with
        // the dense kernels.
        let a = Matrix::from_fn(4, 6, |r, c| {
            if (r + c) % 3 == 0 {
                (r + c) as f32
            } else {
                0.0
            }
        });
        let b = Matrix::from_fn(6, 5, |r, c| (r as f32 - c as f32) * 0.5);
        let dense = a.matmul(&b).unwrap();
        let sparse = a.matmul_sparse_aware(&b).unwrap();
        assert!(dense.max_abs_diff(&sparse) < 1e-5);
        assert!(a.matmul_sparse_aware(&Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(DlrmError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r + 2 * c) as f32);
        let id = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let out = a.matmul(&id).unwrap();
        assert!(out.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 31 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (7, 3));
        assert_eq!(a.transpose().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn add_bias_broadcasts() {
        let a = Matrix::filled(2, 3, 1.0);
        let bias = Matrix::row_vector(&[0.5, -0.5, 2.0]);
        let out = a.add_bias(&bias).unwrap();
        assert_eq!(out.row(0), &[1.5, 0.5, 3.0]);
        assert_eq!(out.row(1), &[1.5, 0.5, 3.0]);
    }

    #[test]
    fn add_bias_shape_checked() {
        let a = Matrix::filled(2, 3, 1.0);
        let bias = Matrix::row_vector(&[1.0, 2.0]);
        assert!(a.add_bias(&bias).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Matrix::row_vector(&[-1.0, 0.0, 2.5]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        for &x in &[-80.0, -5.0, -0.1, 0.0, 0.1, 5.0, 80.0] {
            let y = sigmoid_scalar(x);
            assert!((0.0..=1.0).contains(&y), "sigmoid({x}) = {y}");
            let y_neg = sigmoid_scalar(-x);
            assert!((y + y_neg - 1.0).abs() < 1e-5);
        }
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn hconcat_and_vconcat() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = a.hconcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);

        let c = Matrix::filled(1, 2, 3.0);
        let v = a.vconcat(&c).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[3.0, 3.0]);

        assert!(a.hconcat(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vconcat(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn row_dot_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let d = a.row_dot(0, &a, 1);
        assert!((d - (4.0 + 10.0 + 18.0)).abs() < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[0.5, 0.25]);
        assert_eq!((&a + &b).as_slice(), &[1.5, 2.25]);
        assert_eq!((&a - &b).as_slice(), &[0.5, 1.75]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn indexing_works() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 3.0;
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a.get(0, 1), 3.0);
        a.set(1, 0, -1.0);
        assert_eq!(a[(1, 0)], -1.0);
    }

    #[test]
    fn gemm_flops_counts() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }

    #[test]
    fn size_bytes_is_elem_count_times_four() {
        assert_eq!(Matrix::zeros(4, 8).size_bytes(), 128);
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let a = Matrix::zeros(100, 100);
        let s = format!("{a}");
        assert!(s.contains("Matrix 100x100"));
    }
}
