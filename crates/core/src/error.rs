//! Error type for the Centaur accelerator model.

use std::error::Error;
use std::fmt;

/// Errors raised by the Centaur accelerator (configuration, capacity and
/// datapath problems).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CentaurError {
    /// A model or buffer does not fit in the FPGA resource it must occupy.
    CapacityExceeded {
        /// Which on-chip resource overflowed.
        resource: &'static str,
        /// Bytes (or units) requested.
        required: u64,
        /// Bytes (or units) available.
        available: u64,
    },
    /// The accelerator was used before the host initialised it over MMIO.
    NotInitialised(&'static str),
    /// The functional datapath hit an inconsistency (propagated from the
    /// reference model).
    Model(centaur_dlrm::DlrmError),
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A fail-stop serving replica held one batch past the stall deadline
    /// (twice the request SLO): the replay was aborted rather than left
    /// hanging on the straggler until generator close.
    ReplicaStalled {
        /// The replica whose in-flight batch went stale.
        replica: usize,
        /// How long the batch had been held when the watchdog fired, in
        /// milliseconds.
        held_ms: u64,
    },
}

impl fmt::Display for CentaurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CentaurError::CapacityExceeded {
                resource,
                required,
                available,
            } => write!(
                f,
                "capacity exceeded for {resource}: need {required}, have {available}"
            ),
            CentaurError::NotInitialised(what) => {
                write!(f, "accelerator used before {what} was initialised")
            }
            CentaurError::Model(e) => write!(f, "model error: {e}"),
            CentaurError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CentaurError::ReplicaStalled { replica, held_ms } => write!(
                f,
                "replica {replica} stalled: batch held {held_ms} ms, past the stall deadline"
            ),
        }
    }
}

impl Error for CentaurError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CentaurError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<centaur_dlrm::DlrmError> for CentaurError {
    fn from(e: centaur_dlrm::DlrmError) -> Self {
        CentaurError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CentaurError::CapacityExceeded {
            resource: "weight SRAM",
            required: 100,
            available: 10,
        };
        assert!(e.to_string().contains("weight SRAM"));
        assert!(e.source().is_none());

        let inner = centaur_dlrm::DlrmError::InvalidConfig("x".into());
        let wrapped = CentaurError::from(inner);
        assert!(wrapped.source().is_some());
        assert!(wrapped.to_string().contains("model error"));
    }

    #[test]
    fn stall_diagnostic_names_the_replica() {
        let e = CentaurError::ReplicaStalled {
            replica: 1,
            held_ms: 212,
        };
        let text = e.to_string();
        assert!(text.contains("replica 1"), "{text}");
        assert!(text.contains("212 ms"), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CentaurError>();
    }
}
