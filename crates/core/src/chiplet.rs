//! The package-level CPU↔FPGA interconnect model.
//!
//! On the paper's HARPv2 substrate the FPGA chiplet reaches host memory over
//! one cache-coherent UPI link and two PCIe links, giving a theoretical
//! 28.8 GB/s of uni-directional bandwidth of which roughly 17–18 GB/s is
//! achievable; the EB-Streamer sustains about 68 % of that on sparse gather
//! traffic (11.9 GB/s measured in the paper). The model also exposes the
//! *cache-bypassing* route of the proposed chiplet architecture (Figure 8),
//! which provisions bandwidth commensurate with the DRAM peak — used by the
//! forward-looking ablation benches.

use serde::{Deserialize, Serialize};

/// Which path FPGA-originated memory requests take to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LinkPath {
    /// Through the CPU cache hierarchy over the coherent links (HARPv2's
    /// only option, and Centaur's default).
    #[default]
    CacheCoherent,
    /// Directly to the memory controller, bypassing the CPU caches
    /// (the proposed future design point of Section IV-B / VII).
    CacheBypass,
}

/// Static description of the CPU↔FPGA communication fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipletLinkConfig {
    /// Number of PCIe links between the chiplets.
    pub pcie_links: usize,
    /// Peak bandwidth of each PCIe link in GB/s.
    pub pcie_gbs_each: f64,
    /// Peak bandwidth of the coherent UPI link in GB/s.
    pub upi_gbs: f64,
    /// Fraction of the theoretical bandwidth that is achievable for bulk
    /// transfers (protocol and coherence overheads).
    pub achievable_fraction: f64,
    /// Fraction of the *achievable* bandwidth the EB-Streamer sustains on
    /// sparse 64–128 B gather traffic.
    pub streamer_efficiency: f64,
    /// One-way request latency over the link in nanoseconds.
    pub request_latency_ns: f64,
    /// Maximum outstanding read requests the FPGA keeps in flight.
    pub max_outstanding: usize,
    /// Bandwidth of the cache-bypassing path in GB/s (only meaningful when
    /// [`LinkPath::CacheBypass`] is selected; future design point).
    pub bypass_gbs: f64,
    /// Which path gather traffic uses.
    pub path: LinkPath,
}

impl ChipletLinkConfig {
    /// The Intel HARPv2 proof-of-concept substrate used by the paper:
    /// 2 × PCIe + 1 × UPI, 28.8 GB/s theoretical, ~17.5 GB/s effective.
    pub fn harpv2() -> Self {
        ChipletLinkConfig {
            pcie_links: 2,
            pcie_gbs_each: 8.0,
            upi_gbs: 12.8,
            achievable_fraction: 0.61,
            streamer_efficiency: 0.70,
            request_latency_ns: 600.0,
            max_outstanding: 64,
            bypass_gbs: 76.8,
            path: LinkPath::CacheCoherent,
        }
    }

    /// A forward-looking chiplet package with high-bandwidth die-to-die
    /// signalling (hundreds of GB/s, Section VII) and a cache-bypass path.
    pub fn future_chiplet(bandwidth_gbs: f64) -> Self {
        ChipletLinkConfig {
            pcie_links: 0,
            pcie_gbs_each: 0.0,
            upi_gbs: bandwidth_gbs,
            achievable_fraction: 0.85,
            streamer_efficiency: 0.9,
            request_latency_ns: 150.0,
            max_outstanding: 256,
            bypass_gbs: bandwidth_gbs,
            path: LinkPath::CacheBypass,
        }
    }

    /// Theoretical uni-directional bandwidth in GB/s (28.8 for HARPv2).
    pub fn theoretical_bandwidth_gbs(&self) -> f64 {
        self.pcie_links as f64 * self.pcie_gbs_each + self.upi_gbs
    }

    /// Achievable bulk-transfer bandwidth in GB/s (~17.5 for HARPv2).
    pub fn effective_bandwidth_gbs(&self) -> f64 {
        match self.path {
            LinkPath::CacheCoherent => self.theoretical_bandwidth_gbs() * self.achievable_fraction,
            LinkPath::CacheBypass => self.bypass_gbs * self.achievable_fraction,
        }
    }

    /// Bandwidth the EB-Streamer sustains on sparse gather traffic in GB/s
    /// (~12 for HARPv2).
    pub fn streamer_bandwidth_gbs(&self) -> f64 {
        self.effective_bandwidth_gbs() * self.streamer_efficiency
    }

    /// Time in nanoseconds for a bulk (sequential) transfer of `bytes` over
    /// the link, e.g. the sparse-index array or dense features.
    pub fn bulk_transfer_ns(&self, bytes: u64) -> f64 {
        self.request_latency_ns + bytes as f64 / self.effective_bandwidth_gbs()
    }

    /// Time in nanoseconds to stream `bytes` of scattered gather traffic
    /// (`requests` individual reads) into the FPGA.
    ///
    /// The stream is bandwidth-bound at [`Self::streamer_bandwidth_gbs`]
    /// once enough requests are in flight; with few requests it is
    /// latency-bound by the pipelined request window.
    pub fn gather_stream_ns(&self, bytes: u64, requests: u64) -> f64 {
        if requests == 0 || bytes == 0 {
            return 0.0;
        }
        let bandwidth_bound_ns = bytes as f64 / self.streamer_bandwidth_gbs();
        // With `max_outstanding` requests pipelined over a link with
        // `request_latency_ns` round-trip, the issue-limited time is:
        let latency_bound_ns =
            requests as f64 * self.request_latency_ns / self.max_outstanding as f64;
        self.request_latency_ns + bandwidth_bound_ns.max(latency_bound_ns)
    }
}

impl Default for ChipletLinkConfig {
    fn default() -> Self {
        ChipletLinkConfig::harpv2()
    }
}

/// Byte counters for traffic that crossed the link (used for reporting and
/// for the energy model's data-movement accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTraffic {
    /// Bytes moved from CPU memory to the FPGA.
    pub cpu_to_fpga_bytes: u64,
    /// Bytes moved from the FPGA back to CPU memory.
    pub fpga_to_cpu_bytes: u64,
}

impl LinkTraffic {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.cpu_to_fpga_bytes + self.fpga_to_cpu_bytes
    }

    /// Accumulates other traffic counters into this one.
    pub fn merge(&mut self, other: &LinkTraffic) {
        self.cpu_to_fpga_bytes += other.cpu_to_fpga_bytes;
        self.fpga_to_cpu_bytes += other.fpga_to_cpu_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harpv2_bandwidth_matches_paper() {
        let link = ChipletLinkConfig::harpv2();
        assert!((link.theoretical_bandwidth_gbs() - 28.8).abs() < 1e-9);
        let effective = link.effective_bandwidth_gbs();
        assert!(
            (17.0..18.5).contains(&effective),
            "effective {effective:.1} GB/s should be ~17-18"
        );
        let streamer = link.streamer_bandwidth_gbs();
        assert!(
            (11.0..13.5).contains(&streamer),
            "streamer {streamer:.1} GB/s should be ~12"
        );
    }

    #[test]
    fn gather_stream_is_bandwidth_bound_for_large_transfers() {
        let link = ChipletLinkConfig::harpv2();
        let bytes = 64 * 1024 * 1024u64;
        let t = link.gather_stream_ns(bytes, bytes / 128);
        let implied_gbs = bytes as f64 / t;
        assert!((implied_gbs - link.streamer_bandwidth_gbs()).abs() < 0.5);
    }

    #[test]
    fn gather_stream_is_latency_bound_for_tiny_transfers() {
        let link = ChipletLinkConfig::harpv2();
        let t = link.gather_stream_ns(128, 1);
        assert!(t >= link.request_latency_ns);
        assert_eq!(link.gather_stream_ns(0, 0), 0.0);
    }

    #[test]
    fn gather_stream_monotonic_in_bytes() {
        let link = ChipletLinkConfig::harpv2();
        let mut prev = 0.0;
        for i in 1..20u64 {
            let t = link.gather_stream_ns(i * 128 * 100, i * 100);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn bulk_transfer_accounts_latency_and_bandwidth() {
        let link = ChipletLinkConfig::harpv2();
        let small = link.bulk_transfer_ns(64);
        assert!(small >= link.request_latency_ns);
        let big = link.bulk_transfer_ns(1 << 30);
        assert!(big > (1u64 << 30) as f64 / link.effective_bandwidth_gbs());
    }

    #[test]
    fn future_chiplet_is_much_faster() {
        let harp = ChipletLinkConfig::harpv2();
        let future = ChipletLinkConfig::future_chiplet(400.0);
        assert!(future.streamer_bandwidth_gbs() > 5.0 * harp.streamer_bandwidth_gbs());
        assert_eq!(future.path, LinkPath::CacheBypass);
        let bytes = 64 * 1024 * 1024u64;
        assert!(
            future.gather_stream_ns(bytes, bytes / 128) < harp.gather_stream_ns(bytes, bytes / 128)
        );
    }

    #[test]
    fn traffic_counters_merge() {
        let mut a = LinkTraffic {
            cpu_to_fpga_bytes: 100,
            fpga_to_cpu_bytes: 10,
        };
        let b = LinkTraffic {
            cpu_to_fpga_bytes: 5,
            fpga_to_cpu_bytes: 1,
        };
        a.merge(&b);
        assert_eq!(a.total_bytes(), 116);
    }
}
