//! The host-side software interface (Section IV-E): a thin runtime that
//! registers a model with the accelerator over MMIO ("pointer-is-a-pointer"
//! semantics), then drives functional inference through the sparse and
//! dense complexes and predicts latency through the timing model.

use crate::accelerator::{CentaurConfig, CentaurInferenceResult, CentaurSystem};
use crate::bpregs::{BasePointer, BasePointerRegs};
use crate::dense::DenseAccelerator;
use crate::error::CentaurError;
use crate::sparse::EbStreamer;
use centaur_dlrm::kernel::{grow, KernelBackend, SparseBackend};
use centaur_dlrm::model::{check_batch_inputs, DlrmModel};
use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::trace::{InferenceTrace, TableLayout};

/// Samples per batch wave on the runtime's batched path.
///
/// Large batches are carved into waves of this many samples, each wave
/// running EB-Streamer gather → dense complex back to back, so the reduced
/// embeddings are still cache-hot when the interaction unit consumes them
/// and the staging buffers stay wave-sized instead of batch-sized. This is
/// what fixed the DLRM(1) batch-major throughput decline from batch 16 to
/// 128: at batch 128 the un-waved pipeline staged ~0.3 MB of intermediates
/// on top of a ~1.2 MB gathered-row working set and fell out of L2. Waves
/// of 64 keep the m = batch GEMM large enough that MLP weight reuse is
/// fully amortized (DLRM(6) throughput at m = 64 measures within 1% of
/// m = 128) while halving the staging footprint; smaller waves start
/// costing the MLP-heavy models real GEMM efficiency.
pub const BATCH_WAVE_SAMPLES: usize = 64;

// A replica shard must be movable onto a serving worker thread; the runtime
// owns every piece of its state (no shared-interior-mutability handles), so
// this holds by construction — enforced at compile time right here.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<CentaurRuntime>();
};

/// A model registered with a Centaur device, ready to serve inferences.
///
/// Construction mirrors the paper's boot-time flow: the host writes the base
/// pointers of the sparse index array, every embedding table, the MLP
/// weights and the dense features into `BPregs` over MMIO, and uploads the
/// MLP weights into the dense complex's SRAM; afterwards each inference is
/// orchestrated entirely by the accelerator.
#[derive(Debug, Clone)]
pub struct CentaurRuntime {
    model: DlrmModel,
    bpregs: BasePointerRegs,
    streamer: EbStreamer,
    dense: DenseAccelerator,
    system: CentaurSystem,
    /// Reused `[num_tables, dim]` staging matrix for reduced embeddings —
    /// gathered rows land here every request, no per-request allocation.
    reduced: Matrix,
    /// Reused batch-major staging buffer (`[batch, num_tables * dim]`) for
    /// the batched path — grows to the high-water batch size and is reused
    /// across requests.
    reduced_batch: Vec<f32>,
}

impl CentaurRuntime {
    /// Registers `model` with a Centaur device using the given system
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the model's MLP does
    /// not fit in the on-chip weight SRAM, or an MMIO error if the register
    /// file cannot describe the model.
    pub fn new(model: DlrmModel, config: CentaurConfig) -> Result<Self, CentaurError> {
        let layout = TableLayout::for_config(model.config());
        let mut bpregs = BasePointerRegs::new(model.config().num_tables);

        // Boot-time MMIO writes (virtual addresses in the shared space).
        bpregs.mmio_write(BasePointer::SparseIndexArray, 0x0800_0000)?;
        for table in 0..model.config().num_tables {
            let addr = layout.address_of(centaur_dlrm::trace::EmbeddingAccess { table, row: 0 });
            bpregs.mmio_write(BasePointer::EmbeddingTable(table), addr)?;
        }
        bpregs.mmio_write(BasePointer::MlpWeights, 0x0900_0000)?;
        bpregs.mmio_write(BasePointer::DenseFeatures, 0x0A00_0000)?;
        bpregs.mmio_write(BasePointer::Output, 0x0B00_0000)?;

        let mut dense = DenseAccelerator::harpv2();
        // Upload the MLP weights in the prepacked panel layout — the
        // resident form the default prepacked GEMM path serves from.
        dense.load_model_packed(&model)?;

        let reduced = Matrix::zeros(model.config().num_tables, model.config().embedding_dim);
        Ok(CentaurRuntime {
            model,
            bpregs,
            streamer: EbStreamer::new(config.link),
            dense,
            system: CentaurSystem::new(config),
            reduced,
            reduced_batch: Vec::new(),
        })
    }

    /// The kernel backend executing the functional datapath.
    pub fn backend(&self) -> KernelBackend {
        self.dense.backend()
    }

    /// Selects the kernel backend for subsequent functional inferences.
    pub fn set_backend(&mut self, backend: KernelBackend) {
        self.dense.set_backend(backend);
    }

    /// The sparse backend executing the EB-Streamer's gather-reduce path.
    pub fn sparse_backend(&self) -> SparseBackend {
        self.streamer.sparse_backend()
    }

    /// Selects the sparse backend for subsequent functional inferences
    /// (`Scalar` is the PR 2 oracle pipeline; the vectorized backends run
    /// the register-tiled prefetching kernels through the hot-row cache).
    pub fn set_sparse_backend(&mut self, backend: SparseBackend) {
        self.streamer.set_sparse_backend(backend);
    }

    /// The EB-Streamer (exposes cache and unit counters).
    pub fn streamer(&self) -> &EbStreamer {
        &self.streamer
    }

    /// Registers `model` on the HARPv2 proof-of-concept configuration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CentaurRuntime::new`].
    pub fn harpv2(model: DlrmModel) -> Result<Self, CentaurError> {
        CentaurRuntime::new(model, CentaurConfig::harpv2())
    }

    /// Builds a pool of `replicas` independent runtime shards serving the
    /// same model: the boot-time registration (MMIO base-pointer writes,
    /// capacity checks, weight-SRAM upload) runs **once**, then each
    /// replica clones the registered state. Every shard is `Send` (enforced
    /// at compile time), so a serving layer can move one onto each worker
    /// thread and run them concurrently — replicas share nothing mutable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CentaurRuntime::new`], plus
    /// [`CentaurError::NotInitialised`] for an empty pool request.
    pub fn replica_pool(
        model: DlrmModel,
        config: CentaurConfig,
        replicas: usize,
    ) -> Result<Vec<CentaurRuntime>, CentaurError> {
        if replicas == 0 {
            return Err(CentaurError::NotInitialised("replica pool of size zero"));
        }
        let first = CentaurRuntime::new(model, config)?;
        let mut pool = Vec::with_capacity(replicas);
        for _ in 1..replicas {
            pool.push(first.clone());
        }
        pool.push(first);
        Ok(pool)
    }

    /// The registered model.
    pub fn model(&self) -> &DlrmModel {
        &self.model
    }

    /// The base-pointer register file as initialised at boot.
    pub fn bpregs(&self) -> &BasePointerRegs {
        &self.bpregs
    }

    /// Runs one functional inference through the accelerator datapath
    /// (EB-Streamer gathers/reductions, then the dense complex).
    ///
    /// # Errors
    ///
    /// Propagates datapath errors (index out of bounds, shape mismatches).
    pub fn infer_single(
        &mut self,
        dense_row: &Matrix,
        indices_per_table: &[Vec<u32>],
    ) -> Result<f32, CentaurError> {
        if dense_row.rows() != 1 {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "dense features row",
                lhs: (1, dense_row.cols()),
                rhs: dense_row.shape(),
            }
            .into());
        }
        self.infer_sample(dense_row.as_slice(), indices_per_table)
    }

    /// One sample through the accelerator datapath over raw buffers — the
    /// allocation-free hot path shared by [`CentaurRuntime::infer_single`]
    /// and [`CentaurRuntime::infer_batch`].
    ///
    /// # Errors
    ///
    /// Propagates datapath errors (index out of bounds, shape mismatches).
    pub fn infer_sample(
        &mut self,
        dense_row: &[f32],
        indices_per_table: &[Vec<u32>],
    ) -> Result<f32, CentaurError> {
        let CentaurRuntime {
            model,
            streamer,
            dense,
            reduced,
            ..
        } = self;
        streamer.gather_reduce_into(model.embeddings(), indices_per_table, reduced)?;
        dense.forward_sample_slice(model, dense_row, reduced)
    }

    /// Runs a batched functional inference; one probability per sample.
    ///
    /// This is the **batch-major** accelerator path: the EB-Streamer gathers
    /// and reduces every sample's bags into one batch-major staging buffer,
    /// then the dense complex runs one GEMM per MLP layer with `m = batch`,
    /// one batched interaction pass and one sigmoid sweep — no per-sample
    /// `m = 1` GEMMs.
    ///
    /// # Errors
    ///
    /// Returns a batch-mismatch error when the dense batch and sparse batch
    /// disagree, plus any datapath error.
    pub fn infer_batch(
        &mut self,
        dense: &Matrix,
        batch_indices: &[Vec<Vec<u32>>],
    ) -> Result<Vec<f32>, CentaurError> {
        let mut out = vec![0.0; batch_indices.len()];
        self.infer_batch_into(dense, batch_indices, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`CentaurRuntime::infer_batch`]: writes one
    /// probability per sample into the caller-owned `out`. After the
    /// runtime's staging buffers have warmed up to the high-water batch
    /// size, repeated batched requests reuse them without reallocating.
    ///
    /// # Errors
    ///
    /// Same as [`CentaurRuntime::infer_batch`], plus a batch mismatch when
    /// `out` is not one slot per sample.
    pub fn infer_batch_into(
        &mut self,
        dense: &Matrix,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        check_batch_inputs(dense, batch_indices)?;
        self.infer_batch_rows_into(dense.as_slice(), dense.cols(), batch_indices, out)
    }

    /// [`CentaurRuntime::infer_batch_into`] over raw row-major dense
    /// features (`[batch * cols]`) instead of a [`Matrix`] — the entry
    /// point for serving layers that stage coalesced requests in their own
    /// reusable buffers and cannot afford to build a `Matrix` per batch.
    ///
    /// # Errors
    ///
    /// Same as [`CentaurRuntime::infer_batch_into`]; the batch size is
    /// `batch_indices.len()` and `dense_rows` must hold exactly
    /// `batch * cols` values.
    pub fn infer_batch_rows_into(
        &mut self,
        dense_rows: &[f32],
        cols: usize,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        let batch = batch_indices.len();
        if dense_rows.len() != batch * cols {
            return Err(centaur_dlrm::DlrmError::BatchMismatch {
                what: "dense elements vs batch rows",
                left: dense_rows.len(),
                right: batch * cols,
            }
            .into());
        }
        if out.len() != batch {
            return Err(centaur_dlrm::DlrmError::BatchMismatch {
                what: "dense rows vs output slots",
                left: batch,
                right: out.len(),
            }
            .into());
        }
        let stride = self.model.config().num_tables * self.model.config().embedding_dim;
        let wave = BATCH_WAVE_SAMPLES.min(batch.max(1));
        grow(&mut self.reduced_batch, wave * stride);
        let CentaurRuntime {
            model,
            streamer,
            dense: dense_complex,
            reduced_batch,
            ..
        } = self;
        // The batch streams through in bounded waves: gather one wave's
        // reduced embeddings, run the dense complex on it while those rows
        // are still cache-hot, then reuse the same wave-sized staging
        // buffer for the next wave. Bitwise identical to processing the
        // whole batch at once — GEMM output rows accumulate in the same
        // order regardless of m.
        for start in (0..batch).step_by(wave.max(1)) {
            let end = (start + wave).min(batch);
            let n = end - start;
            streamer.gather_reduce_batch_into(
                model.embeddings(),
                &batch_indices[start..end],
                &mut reduced_batch[..n * stride],
                stride,
                0,
            )?;
            dense_complex.forward_batch_rows_into(
                model,
                &dense_rows[start * cols..end * cols],
                n,
                cols,
                &reduced_batch[..n * stride],
                &mut out[start..end],
            )?;
        }
        Ok(())
    }

    /// Predicts the latency of a batched request on this device.
    pub fn estimate_latency(&mut self, trace: &InferenceTrace) -> CentaurInferenceResult {
        self.system.simulate(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::{ModelConfig, PaperModel};
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn small_model() -> DlrmModel {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        DlrmModel::random(&config, 5).unwrap()
    }

    #[test]
    fn boot_initialises_all_base_pointers() {
        let runtime = CentaurRuntime::harpv2(small_model()).unwrap();
        assert!(runtime.bpregs().is_fully_initialised());
        assert_eq!(runtime.bpregs().num_tables(), 5);
    }

    #[test]
    fn functional_inference_matches_reference_model() {
        let model = small_model();
        let mut runtime = CentaurRuntime::harpv2(model.clone()).unwrap();
        let config = model.config().clone();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 17);
        let batch = generator.functional_batch(6);

        let ours = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
        let reference = model.forward_batch(&batch.dense, &batch.sparse).unwrap();
        assert_eq!(ours.len(), reference.len());
        for (a, b) in ours.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-4, "accelerator {a} vs reference {b}");
        }
    }

    #[test]
    fn batch_major_inference_matches_per_sample_loop() {
        let model = small_model();
        let config = model.config().clone();
        let mut batched = CentaurRuntime::harpv2(model.clone()).unwrap();
        let mut per_sample = CentaurRuntime::harpv2(model).unwrap();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 29);
        let batch = generator.functional_batch(8);

        let ours = batched.infer_batch(&batch.dense, &batch.sparse).unwrap();
        for (i, indices) in batch.sparse.iter().enumerate() {
            let single = per_sample
                .infer_sample(batch.dense.row(i), indices)
                .unwrap();
            assert_eq!(ours[i], single, "sample {i} diverged from per-sample path");
        }
    }

    #[test]
    fn replica_pool_registers_once_and_shards_agree() {
        let model = small_model();
        let config = model.config().clone();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 31);
        let batch = generator.functional_batch(4);

        let mut pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 3).unwrap();
        assert_eq!(pool.len(), 3);
        // Every shard is fully booted and serves identical results.
        let reference = pool[0].infer_batch(&batch.dense, &batch.sparse).unwrap();
        for shard in &mut pool {
            assert!(shard.bpregs().is_fully_initialised());
            let served = shard.infer_batch(&batch.dense, &batch.sparse).unwrap();
            assert_eq!(served, reference);
        }
        // Shards really are independent: they can serve from worker threads.
        std::thread::scope(|scope| {
            let handles: Vec<_> = pool
                .iter_mut()
                .map(|shard| {
                    let dense = &batch.dense;
                    let sparse = &batch.sparse;
                    scope.spawn(move || shard.infer_batch(dense, sparse).unwrap())
                })
                .collect();
            for handle in handles {
                assert_eq!(handle.join().unwrap(), reference);
            }
        });
        assert!(CentaurRuntime::replica_pool(small_model(), CentaurConfig::harpv2(), 0).is_err());
    }

    #[test]
    fn infer_batch_rows_matches_matrix_path() {
        let model = small_model();
        let config = model.config().clone();
        let mut runtime = CentaurRuntime::harpv2(model).unwrap();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 37);
        let batch = generator.functional_batch(5);

        let via_matrix = runtime.infer_batch(&batch.dense, &batch.sparse).unwrap();
        let mut via_rows = vec![0.0f32; 5];
        runtime
            .infer_batch_rows_into(
                batch.dense.as_slice(),
                batch.dense.cols(),
                &batch.sparse,
                &mut via_rows,
            )
            .unwrap();
        assert_eq!(via_matrix, via_rows);
        // Mis-sized dense slab is rejected.
        assert!(runtime
            .infer_batch_rows_into(
                &batch.dense.as_slice()[1..],
                batch.dense.cols(),
                &batch.sparse,
                &mut via_rows,
            )
            .is_err());
    }

    #[test]
    fn batch_mismatch_is_rejected() {
        let mut runtime = CentaurRuntime::harpv2(small_model()).unwrap();
        let dense = Matrix::zeros(2, 13);
        assert!(runtime.infer_batch(&dense, &[]).is_err());
    }

    #[test]
    fn latency_estimate_available_from_runtime() {
        let model = small_model();
        let config = model.config().clone();
        let mut runtime = CentaurRuntime::harpv2(model).unwrap();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 23);
        let trace = generator.inference_trace(8);
        let estimate = runtime.estimate_latency(&trace);
        assert!(estimate.total_ns() > 0.0);
        assert_eq!(estimate.batch, 8);
    }

    #[test]
    fn oversized_mlp_is_rejected_at_registration() {
        // Construct a model whose MLP exceeds the 650 KB weight SRAM.
        let config = ModelConfig::builder()
            .name("huge-mlp")
            .num_tables(2)
            .rows_per_table(64)
            .embedding_dim(32)
            .lookups_per_table(2)
            .dense_features(13)
            .bottom_mlp(&[1024, 512, 32])
            .top_mlp(&[1024, 512])
            .build()
            .unwrap();
        assert!(config.mlp_bytes() > 650_000);
        let model = DlrmModel::random(&config, 1).unwrap();
        assert!(matches!(
            CentaurRuntime::harpv2(model),
            Err(CentaurError::CapacityExceeded { .. })
        ));
    }
}
