//! The assembled Centaur accelerator: timing model producing the IDX / EMB /
//! DNF / MLP / Other latency breakdown of Figure 14.

use crate::chiplet::ChipletLinkConfig;
use crate::dense::{DenseAccelerator, DenseStageTiming};
use crate::sparse::{EbStreamer, SparseStageTiming};
use centaur_dlrm::trace::InferenceTrace;
use centaur_memsim::Throughput;
use serde::{Deserialize, Serialize};

/// Top-level configuration of the Centaur system model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentaurConfig {
    /// The CPU↔FPGA interconnect.
    pub link: ChipletLinkConfig,
    /// Host-side overhead per request: MMIO doorbell, request staging and
    /// result post-processing, in ns.
    pub host_overhead_ns: f64,
}

impl CentaurConfig {
    /// The paper's HARPv2 proof-of-concept configuration.
    pub fn harpv2() -> Self {
        CentaurConfig {
            link: ChipletLinkConfig::harpv2(),
            host_overhead_ns: 3_000.0,
        }
    }

    /// A forward-looking chiplet configuration with `bandwidth_gbs` of
    /// die-to-die bandwidth and a cache-bypassing gather path (Section VII).
    pub fn future_chiplet(bandwidth_gbs: f64) -> Self {
        CentaurConfig {
            link: ChipletLinkConfig::future_chiplet(bandwidth_gbs),
            host_overhead_ns: 3_000.0,
        }
    }
}

impl Default for CentaurConfig {
    fn default() -> Self {
        CentaurConfig::harpv2()
    }
}

/// Latency split of one Centaur inference, matching Figure 14's categories.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CentaurBreakdown {
    /// CPU→FPGA sparse-index fetch (IDX), in ns.
    pub index_fetch_ns: f64,
    /// Embedding gathers + reductions (EMB), in ns.
    pub embedding_ns: f64,
    /// CPU→FPGA dense-feature fetch (DNF), in ns.
    pub dense_feature_ns: f64,
    /// MLP + feature-interaction execution (MLP), in ns.
    pub mlp_ns: f64,
    /// Everything else: host overhead and result write-back (Other), in ns.
    pub other_ns: f64,
}

impl CentaurBreakdown {
    /// Total end-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.index_fetch_ns
            + self.embedding_ns
            + self.dense_feature_ns
            + self.mlp_ns
            + self.other_ns
    }

    /// Fraction of total time spent in the embedding stage.
    pub fn embedding_fraction(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.embedding_ns / self.total_ns()
        }
    }

    /// Fraction of total time spent in the MLP stage.
    pub fn mlp_fraction(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.mlp_ns / self.total_ns()
        }
    }
}

/// Result of one simulated Centaur batched inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentaurInferenceResult {
    /// Batch size of the request.
    pub batch: usize,
    /// IDX / EMB / DNF / MLP / Other latency split.
    pub breakdown: CentaurBreakdown,
    /// Sparse-stage detail.
    pub sparse: SparseStageTiming,
    /// Dense-stage detail.
    pub dense: DenseStageTiming,
}

impl CentaurInferenceResult {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.breakdown.total_ns()
    }

    /// The paper's effective memory throughput for embedding gathers.
    pub fn effective_embedding_throughput(&self) -> Throughput {
        self.sparse.effective_throughput()
    }

    /// Speedup of this result over a baseline latency (e.g. CPU-only).
    pub fn speedup_over(&self, baseline_total_ns: f64) -> f64 {
        baseline_total_ns / self.total_ns()
    }

    /// Requests per second this latency sustains (single request in flight).
    pub fn throughput_qps(&self) -> f64 {
        1e9 / self.total_ns()
    }
}

/// The Centaur system timing model.
#[derive(Debug, Clone)]
pub struct CentaurSystem {
    config: CentaurConfig,
    streamer: EbStreamer,
    dense: DenseAccelerator,
}

impl CentaurSystem {
    /// Creates a Centaur system with the given configuration.
    pub fn new(config: CentaurConfig) -> Self {
        CentaurSystem {
            config,
            streamer: EbStreamer::new(config.link),
            dense: DenseAccelerator::harpv2(),
        }
    }

    /// The paper's proof-of-concept prototype on Intel HARPv2.
    pub fn harpv2() -> Self {
        CentaurSystem::new(CentaurConfig::harpv2())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CentaurConfig {
        &self.config
    }

    /// The sparse accelerator complex.
    pub fn streamer(&self) -> &EbStreamer {
        &self.streamer
    }

    /// The dense accelerator complex.
    pub fn dense_accelerator(&self) -> &DenseAccelerator {
        &self.dense
    }

    /// Simulates one batched inference and returns its latency breakdown.
    pub fn simulate(&mut self, trace: &InferenceTrace) -> CentaurInferenceResult {
        let batch = trace.batch_size();

        // Sparse stage: index fetch + embedding gathers/reductions.
        let sparse = self.streamer.execute_timing(trace);

        // Dense-feature fetch (DNF): the bottom-MLP inputs for the batch.
        let dense_feature_ns = self.config.link.bulk_transfer_ns(trace.dense_bytes());

        // Dense stage: bottom MLP, interaction, top MLP, sigmoid.
        let dense = self.dense.execute_timing(&trace.config, batch);

        // Result write-back + host overhead.
        let writeback_ns = self.config.link.bulk_transfer_ns(4 * batch.max(1) as u64);
        let other_ns = self.config.host_overhead_ns + writeback_ns;

        CentaurInferenceResult {
            batch,
            breakdown: CentaurBreakdown {
                index_fetch_ns: sparse.index_fetch_ns,
                embedding_ns: sparse.gather_reduce_ns,
                dense_feature_ns,
                mlp_ns: dense.total_ns(),
                other_ns,
            },
            sparse,
            dense,
        }
    }
}

impl Default for CentaurSystem {
    fn default() -> Self {
        CentaurSystem::harpv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_cpusim::CpuSystem;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    fn simulate(model: PaperModel, batch: usize) -> CentaurInferenceResult {
        let config = model.config();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 21);
        let trace = generator.inference_trace(batch);
        CentaurSystem::harpv2().simulate(&trace)
    }

    fn cpu_total(model: PaperModel, batch: usize) -> f64 {
        let config = model.config();
        let mut warm = RequestGenerator::new(&config, IndexDistribution::Uniform, 99);
        let mut gen = RequestGenerator::new(&config, IndexDistribution::Uniform, 21);
        let mut cpu = CpuSystem::broadwell();
        cpu.simulate_warm(&warm.inference_trace(batch), &gen.inference_trace(batch))
            .total_ns()
    }

    #[test]
    fn breakdown_components_positive_and_sum() {
        let r = simulate(PaperModel::Dlrm1, 16);
        assert!(r.breakdown.index_fetch_ns > 0.0);
        assert!(r.breakdown.embedding_ns > 0.0);
        assert!(r.breakdown.dense_feature_ns > 0.0);
        assert!(r.breakdown.mlp_ns > 0.0);
        assert!(r.breakdown.other_ns > 0.0);
        assert!((r.total_ns() - r.breakdown.total_ns()).abs() < 1e-9);
        assert!(r.throughput_qps() > 0.0);
    }

    #[test]
    fn centaur_is_faster_than_cpu_only_at_small_and_medium_batch() {
        for model in [PaperModel::Dlrm1, PaperModel::Dlrm3, PaperModel::Dlrm6] {
            for batch in [1usize, 16] {
                let centaur = simulate(model, batch);
                let cpu = cpu_total(model, batch);
                let speedup = centaur.speedup_over(cpu);
                assert!(
                    speedup > 1.2,
                    "{model} batch {batch}: speedup {speedup:.2} should exceed 1.2"
                );
            }
        }
        // The lookup-heaviest models see their largest wins at batch 1.
        for model in [PaperModel::Dlrm2, PaperModel::Dlrm4, PaperModel::Dlrm5] {
            let centaur = simulate(model, 1);
            let cpu = cpu_total(model, 1);
            let speedup = centaur.speedup_over(cpu);
            assert!(
                speedup > 3.0,
                "{model} batch 1: speedup {speedup:.2} should exceed 3.0"
            );
        }
    }

    #[test]
    fn speedup_is_largest_at_small_batch_for_embedding_bound_models() {
        let s1 = simulate(PaperModel::Dlrm4, 1).speedup_over(cpu_total(PaperModel::Dlrm4, 1));
        let s128 = simulate(PaperModel::Dlrm4, 128).speedup_over(cpu_total(PaperModel::Dlrm4, 128));
        assert!(
            s1 > s128,
            "speedup should shrink with batch: {s1:.2} vs {s128:.2}"
        );
    }

    #[test]
    fn speedups_fall_in_paper_range() {
        // The paper reports 1.7–17.2x end-to-end. Our simulated substrate
        // reproduces the same order of magnitude; the one known deviation
        // (documented in EXPERIMENTS.md) is that the lookup-heaviest models
        // at batch 128 dip slightly below 1x because the paper's own
        // measured EB-Streamer bandwidth (11.9 GB/s) is below the CPU's
        // large-batch gather bandwidth there.
        let mut speedups = Vec::new();
        for model in PaperModel::all() {
            for batch in [1usize, 16, 128] {
                let centaur = simulate(model, batch);
                let cpu = cpu_total(model, batch);
                speedups.push(centaur.speedup_over(cpu));
            }
        }
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        assert!(min > 0.55, "worst-case speedup {min:.2}");
        assert!(max < 40.0, "best-case speedup {max:.2}");
        assert!(
            max > 5.0,
            "best-case speedup {max:.2} should be substantial"
        );
        // The majority of the (model, batch) grid must favour Centaur.
        let wins = speedups.iter().filter(|&&s| s > 1.0).count();
        assert!(
            wins * 3 >= speedups.len() * 2,
            "{wins}/{} wins",
            speedups.len()
        );
    }

    #[test]
    fn embedding_dominates_centaur_time_for_lookup_heavy_models() {
        let r = simulate(PaperModel::Dlrm4, 64);
        assert!(r.breakdown.embedding_fraction() > 0.5);
        assert!(r.breakdown.mlp_fraction() < 0.4);
    }

    #[test]
    fn mlp_heavy_model_shifts_time_to_dense_stage() {
        let light = simulate(PaperModel::Dlrm1, 16);
        let heavy = simulate(PaperModel::Dlrm6, 16);
        assert!(heavy.breakdown.mlp_fraction() > light.breakdown.mlp_fraction());
    }

    #[test]
    fn future_chiplet_link_improves_embedding_time() {
        let config = PaperModel::Dlrm4.config();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 3);
        let trace = generator.inference_trace(64);
        let harp = CentaurSystem::harpv2().simulate(&trace);
        let future = CentaurSystem::new(CentaurConfig::future_chiplet(400.0)).simulate(&trace);
        // The wider link roughly halves the gather time; beyond that the
        // EB-RU's 25.6 GB/s reduction throughput becomes the next bottleneck
        // (the co-design point Section VII discusses).
        assert!(future.breakdown.embedding_ns < harp.breakdown.embedding_ns * 0.55);
        assert!(future.total_ns() < harp.total_ns());
    }

    #[test]
    fn effective_throughput_reported() {
        let r = simulate(PaperModel::Dlrm4, 128);
        let gbs = r.effective_embedding_throughput().gigabytes_per_second();
        assert!(gbs > 8.0 && gbs < 14.0, "{gbs:.1} GB/s");
    }
}
