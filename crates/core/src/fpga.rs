//! FPGA device and resource-utilization model (Tables II and III of the
//! paper): ALMs, block-memory bits, RAM blocks, DSPs and PLLs of the Altera
//! Arria 10 GX1150, and how the Centaur design's modules consume them.

use serde::{Deserialize, Serialize};

/// A bundle of FPGA resources (capacities or usages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FpgaResources {
    /// Adaptive logic modules (combinational logic + registers).
    pub alms: u64,
    /// Block-memory bits.
    pub block_mem_bits: u64,
    /// RAM blocks (M20K instances).
    pub ram_blocks: u64,
    /// DSP blocks (hardened floating-point/MAC units).
    pub dsps: u64,
    /// Phase-locked loops.
    pub plls: u64,
}

impl FpgaResources {
    /// The Altera Arria 10 GX1150 device capacity (Table II, "Max" row).
    pub fn arria10_gx1150() -> Self {
        FpgaResources {
            alms: 427_200,
            block_mem_bits: 55_500_000,
            ram_blocks: 2_713,
            dsps: 1_518,
            plls: 176,
        }
    }

    /// The Centaur design's total utilization on that device (Table II,
    /// "Centaur" row).
    pub fn centaur_total() -> Self {
        FpgaResources {
            alms: 127_719,
            block_mem_bits: 23_700_000,
            ram_blocks: 2_238,
            dsps: 784,
            plls: 48,
        }
    }

    /// Element-wise sum of two resource bundles.
    pub fn plus(&self, other: &FpgaResources) -> FpgaResources {
        FpgaResources {
            alms: self.alms + other.alms,
            block_mem_bits: self.block_mem_bits + other.block_mem_bits,
            ram_blocks: self.ram_blocks + other.ram_blocks,
            dsps: self.dsps + other.dsps,
            plls: self.plls + other.plls,
        }
    }

    /// Returns `true` when every resource fits within `capacity`.
    pub fn fits_within(&self, capacity: &FpgaResources) -> bool {
        self.alms <= capacity.alms
            && self.block_mem_bits <= capacity.block_mem_bits
            && self.ram_blocks <= capacity.ram_blocks
            && self.dsps <= capacity.dsps
            && self.plls <= capacity.plls
    }

    /// Utilization of each resource as a fraction of `capacity`
    /// `(alm, block-mem, ram-blocks, dsp, pll)`.
    pub fn utilization(&self, capacity: &FpgaResources) -> ResourceUtilization {
        let frac = |used: u64, max: u64| {
            if max == 0 {
                0.0
            } else {
                used as f64 / max as f64
            }
        };
        ResourceUtilization {
            alms: frac(self.alms, capacity.alms),
            block_mem_bits: frac(self.block_mem_bits, capacity.block_mem_bits),
            ram_blocks: frac(self.ram_blocks, capacity.ram_blocks),
            dsps: frac(self.dsps, capacity.dsps),
            plls: frac(self.plls, capacity.plls),
        }
    }
}

/// Per-resource utilization fractions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUtilization {
    /// ALM utilization (0–1).
    pub alms: f64,
    /// Block-memory-bit utilization (0–1).
    pub block_mem_bits: f64,
    /// RAM-block utilization (0–1).
    pub ram_blocks: f64,
    /// DSP utilization (0–1).
    pub dsps: f64,
    /// PLL utilization (0–1).
    pub plls: f64,
}

/// Which half of the hybrid accelerator a module belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComplexKind {
    /// The sparse accelerator complex (EB-Streamer).
    Sparse,
    /// The dense accelerator complex (GEMM engines).
    Dense,
    /// Platform glue (link interfaces, control, clocking).
    Other,
}

/// Resource usage of one sub-module (one row of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModuleUsage {
    /// Module name as used in Table III.
    pub name: &'static str,
    /// Which complex it belongs to.
    pub complex: ComplexKind,
    /// Combinational-logic cells used.
    pub lc_comb: u64,
    /// Logic-cell registers used.
    pub lc_reg: u64,
    /// Block-memory bits used.
    pub block_mem_bits: u64,
    /// DSP blocks used.
    pub dsps: u64,
}

/// The full Centaur design as a list of sub-modules (Table III).
pub fn centaur_modules() -> Vec<ModuleUsage> {
    use ComplexKind::*;
    vec![
        ModuleUsage {
            name: "Base ptr reg.",
            complex: Sparse,
            lc_comb: 98,
            lc_reg: 211,
            block_mem_bits: 0,
            dsps: 0,
        },
        ModuleUsage {
            name: "Gather unit",
            complex: Sparse,
            lc_comb: 295,
            lc_reg: 216,
            block_mem_bits: 0,
            dsps: 0,
        },
        ModuleUsage {
            name: "Reduction unit",
            complex: Sparse,
            lc_comb: 108,
            lc_reg: 8_260,
            block_mem_bits: 0,
            dsps: 96,
        },
        ModuleUsage {
            name: "Sparse SRAM arrays",
            complex: Sparse,
            lc_comb: 350,
            lc_reg: 98,
            block_mem_bits: 12_200_000,
            dsps: 0,
        },
        ModuleUsage {
            name: "MLP unit",
            complex: Dense,
            lc_comb: 40_000,
            lc_reg: 131_000,
            block_mem_bits: 2_300_000,
            dsps: 512,
        },
        ModuleUsage {
            name: "Feat. int. unit",
            complex: Dense,
            lc_comb: 10_000,
            lc_reg: 33_000,
            block_mem_bits: 593_000,
            dsps: 128,
        },
        ModuleUsage {
            name: "Dense SRAM arrays",
            complex: Dense,
            lc_comb: 1_000,
            lc_reg: 11_000,
            block_mem_bits: 1_600_000,
            dsps: 48,
        },
        ModuleUsage {
            name: "Weights",
            complex: Dense,
            lc_comb: 13,
            lc_reg: 77,
            block_mem_bits: 5_200_000,
            dsps: 0,
        },
        ModuleUsage {
            name: "Misc.",
            complex: Other,
            lc_comb: 587,
            lc_reg: 6_000,
            block_mem_bits: 608_000,
            dsps: 0,
        },
    ]
}

/// Aggregated view over [`centaur_modules`] used to regenerate Tables II
/// and III.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResourceReport {
    /// Per-module usages.
    pub modules: Vec<ModuleUsage>,
    /// Device capacity.
    pub capacity: FpgaResources,
    /// Total design usage (Table II).
    pub total: FpgaResources,
}

impl ResourceReport {
    /// Builds the report for the paper's design on the Arria 10.
    pub fn harpv2_centaur() -> Self {
        ResourceReport {
            modules: centaur_modules(),
            capacity: FpgaResources::arria10_gx1150(),
            total: FpgaResources::centaur_total(),
        }
    }

    /// Sum of per-module DSP usage for one complex.
    pub fn dsps_of(&self, complex: ComplexKind) -> u64 {
        self.modules
            .iter()
            .filter(|m| m.complex == complex)
            .map(|m| m.dsps)
            .sum()
    }

    /// Sum of per-module block-memory bits for one complex.
    pub fn block_mem_of(&self, complex: ComplexKind) -> u64 {
        self.modules
            .iter()
            .filter(|m| m.complex == complex)
            .map(|m| m.block_mem_bits)
            .sum()
    }

    /// Sum of per-module combinational logic for one complex.
    pub fn lc_comb_of(&self, complex: ComplexKind) -> u64 {
        self.modules
            .iter()
            .filter(|m| m.complex == complex)
            .map(|m| m.lc_comb)
            .sum()
    }

    /// Whole-design utilization fractions (the percentages of Table II).
    pub fn utilization(&self) -> ResourceUtilization {
        self.total.utilization(&self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centaur_fits_on_arria10() {
        let total = FpgaResources::centaur_total();
        let device = FpgaResources::arria10_gx1150();
        assert!(total.fits_within(&device));
        assert!(!device.fits_within(&total));
    }

    #[test]
    fn table2_utilization_percentages() {
        let report = ResourceReport::harpv2_centaur();
        let u = report.utilization();
        assert!(
            (u.alms * 100.0 - 29.9).abs() < 0.2,
            "ALM {:.1}%",
            u.alms * 100.0
        );
        assert!((u.block_mem_bits * 100.0 - 42.7).abs() < 0.5);
        assert!((u.ram_blocks * 100.0 - 82.5).abs() < 0.5);
        assert!((u.dsps * 100.0 - 51.6).abs() < 0.5);
        assert!((u.plls * 100.0 - 27.3).abs() < 0.5);
    }

    #[test]
    fn sparse_complex_is_memory_heavy_and_logic_light() {
        // Table III's qualitative claim: the sparse complex is dominated by
        // the index SRAM (over half the design's block memory goes to
        // sparse) while using a small share of logic and DSPs.
        let report = ResourceReport::harpv2_centaur();
        let sparse_mem = report.block_mem_of(ComplexKind::Sparse);
        let dense_mem = report.block_mem_of(ComplexKind::Dense);
        assert!(sparse_mem > dense_mem);
        assert!(
            report.lc_comb_of(ComplexKind::Sparse) < report.lc_comb_of(ComplexKind::Dense) / 10
        );
        assert!(report.dsps_of(ComplexKind::Sparse) < report.dsps_of(ComplexKind::Dense) / 4);
    }

    #[test]
    fn dense_complex_uses_most_dsps() {
        let report = ResourceReport::harpv2_centaur();
        let dense = report.dsps_of(ComplexKind::Dense);
        let total: u64 = report.modules.iter().map(|m| m.dsps).sum();
        assert!(dense as f64 / total as f64 > 0.85);
    }

    #[test]
    fn plus_and_utilization_handle_zero_capacity() {
        let a = FpgaResources {
            alms: 1,
            block_mem_bits: 2,
            ram_blocks: 3,
            dsps: 4,
            plls: 5,
        };
        let sum = a.plus(&a);
        assert_eq!(sum.dsps, 8);
        let zero = FpgaResources::default();
        let u = a.utilization(&zero);
        assert_eq!(u.alms, 0.0);
    }

    #[test]
    fn module_table_matches_table3_totals_approximately() {
        let report = ResourceReport::harpv2_centaur();
        let sparse_total_mem = report.block_mem_of(ComplexKind::Sparse);
        assert!((sparse_total_mem as f64 - 12.2e6).abs() / 12.2e6 < 0.05);
        let dense_total_mem = report.block_mem_of(ComplexKind::Dense);
        assert!((dense_total_mem as f64 - 9.7e6).abs() / 9.7e6 < 0.05);
        assert_eq!(report.dsps_of(ComplexKind::Sparse), 96);
        assert_eq!(report.dsps_of(ComplexKind::Dense), 688);
    }
}
