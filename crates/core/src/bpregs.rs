//! Base-pointer register set (`BPregs`) and the MMIO interface the host
//! uses to initialise it at boot time (Section IV-C/IV-E).
//!
//! Under the package-integrated platform's "pointer-is-a-pointer" semantics
//! the host simply writes the virtual addresses of the sparse index array,
//! the embedding tables, the MLP weights and the dense features into these
//! registers; the FPGA-side IOMMU translates them on access.

use crate::error::CentaurError;
use serde::{Deserialize, Serialize};

/// Which base pointer an MMIO write targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BasePointer {
    /// The sparse index array (row IDs to gather).
    SparseIndexArray,
    /// The base address of embedding table `t`.
    EmbeddingTable(usize),
    /// The MLP weight region.
    MlpWeights,
    /// The dense-feature (bottom-MLP input) region.
    DenseFeatures,
    /// Where the final event probabilities are written back.
    Output,
}

/// The base-pointer register file of the sparse accelerator complex.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BasePointerRegs {
    sparse_index_array: Option<u64>,
    embedding_tables: Vec<Option<u64>>,
    mlp_weights: Option<u64>,
    dense_features: Option<u64>,
    output: Option<u64>,
    mmio_writes: u64,
}

impl BasePointerRegs {
    /// Creates a register file sized for `num_tables` embedding tables.
    pub fn new(num_tables: usize) -> Self {
        BasePointerRegs {
            embedding_tables: vec![None; num_tables],
            ..Default::default()
        }
    }

    /// Number of embedding-table base registers.
    pub fn num_tables(&self) -> usize {
        self.embedding_tables.len()
    }

    /// Number of MMIO writes performed by the host so far.
    pub fn mmio_writes(&self) -> u64 {
        self.mmio_writes
    }

    /// Host-side MMIO write of a base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::InvalidConfig`] when an embedding-table index
    /// is out of range.
    pub fn mmio_write(&mut self, target: BasePointer, addr: u64) -> Result<(), CentaurError> {
        self.mmio_writes += 1;
        match target {
            BasePointer::SparseIndexArray => self.sparse_index_array = Some(addr),
            BasePointer::EmbeddingTable(t) => {
                let num_tables = self.embedding_tables.len();
                let slot = self.embedding_tables.get_mut(t).ok_or_else(|| {
                    CentaurError::InvalidConfig(format!(
                        "embedding table register {t} out of range ({num_tables})"
                    ))
                })?;
                *slot = Some(addr);
            }
            BasePointer::MlpWeights => self.mlp_weights = Some(addr),
            BasePointer::DenseFeatures => self.dense_features = Some(addr),
            BasePointer::Output => self.output = Some(addr),
        }
        Ok(())
    }

    /// Reads the sparse-index-array base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when the host has not
    /// written it yet.
    pub fn sparse_index_array(&self) -> Result<u64, CentaurError> {
        self.sparse_index_array
            .ok_or(CentaurError::NotInitialised("sparse index array pointer"))
    }

    /// Reads embedding table `t`'s base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when the host has not
    /// written it yet (or the index is out of range).
    pub fn embedding_table(&self, t: usize) -> Result<u64, CentaurError> {
        self.embedding_tables
            .get(t)
            .copied()
            .flatten()
            .ok_or(CentaurError::NotInitialised("embedding table pointer"))
    }

    /// Reads the MLP-weight base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when the host has not
    /// written it yet.
    pub fn mlp_weights(&self) -> Result<u64, CentaurError> {
        self.mlp_weights
            .ok_or(CentaurError::NotInitialised("MLP weight pointer"))
    }

    /// Reads the dense-feature base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when the host has not
    /// written it yet.
    pub fn dense_features(&self) -> Result<u64, CentaurError> {
        self.dense_features
            .ok_or(CentaurError::NotInitialised("dense feature pointer"))
    }

    /// Reads the output base pointer.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when the host has not
    /// written it yet.
    pub fn output(&self) -> Result<u64, CentaurError> {
        self.output
            .ok_or(CentaurError::NotInitialised("output pointer"))
    }

    /// Returns `true` once every pointer needed for inference is set.
    pub fn is_fully_initialised(&self) -> bool {
        self.sparse_index_array.is_some()
            && self.mlp_weights.is_some()
            && self.dense_features.is_some()
            && self.output.is_some()
            && self.embedding_tables.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninitialised_reads_error() {
        let regs = BasePointerRegs::new(2);
        assert!(matches!(
            regs.sparse_index_array(),
            Err(CentaurError::NotInitialised(_))
        ));
        assert!(regs.embedding_table(0).is_err());
        assert!(regs.mlp_weights().is_err());
        assert!(!regs.is_fully_initialised());
    }

    #[test]
    fn mmio_writes_then_reads_back() {
        let mut regs = BasePointerRegs::new(3);
        regs.mmio_write(BasePointer::SparseIndexArray, 0x1000)
            .unwrap();
        regs.mmio_write(BasePointer::EmbeddingTable(0), 0x2000)
            .unwrap();
        regs.mmio_write(BasePointer::EmbeddingTable(1), 0x3000)
            .unwrap();
        regs.mmio_write(BasePointer::EmbeddingTable(2), 0x4000)
            .unwrap();
        regs.mmio_write(BasePointer::MlpWeights, 0x5000).unwrap();
        regs.mmio_write(BasePointer::DenseFeatures, 0x6000).unwrap();
        regs.mmio_write(BasePointer::Output, 0x7000).unwrap();

        assert_eq!(regs.sparse_index_array().unwrap(), 0x1000);
        assert_eq!(regs.embedding_table(1).unwrap(), 0x3000);
        assert_eq!(regs.mlp_weights().unwrap(), 0x5000);
        assert_eq!(regs.dense_features().unwrap(), 0x6000);
        assert_eq!(regs.output().unwrap(), 0x7000);
        assert!(regs.is_fully_initialised());
        assert_eq!(regs.mmio_writes(), 7);
        assert_eq!(regs.num_tables(), 3);
    }

    #[test]
    fn out_of_range_table_register_rejected() {
        let mut regs = BasePointerRegs::new(1);
        assert!(regs
            .mmio_write(BasePointer::EmbeddingTable(5), 0x0)
            .is_err());
    }

    #[test]
    fn partially_initialised_is_not_ready() {
        let mut regs = BasePointerRegs::new(1);
        regs.mmio_write(BasePointer::SparseIndexArray, 1).unwrap();
        regs.mmio_write(BasePointer::MlpWeights, 2).unwrap();
        regs.mmio_write(BasePointer::DenseFeatures, 3).unwrap();
        regs.mmio_write(BasePointer::Output, 4).unwrap();
        assert!(!regs.is_fully_initialised(), "table pointer still missing");
        regs.mmio_write(BasePointer::EmbeddingTable(0), 5).unwrap();
        assert!(regs.is_fully_initialised());
    }
}
