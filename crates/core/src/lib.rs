//! # centaur
//!
//! A reproduction of **Centaur: A Chiplet-based, Hybrid Sparse-Dense
//! Accelerator for Personalized Recommendations** (Hwang, Kim, Kwon and Rhu,
//! ISCA 2020) as a Rust library.
//!
//! The original work prototypes the accelerator on an Intel HARPv2
//! package-integrated CPU+FPGA. This crate models that hardware:
//!
//! * [`chiplet`] — the CPU↔FPGA coherent-link fabric (2×PCIe + UPI,
//!   28.8 GB/s theoretical) plus a forward-looking cache-bypassing chiplet
//!   link;
//! * [`bpregs`] — the base-pointer register file the host initialises over
//!   MMIO ("pointer-is-a-pointer" semantics);
//! * [`sparse`] — the EB-Streamer sparse accelerator: sparse-index SRAM,
//!   embedding gather unit and embedding reduction unit;
//! * [`dense`] — the dense accelerator: a 4×4 array of 32×32 FP GEMM
//!   processing engines with an output-stationary dataflow, the
//!   feature-interaction unit, the sigmoid unit and on-chip SRAM buffers;
//! * [`fpga`] — the Arria-10 resource model reproducing Tables II and III;
//! * [`accelerator`] — the assembled timing model producing Figure 14's
//!   IDX/EMB/DNF/MLP/Other breakdown;
//! * [`runtime`] — the host-side software interface driving *functional*
//!   inference through the same datapath, bit-for-bit comparable to the
//!   reference DLRM in `centaur-dlrm`.
//!
//! ## Quick example
//!
//! ```
//! use centaur::CentaurSystem;
//! use centaur_dlrm::PaperModel;
//! use centaur_workload::{IndexDistribution, RequestGenerator};
//!
//! let model = PaperModel::Dlrm1.config();
//! let mut generator = RequestGenerator::new(&model, IndexDistribution::Uniform, 7);
//! let trace = generator.inference_trace(16);
//!
//! let mut centaur = CentaurSystem::harpv2();
//! let result = centaur.simulate(&trace);
//! println!(
//!     "Centaur latency: {:.1} us ({:.1} GB/s effective gather throughput)",
//!     result.total_ns() / 1000.0,
//!     result.effective_embedding_throughput().gigabytes_per_second()
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod bpregs;
pub mod chiplet;
pub mod dense;
pub mod error;
pub mod fpga;
pub mod runtime;
pub mod sparse;

pub use accelerator::{CentaurBreakdown, CentaurConfig, CentaurInferenceResult, CentaurSystem};
pub use bpregs::{BasePointer, BasePointerRegs};
pub use chiplet::{ChipletLinkConfig, LinkPath, LinkTraffic};
pub use dense::{DenseAccelerator, DenseStageTiming, MlpUnit, ProcessingEngine};
pub use error::CentaurError;
pub use fpga::{FpgaResources, ResourceReport, ResourceUtilization};
pub use runtime::{CentaurRuntime, BATCH_WAVE_SAMPLES};
pub use sparse::{EbStreamer, HotRowCache, SparseStageTiming};
