//! The EB-Streamer's hot-row cache model: an SRAM-budgeted,
//! frequency-guarded map of which embedding rows are resident on chip.
//!
//! The paper's characterization assumes embedding gathers have almost no
//! locality, but production recommendation traffic is heavily skewed —
//! RecNMP and MicroRec both show that caching the hot entries of a Zipfian
//! popularity curve is where real gather throughput comes from. This module
//! models that on-chip reuse: a direct-mapped cache of full embedding rows,
//! sized against the same block-RAM budget Table III gives the sparse
//! complex. A gather that hits never crosses the CPU-memory link, so the
//! timing model charges link transfers only for *cold* rows — on skewed
//! traffic the effective gather throughput rises above the raw link
//! bandwidth, exactly the win the paper's block RAM buys.
//!
//! **Why the functional path does not copy row data.** On the FPGA the
//! cache physically serves hits out of block RAM. In this functional
//! simulator the row values are identical wherever they are read from, and
//! the host CPU's own cache hierarchy already holds the hot rows — an
//! explicit software row store was measured strictly slower than the pure
//! register-tiled gather kernel at *every* hit rate (all it adds on a CPU
//! is per-row probe overhead). So the functional engine always gathers
//! from the table with [`centaur_dlrm::kernel::gather_rows_sum`], and the
//! cache is a **tag model**: it observes a deterministic 1-in-N sample of
//! the index stream to estimate hit rates cheaply, while the timing path
//! replays full traces through the same tag machinery for exact hit/miss
//! accounting.
//!
//! Replacement is frequency-guarded (CLOCK-like): a hit bumps the slot's
//! frequency, a conflicting miss decays it, and the resident row is only
//! evicted once its frequency reaches zero — so a hot row survives bursts
//! of conflicting cold traffic. Everything is deterministic given the
//! access sequence.

use crate::sparse::index_sram::SparseIndexSram;

/// Frequency ceiling per slot (saturating).
const FREQ_MAX: u8 = 15;
/// The functional path set-samples the tag model: only accesses whose home
/// slot falls in the first `1 / 2^OBSERVE_SET_SHIFT` of the full cache
/// geometry are probed. Set sampling (not access sampling) is the textbook
/// way to estimate cache behaviour cheaply *without bias*: every sampled
/// set still feels the full conflict pressure of its own traffic, whereas
/// probing a thinned access stream would understate capacity pressure and
/// inflate hit rates. The timing path replays traces unsampled.
const OBSERVE_SET_SHIFT: u32 = 3;

/// Outcome of one tag access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The row is resident in `slot`.
    Hit(usize),
    /// The row missed and was admitted into `slot`.
    MissInsert(usize),
    /// The row missed and was not admitted (resident row still hot).
    MissBypass,
}

/// The tag/replacement state of a direct-mapped row cache.
#[derive(Debug, Clone, PartialEq)]
pub struct RowCacheTags {
    /// Power-of-two slot count.
    slots: usize,
    /// `key + 1` per slot; 0 marks an empty slot.
    tags: Vec<u64>,
    /// Per-slot frequency counter guarding replacement.
    freq: Vec<u8>,
    hits: u64,
    misses: u64,
}

impl RowCacheTags {
    /// Largest power of two ≤ `slots` (≥ 1) — the geometry every tag array
    /// and the set-sampling observer share.
    pub fn rounded_slots(slots: usize) -> usize {
        let slots = slots.max(1);
        if slots.is_power_of_two() {
            slots
        } else {
            slots.next_power_of_two() / 2
        }
    }

    /// Creates tags with `slots` rounded down to a power of two (≥ 1).
    pub fn with_slots(slots: usize) -> Self {
        let slots = Self::rounded_slots(slots);
        RowCacheTags {
            slots,
            tags: vec![0; slots],
            freq: vec![0; slots],
            hits: 0,
            misses: 0,
        }
    }

    /// Slot count (power of two).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Probed accesses that hit since construction/reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probed accesses that missed since construction/reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction over all probed accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears hit/miss counters (contents stay resident).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// The canonical cache key for a `(table, row)` pair.
    #[inline]
    pub fn key(table: u32, row: u64) -> u64 {
        ((table as u64) << 40) ^ (row & 0xFF_FFFF_FFFF)
    }

    /// Fibonacci-hashed home slot for `key` in a power-of-two geometry of
    /// `slots` — shared by the in-array lookup and the set-sampling
    /// observer (which hashes against the *full* modelled geometry).
    #[inline]
    pub fn home_slot(key: u64, slots: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (slots - 1)
    }

    /// Home slot within this tag array.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        Self::home_slot(key, self.slots)
    }

    /// One probed access to `key`: looks the slot up, applies
    /// frequency-guarded replacement and updates the hit/miss counters.
    pub fn access(&mut self, key: u64) -> CacheAccess {
        let slot = self.slot_of(key);
        self.access_at(slot, key)
    }

    /// [`RowCacheTags::access`] with the home slot already computed — the
    /// set-sampling observer hashes against the *full* cache geometry and
    /// probes only the slots this (smaller) tag array covers.
    fn access_at(&mut self, slot: usize, key: u64) -> CacheAccess {
        if self.tags[slot] == key + 1 {
            self.freq[slot] = (self.freq[slot] + 1).min(FREQ_MAX);
            self.hits += 1;
            CacheAccess::Hit(slot)
        } else if self.tags[slot] == 0 || self.freq[slot] == 0 {
            self.tags[slot] = key + 1;
            self.freq[slot] = 1;
            self.misses += 1;
            CacheAccess::MissInsert(slot)
        } else {
            self.freq[slot] -= 1;
            self.misses += 1;
            CacheAccess::MissBypass
        }
    }
}

/// The EB-Streamer's hot-row cache model: budget, full cache geometry and
/// the set-sampled tag state for the functional path.
#[derive(Debug, Clone, PartialEq)]
pub struct HotRowCache {
    capacity_bytes: usize,
    /// Row width the tags are currently shaped for (0 until first use).
    dim: usize,
    /// Full cache geometry (power of two) the budget buys at `dim`.
    full_slots: usize,
    /// Tags for the sampled first `full_slots >> OBSERVE_SET_SHIFT` sets.
    tags: RowCacheTags,
}

impl HotRowCache {
    /// Creates a cache model with a block-RAM budget of `capacity_bytes`;
    /// the slot count is derived once the row width is known.
    pub fn new(capacity_bytes: usize) -> Self {
        HotRowCache {
            capacity_bytes,
            dim: 0,
            full_slots: 1,
            tags: RowCacheTags::with_slots(1),
        }
    }

    /// The paper's budget: the same ~12.2 Mbit of block RAM Table III
    /// dedicates to the sparse complex's index SRAM, repurposed as row
    /// storage (≈ 11.9 K 128-byte rows at the default 32-wide embeddings).
    pub fn harpv2_sized() -> Self {
        HotRowCache::new(SparseIndexSram::harpv2_sized().capacity_bytes())
    }

    /// The block-RAM budget in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Row slots of the full modelled cache at the current row width
    /// (0 before first use).
    pub fn slots(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.full_slots
        }
    }

    /// Slot count this budget yields for `row_bytes`-wide rows (shared with
    /// the timing model so trace-driven hit predictions use the same
    /// geometry as the functional observation).
    pub fn slots_for_row_bytes(&self, row_bytes: usize) -> usize {
        (self.capacity_bytes / row_bytes.max(1)).max(1)
    }

    /// Probed gathers that hit so far (the deterministic set-sampled
    /// subset of the stream).
    pub fn hits(&self) -> u64 {
        self.tags.hits()
    }

    /// Probed gathers that missed so far.
    pub fn misses(&self) -> u64 {
        self.tags.misses()
    }

    /// Estimated hit fraction of the gather stream (unbiased: the sampled
    /// sets experience exactly the conflict pressure the full cache's sets
    /// would, and row hashing spreads traffic evenly across sets).
    pub fn hit_rate(&self) -> f64 {
        self.tags.hit_rate()
    }

    /// Clears hit/miss counters (tag contents stay resident).
    pub fn reset_counters(&mut self) {
        self.tags.reset_counters();
    }

    /// (Re)shapes the tags for rows of width `dim`. Serving a bag with a
    /// different embedding width flushes the model — one streamer serves
    /// one model, so this happens at registration time, not per request.
    fn ensure_dim(&mut self, dim: usize) {
        if self.dim == dim {
            return;
        }
        self.dim = dim;
        self.full_slots =
            RowCacheTags::rounded_slots(self.slots_for_row_bytes(dim * std::mem::size_of::<f32>()));
        self.tags = RowCacheTags::with_slots((self.full_slots >> OBSERVE_SET_SHIFT).max(1));
    }

    /// Observes one chunk of the gather stream for table `table`, probing
    /// the accesses whose home slot (hashed against the **full** cache
    /// geometry) lands in the sampled sets. Called by the streamer
    /// alongside the vectorized gather kernel; the tag array it touches is
    /// small enough to stay L1-resident, so the cost is a hash and a
    /// compare on ~1/8 of the rows.
    pub fn observe_rows(&mut self, table: u32, dim: usize, indices: &[u32]) {
        if dim == 0 || indices.is_empty() {
            return;
        }
        self.ensure_dim(dim);
        let sampled = self.tags.slots();
        for &idx in indices {
            let key = RowCacheTags::key(table, idx as u64);
            let slot = RowCacheTags::home_slot(key, self.full_slots);
            if slot < sampled {
                self.tags.access_at(slot, key);
            }
        }
    }
}

impl Default for HotRowCache {
    fn default() -> Self {
        HotRowCache::harpv2_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_slots_down_to_power_of_two() {
        assert_eq!(RowCacheTags::with_slots(1).slots(), 1);
        assert_eq!(RowCacheTags::with_slots(2).slots(), 2);
        assert_eq!(RowCacheTags::with_slots(3).slots(), 2);
        assert_eq!(RowCacheTags::with_slots(8).slots(), 8);
        assert_eq!(RowCacheTags::with_slots(11_900).slots(), 8192);
    }

    #[test]
    fn repeated_key_hits_after_first_access() {
        let mut tags = RowCacheTags::with_slots(64);
        let key = RowCacheTags::key(3, 17);
        assert!(matches!(tags.access(key), CacheAccess::MissInsert(_)));
        for _ in 0..5 {
            assert!(matches!(tags.access(key), CacheAccess::Hit(_)));
        }
        assert_eq!(tags.hits(), 5);
        assert_eq!(tags.misses(), 1);
        assert!(tags.hit_rate() > 0.8);
    }

    #[test]
    fn hot_slot_survives_conflicting_cold_traffic() {
        let mut tags = RowCacheTags::with_slots(1); // everything conflicts
        let hot = RowCacheTags::key(0, 1);
        tags.access(hot);
        for _ in 0..10 {
            tags.access(hot); // frequency climbs
        }
        // A burst of cold keys decays but does not immediately evict.
        let mut evicted = false;
        for cold in 100..105u64 {
            if matches!(
                tags.access(RowCacheTags::key(0, cold)),
                CacheAccess::MissInsert(_)
            ) {
                evicted = true;
            }
        }
        assert!(!evicted, "hot row evicted by a short cold burst");
        assert!(matches!(tags.access(hot), CacheAccess::Hit(_)));
    }

    #[test]
    fn distinct_tables_use_distinct_keys() {
        assert_ne!(RowCacheTags::key(0, 5), RowCacheTags::key(1, 5));
        assert_ne!(RowCacheTags::key(2, 0), RowCacheTags::key(0, 2));
    }

    #[test]
    fn skewed_observation_reports_high_hit_rate() {
        let mut cache = HotRowCache::new(512 * 128);
        // 256 hot rows replayed heavily over a 512-slot cache: the ~32 of
        // them homed in the sampled sets must hit on nearly every probe
        // after warm-up.
        for round in 0..100u32 {
            let indices: Vec<u32> = (0..512).map(|i| (i * 7 + round) % 256).collect();
            cache.observe_rows(0, 32, &indices);
        }
        assert!(cache.hit_rate() > 0.8, "rate {}", cache.hit_rate());
        assert!(cache.hits() > 0);
    }

    #[test]
    fn uniform_observation_reports_low_hit_rate() {
        let mut cache = HotRowCache::new(64 * 128); // 16 slots at dim 32
        let mut next = 0u32;
        for _ in 0..200 {
            let indices: Vec<u32> = (0..64)
                .map(|_| {
                    next = next.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    next % 100_000
                })
                .collect();
            cache.observe_rows(0, 32, &indices);
        }
        assert!(cache.hit_rate() < 0.05, "rate {}", cache.hit_rate());
    }

    #[test]
    fn observation_probes_roughly_one_set_in_eight() {
        let mut cache = HotRowCache::new(1024 * 128);
        let indices: Vec<u32> = (0..1024).collect();
        cache.observe_rows(0, 32, &indices);
        let probed = cache.hits() + cache.misses();
        // 1024 distinct keys spread over 1024 slots; the 128 sampled sets
        // should see ~1/8 of them (hash variance allowed).
        assert!((64..=192).contains(&probed), "probed {probed}");
    }

    #[test]
    fn tags_reshape_on_dim_change() {
        let mut cache = HotRowCache::new(1024);
        cache.observe_rows(0, 8, &[1; 16]);
        assert_eq!(cache.slots(), 32);
        cache.observe_rows(0, 4, &[1; 16]);
        assert_eq!(cache.slots(), 64);
    }

    #[test]
    fn harpv2_budget_matches_index_sram() {
        let cache = HotRowCache::harpv2_sized();
        assert_eq!(
            cache.capacity_bytes(),
            SparseIndexSram::harpv2_sized().capacity_bytes()
        );
        // ~11.9K 128-byte rows, 8192 usable direct-mapped slots.
        assert_eq!(cache.slots_for_row_bytes(128), 11_914);
    }
}
