//! The embedding reduction unit (EB-RU): a row of scalar ALUs that reduce
//! gathered embedding vectors on the fly as they stream in from the link
//! (Figure 10).

use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::ReductionOp;
use serde::{Deserialize, Serialize};

/// The EB-RU: `num_alus` scalar adders running at the FPGA clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingReductionUnit {
    num_alus: usize,
    clock_mhz: f64,
    vectors_reduced: u64,
}

impl EmbeddingReductionUnit {
    /// Creates a reduction unit with `num_alus` scalar ALUs at `clock_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(num_alus: usize, clock_mhz: f64) -> Self {
        assert!(
            num_alus > 0 && clock_mhz > 0.0,
            "EB-RU needs ALUs and a clock"
        );
        EmbeddingReductionUnit {
            num_alus,
            clock_mhz,
            vectors_reduced: 0,
        }
    }

    /// The paper's configuration: one ALU per embedding element of a
    /// 32-wide vector, clocked at 200 MHz.
    pub fn harpv2_sized() -> Self {
        EmbeddingReductionUnit::new(32, 200.0)
    }

    /// Number of scalar ALUs.
    pub fn num_alus(&self) -> usize {
        self.num_alus
    }

    /// Vectors reduced so far.
    pub fn vectors_reduced(&self) -> u64 {
        self.vectors_reduced
    }

    /// Reduces a stream of gathered embedding vectors (rows of `gathered`)
    /// into a single vector, in place-accumulation order exactly as the
    /// vectors arrive.
    ///
    /// # Panics
    ///
    /// Panics if `gathered` is empty when `op` is [`ReductionOp::Max`]
    /// (sum/mean of an empty stream is the zero vector).
    pub fn reduce(&mut self, gathered: &Matrix, op: ReductionOp) -> Matrix {
        let dim = gathered.cols();
        let mut acc = vec![0.0f32; dim];
        match op {
            ReductionOp::Sum | ReductionOp::Mean => {
                for row in gathered.iter_rows() {
                    self.vectors_reduced += 1;
                    for (a, &v) in acc.iter_mut().zip(row) {
                        *a += v;
                    }
                }
                if op == ReductionOp::Mean && gathered.rows() > 0 {
                    let n = gathered.rows() as f32;
                    for a in &mut acc {
                        *a /= n;
                    }
                }
            }
            ReductionOp::Max => {
                assert!(gathered.rows() > 0, "max-reduction of an empty stream");
                acc.copy_from_slice(gathered.row(0));
                self.vectors_reduced += 1;
                for row in (1..gathered.rows()).map(|r| gathered.row(r)) {
                    self.vectors_reduced += 1;
                    for (a, &v) in acc.iter_mut().zip(row) {
                        if v > *a {
                            *a = v;
                        }
                    }
                }
            }
        }
        Matrix::from_vec(1, dim, acc).expect("accumulator has the right length")
    }

    /// Streams one gathered embedding vector into an accumulator (the
    /// on-the-fly reduction the EB-RU performs as rows arrive off the
    /// link), using the chunked SIMD-friendly add from the kernel layer.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn accumulate(&mut self, acc: &mut [f32], row: &[f32]) {
        self.vectors_reduced += 1;
        centaur_dlrm::kernel::add_assign(acc, row);
    }

    /// Records `vectors` reductions executed outside the per-row
    /// [`EmbeddingReductionUnit::accumulate`] entry point — the vectorized
    /// streamer path runs whole index chunks through the register-tiled
    /// kernels and bulk-updates the EB-RU's occupancy counter afterwards,
    /// keeping `vectors_reduced` equal across backends.
    pub fn record_reductions(&mut self, vectors: u64) {
        self.vectors_reduced += vectors;
    }

    /// Peak reduction throughput in elements per nanosecond.
    pub fn elements_per_ns(&self) -> f64 {
        self.num_alus as f64 * self.clock_mhz / 1000.0
    }

    /// Time to reduce `vectors` embedding vectors of width `dim`, in ns.
    pub fn reduction_time_ns(&self, vectors: u64, dim: usize) -> f64 {
        (vectors * dim as u64) as f64 / self.elements_per_ns()
    }

    /// Peak reduction bandwidth in GB/s of incoming embedding data —
    /// used to verify the EB-RU is never the streamer's bottleneck.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.elements_per_ns() * 4.0
    }
}

impl Default for EmbeddingReductionUnit {
    fn default() -> Self {
        EmbeddingReductionUnit::harpv2_sized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::EmbeddingTable;

    #[test]
    fn reduce_matches_reference_sparse_lengths_sum() {
        let table = EmbeddingTable::from_fn(16, 8, |r, c| (r * 8 + c) as f32 * 0.5);
        let indices = [3u32, 7, 11];
        let gathered = table.gather(&indices).unwrap();
        let mut ru = EmbeddingReductionUnit::harpv2_sized();
        let ours = ru.reduce(&gathered, ReductionOp::Sum);
        let reference = table.gather_reduce(&indices, ReductionOp::Sum).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-6);
        assert_eq!(ru.vectors_reduced(), 3);
    }

    #[test]
    fn reduce_mean_and_max() {
        let table = EmbeddingTable::from_fn(4, 4, |r, _| r as f32);
        let gathered = table.gather(&[0, 2]).unwrap();
        let mut ru = EmbeddingReductionUnit::harpv2_sized();
        let mean = ru.reduce(&gathered, ReductionOp::Mean);
        assert!((mean.get(0, 0) - 1.0).abs() < 1e-6);
        let max = ru.reduce(&gathered, ReductionOp::Max);
        assert!((max.get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_sum_is_zero_vector() {
        let mut ru = EmbeddingReductionUnit::harpv2_sized();
        let empty = Matrix::zeros(0, 8);
        let out = ru.reduce(&empty, ReductionOp::Sum);
        assert_eq!(out.shape(), (1, 8));
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reduction_is_never_the_link_bottleneck() {
        // 32 ALUs at 200 MHz consume 25.6 GB/s of embedding data — more than
        // the HARPv2 link can deliver (~12 GB/s for gathers).
        let ru = EmbeddingReductionUnit::harpv2_sized();
        assert!(ru.peak_bandwidth_gbs() > 20.0);
        let link_limited_ns = (1_000_000u64 * 128) as f64 / 12.0;
        assert!(ru.reduction_time_ns(1_000_000, 32) < link_limited_ns);
    }

    #[test]
    #[should_panic(expected = "ALUs and a clock")]
    fn zero_alus_panics() {
        EmbeddingReductionUnit::new(0, 200.0);
    }
}
