//! The EB-Streamer: the complete sparse accelerator pipeline that fetches
//! sparse indices, streams embedding rows out of CPU memory over the
//! chiplet links, and reduces them on the fly (Section IV-C).

use crate::chiplet::ChipletLinkConfig;
use crate::error::CentaurError;
use crate::sparse::gather_unit::EmbeddingGatherUnit;
use crate::sparse::index_sram::SparseIndexSram;
use crate::sparse::reduction_unit::EmbeddingReductionUnit;
use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::trace::InferenceTrace;
use centaur_dlrm::{EmbeddingBag, ReductionOp};
use centaur_memsim::Throughput;
use serde::{Deserialize, Serialize};

/// Timing of the sparse stage of one batched request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseStageTiming {
    /// CPU→FPGA sparse-index fetch time (the `IDX` component of Figure 14),
    /// in ns.
    pub index_fetch_ns: f64,
    /// Embedding gather + on-the-fly reduction time (the `EMB` component),
    /// in ns.
    pub gather_reduce_ns: f64,
    /// Useful embedding bytes gathered.
    pub gathered_bytes: u64,
    /// Number of embedding-row read requests issued over the link.
    pub gather_requests: u64,
    /// Number of index-SRAM refills needed (chunked streaming).
    pub index_chunks: usize,
}

impl SparseStageTiming {
    /// Total sparse-stage latency (index fetch + gathers), in ns.
    pub fn total_ns(&self) -> f64 {
        self.index_fetch_ns + self.gather_reduce_ns
    }

    /// The paper's effective memory throughput for embedding gathers:
    /// useful bytes over the gather/reduce latency.
    pub fn effective_throughput(&self) -> Throughput {
        Throughput::new(self.gathered_bytes, self.gather_reduce_ns)
    }
}

/// The sparse accelerator complex.
#[derive(Debug, Clone)]
pub struct EbStreamer {
    link: ChipletLinkConfig,
    index_sram: SparseIndexSram,
    gather_unit: EmbeddingGatherUnit,
    reduction_unit: EmbeddingReductionUnit,
}

impl EbStreamer {
    /// Creates a streamer over the given link with the paper's SRAM/ALU
    /// sizing.
    pub fn new(link: ChipletLinkConfig) -> Self {
        EbStreamer {
            link,
            index_sram: SparseIndexSram::harpv2_sized(),
            gather_unit: EmbeddingGatherUnit::new(),
            reduction_unit: EmbeddingReductionUnit::harpv2_sized(),
        }
    }

    /// Creates a streamer with explicit components (for ablations).
    pub fn with_components(
        link: ChipletLinkConfig,
        index_sram: SparseIndexSram,
        reduction_unit: EmbeddingReductionUnit,
    ) -> Self {
        EbStreamer {
            link,
            index_sram,
            gather_unit: EmbeddingGatherUnit::new(),
            reduction_unit,
        }
    }

    /// The link configuration in use.
    pub fn link(&self) -> &ChipletLinkConfig {
        &self.link
    }

    /// The gather unit (exposes issue counters).
    pub fn gather_unit(&self) -> &EmbeddingGatherUnit {
        &self.gather_unit
    }

    /// The reduction unit (exposes reduction counters).
    pub fn reduction_unit(&self) -> &EmbeddingReductionUnit {
        &self.reduction_unit
    }

    /// The index SRAM (exposes chunking behaviour).
    pub fn index_sram(&self) -> &SparseIndexSram {
        &self.index_sram
    }

    // ------------------------------------------------------------------
    // Functional path
    // ------------------------------------------------------------------

    /// Functionally performs the gathers and reductions of one request over
    /// real embedding tables, streaming through the gather and reduction
    /// units. The result is the `[num_tables, dim]` matrix of reduced
    /// embeddings, numerically identical to the reference
    /// [`EmbeddingBag::sparse_lengths_reduce`].
    ///
    /// # Errors
    ///
    /// Propagates index-out-of-bounds and table-count errors from the
    /// reference tables, and index-SRAM capacity errors.
    pub fn gather_reduce(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
    ) -> Result<Matrix, CentaurError> {
        let mut out = Matrix::zeros(bag.num_tables(), bag.dim());
        self.gather_reduce_into(bag, indices_per_table, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`EbStreamer::gather_reduce`]: streams each chunk of
    /// indices through the SRAM and accumulates rows on the fly into the
    /// caller-owned `[num_tables, dim]` output — no per-chunk gather
    /// matrices, exactly how the EB-RU reduces rows as they arrive off the
    /// link.
    ///
    /// # Errors
    ///
    /// Same as [`EbStreamer::gather_reduce`], plus a shape mismatch when
    /// `out` has the wrong shape, and [`DlrmError::InvalidConfig`] for bags
    /// whose reduction operator is not `Sum` — the EB-RU accumulates rows
    /// as they stream in and cannot compute Mean/Max on the fly.
    ///
    /// [`DlrmError::InvalidConfig`]: centaur_dlrm::DlrmError::InvalidConfig
    pub fn gather_reduce_into(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
        out: &mut Matrix,
    ) -> Result<(), CentaurError> {
        if indices_per_table.len() != bag.num_tables() {
            return Err(centaur_dlrm::DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: bag.num_tables(),
            }
            .into());
        }
        if out.shape() != (bag.num_tables(), bag.dim()) {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "eb-streamer gather_reduce_into",
                lhs: (bag.num_tables(), bag.dim()),
                rhs: out.shape(),
            }
            .into());
        }
        self.check_streamable(bag)?;
        self.stream_sample(bag, indices_per_table, out.as_mut_slice())
    }

    /// Batch-major gather/reduce: streams **every** sample's gathers through
    /// the index SRAM and reduction unit, accumulating each sample's reduced
    /// tables directly into its row of a caller-owned `[batch, row_stride]`
    /// buffer at column `row_offset` — exactly the layout of the dense
    /// complex's batch-major feature matrix, so gathered rows land where the
    /// interaction unit reads them with no intermediate staging matrices.
    ///
    /// # Errors
    ///
    /// Same as [`EbStreamer::gather_reduce_into`] per sample, plus a shape
    /// mismatch when `out` is not `batch * row_stride` long or a sample's
    /// reduced block does not fit its row.
    pub fn gather_reduce_batch_into(
        &mut self,
        bag: &EmbeddingBag,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        row_stride: usize,
        row_offset: usize,
    ) -> Result<(), CentaurError> {
        self.check_streamable(bag)?;
        let width = bag.num_tables() * bag.dim();
        if row_offset + width > row_stride || out.len() != batch_indices.len() * row_stride {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "eb-streamer gather_reduce_batch_into",
                lhs: (batch_indices.len(), row_stride),
                rhs: (out.len(), row_offset + width),
            }
            .into());
        }
        for (sample, indices_per_table) in batch_indices.iter().enumerate() {
            let base = sample * row_stride + row_offset;
            self.stream_sample(bag, indices_per_table, &mut out[base..base + width])?;
        }
        Ok(())
    }

    /// The EB-RU only accumulates rows as they stream off the link, so only
    /// `Sum` bags can be served.
    fn check_streamable(&self, bag: &EmbeddingBag) -> Result<(), CentaurError> {
        if bag.reduction_op() != ReductionOp::Sum {
            return Err(centaur_dlrm::DlrmError::InvalidConfig(format!(
                "EB-Streamer reduces on the fly and supports {} only, got {}",
                ReductionOp::Sum.op_name(),
                bag.reduction_op().op_name()
            ))
            .into());
        }
        Ok(())
    }

    /// Streams one sample's gathers: chunks each table's indices through the
    /// index SRAM and reduces rows on the fly into the sample's
    /// `[num_tables * dim]` output block.
    fn stream_sample(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        if indices_per_table.len() != bag.num_tables() {
            return Err(centaur_dlrm::DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: bag.num_tables(),
            }
            .into());
        }
        let EbStreamer {
            index_sram,
            reduction_unit,
            ..
        } = self;
        let dim = bag.dim();
        for (t, indices) in indices_per_table.iter().enumerate() {
            let row_out = &mut out[t * dim..(t + 1) * dim];
            row_out.fill(0.0);
            for chunk in indices.chunks(index_sram.capacity_indices().max(1)) {
                index_sram.load(chunk)?;
                for &idx in index_sram.contents() {
                    reduction_unit.accumulate(row_out, bag.table(t).row(idx)?);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Timing path
    // ------------------------------------------------------------------

    /// Predicts the sparse-stage timing for one batched request.
    pub fn execute_timing(&mut self, trace: &InferenceTrace) -> SparseStageTiming {
        let layout = trace.layout();
        let total_lookups = trace.gather.total_lookups() as u64;
        let gathered_bytes = trace.gathered_bytes();
        let index_bytes = trace.index_bytes();

        // Generate the request stream (exercises the gather unit counters).
        for sample in &trace.gather.samples {
            let _ = self
                .gather_unit
                .generate_all(&layout, &sample.rows_per_table);
        }

        // 1. Fetch the sparse index array into the index SRAM (possibly in
        //    chunks; chunk fills overlap with gathers after the first, so
        //    only the first fill is exposed plus a small per-chunk
        //    resynchronisation cost).
        let index_chunks = self.index_sram.chunks_needed(total_lookups as usize);
        let chunk_bytes = index_bytes / index_chunks.max(1) as u64;
        let index_fetch_ns = self.link.bulk_transfer_ns(chunk_bytes)
            + (index_chunks.saturating_sub(1)) as f64 * self.link.request_latency_ns;

        // 2. Stream the embedding rows over the link, reducing on the fly.
        //    The link is the bottleneck; verify the EB-RU keeps up.
        let link_ns = self.link.gather_stream_ns(gathered_bytes, total_lookups);
        let reduce_ns = self
            .reduction_unit
            .reduction_time_ns(total_lookups, trace.config.embedding_dim);
        let gather_reduce_ns = link_ns.max(reduce_ns);

        SparseStageTiming {
            index_fetch_ns,
            gather_reduce_ns,
            gathered_bytes,
            gather_requests: total_lookups,
            index_chunks,
        }
    }
}

impl Default for EbStreamer {
    fn default() -> Self {
        EbStreamer::new(ChipletLinkConfig::harpv2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    #[test]
    fn non_sum_bags_are_rejected() {
        use centaur_dlrm::EmbeddingTable;
        let tables = (0..2).map(|s| EmbeddingTable::random(16, 4, s)).collect();
        let bag = EmbeddingBag::new(tables, ReductionOp::Mean);
        let mut streamer = EbStreamer::default();
        let err = streamer.gather_reduce(&bag, &[vec![0], vec![1]]);
        assert!(err.is_err(), "EB-Streamer must reject Mean bags");
    }

    #[test]
    fn functional_gather_reduce_matches_reference() {
        let bag = EmbeddingBag::random(4, 256, 32, 7);
        let indices: Vec<Vec<u32>> = (0..4)
            .map(|t| (0..10u32).map(|i| (t as u32 * 37 + i * 11) % 256).collect())
            .collect();
        let mut streamer = EbStreamer::default();
        let ours = streamer.gather_reduce(&bag, &indices).unwrap();
        let reference = bag.sparse_lengths_reduce(&indices).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-5);
        assert_eq!(streamer.reduction_unit().vectors_reduced(), 40);
    }

    #[test]
    fn functional_gather_reduce_chunks_when_sram_small() {
        let bag = EmbeddingBag::random(1, 128, 8, 3);
        let indices = vec![(0..100u32).map(|i| i % 128).collect::<Vec<_>>()];
        let tiny_sram = SparseIndexSram::new(16);
        let mut streamer = EbStreamer::with_components(
            ChipletLinkConfig::harpv2(),
            tiny_sram,
            EmbeddingReductionUnit::harpv2_sized(),
        );
        let ours = streamer.gather_reduce(&bag, &indices).unwrap();
        let reference = bag.sparse_lengths_reduce(&indices).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-4);
        assert!(streamer.index_sram().loads() >= 7);
    }

    #[test]
    fn batched_gather_reduce_matches_reference_with_offset_layout() {
        let bag = EmbeddingBag::random(3, 128, 8, 5);
        let batch_indices: Vec<Vec<Vec<u32>>> = (0..4)
            .map(|s| {
                (0..3)
                    .map(|t| {
                        (0..6u32)
                            .map(|i| (s as u32 * 41 + t * 13 + i * 7) % 128)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Feature-matrix layout: stride = (tables + 1) * dim, reduced block
        // at column `dim` — row 0 of each sample is left for the bottom MLP.
        let stride = 4 * 8;
        let mut out = vec![f32::NAN; 4 * stride];
        let mut streamer = EbStreamer::default();
        streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, stride, 8)
            .unwrap();
        for (s, indices) in batch_indices.iter().enumerate() {
            let reference = bag.sparse_lengths_reduce(indices).unwrap();
            let block = &out[s * stride + 8..s * stride + 8 + 24];
            for (a, b) in block.iter().zip(reference.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
            // The bottom-MLP slot must be untouched.
            assert!(out[s * stride..s * stride + 8].iter().all(|x| x.is_nan()));
        }
        assert_eq!(streamer.reduction_unit().vectors_reduced(), 4 * 3 * 6);
    }

    #[test]
    fn batched_gather_reduce_rejects_bad_layout() {
        let bag = EmbeddingBag::random(2, 64, 8, 1);
        let batch_indices = vec![vec![vec![0u32], vec![1]]];
        let mut streamer = EbStreamer::default();
        // Reduced block (16) does not fit the row past the offset.
        let mut out = vec![0.0f32; 20];
        assert!(streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, 20, 8)
            .is_err());
        // Wrong total length.
        let mut out = vec![0.0f32; 16];
        assert!(streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, 24, 0)
            .is_err());
    }

    #[test]
    fn table_count_mismatch_errors() {
        let bag = EmbeddingBag::random(2, 64, 8, 1);
        let mut streamer = EbStreamer::default();
        assert!(streamer.gather_reduce(&bag, &[vec![1]]).is_err());
    }

    fn timing(model: PaperModel, batch: usize) -> SparseStageTiming {
        let config = model.config();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 9);
        let trace = generator.inference_trace(batch);
        EbStreamer::default().execute_timing(&trace)
    }

    #[test]
    fn effective_throughput_saturates_near_streamer_bandwidth() {
        // Large batch, lookup-heavy model: throughput approaches the
        // streamer's sustainable link bandwidth (~12 GB/s on HARPv2).
        let t = timing(PaperModel::Dlrm4, 128);
        let gbs = t.effective_throughput().gigabytes_per_second();
        let target = ChipletLinkConfig::harpv2().streamer_bandwidth_gbs();
        assert!(
            (gbs - target).abs() / target < 0.1,
            "effective {gbs:.1} GB/s should be near {target:.1}"
        );
    }

    #[test]
    fn small_batches_are_latency_bound() {
        let t = timing(PaperModel::Dlrm1, 1);
        let gbs = t.effective_throughput().gigabytes_per_second();
        let target = ChipletLinkConfig::harpv2().streamer_bandwidth_gbs();
        assert!(gbs < 0.95 * target);
        assert!(t.index_fetch_ns > 0.0);
        assert!(t.total_ns() > t.gather_reduce_ns);
    }

    #[test]
    fn throughput_grows_with_batch() {
        let small = timing(PaperModel::Dlrm3, 1)
            .effective_throughput()
            .gigabytes_per_second();
        let large = timing(PaperModel::Dlrm3, 64)
            .effective_throughput()
            .gigabytes_per_second();
        assert!(large > small);
    }

    #[test]
    fn index_chunks_used_for_very_large_batches() {
        // DLRM(4) at batch 128 needs 512K indices, more than the index SRAM
        // holds — the streamer must chunk.
        let t = timing(PaperModel::Dlrm4, 128);
        assert!(t.index_chunks > 1);
        assert_eq!(t.gather_requests, 128 * 50 * 80);
    }
}
