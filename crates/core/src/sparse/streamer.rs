//! The EB-Streamer: the complete sparse accelerator pipeline that fetches
//! sparse indices, streams embedding rows out of CPU memory over the
//! chiplet links, and reduces them on the fly (Section IV-C).

use crate::chiplet::ChipletLinkConfig;
use crate::error::CentaurError;
use crate::sparse::gather_unit::EmbeddingGatherUnit;
use crate::sparse::hot_row_cache::{HotRowCache, RowCacheTags};
use crate::sparse::index_sram::SparseIndexSram;
use crate::sparse::reduction_unit::EmbeddingReductionUnit;
use centaur_dlrm::kernel::{global_sparse_backend, SparseBackend};
use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::trace::InferenceTrace;
use centaur_dlrm::{EmbeddingBag, EmbeddingTable, ReductionOp};
use centaur_memsim::Throughput;
use serde::{Deserialize, Serialize};

/// Timing of the sparse stage of one batched request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseStageTiming {
    /// CPU→FPGA sparse-index fetch time (the `IDX` component of Figure 14),
    /// in ns.
    pub index_fetch_ns: f64,
    /// Embedding gather + on-the-fly reduction time (the `EMB` component),
    /// in ns.
    pub gather_reduce_ns: f64,
    /// Useful embedding bytes gathered.
    pub gathered_bytes: u64,
    /// Number of embedding-row read requests issued over the link.
    pub gather_requests: u64,
    /// Number of index-SRAM refills needed (chunked streaming).
    pub index_chunks: usize,
    /// Gathers served from the hot-row cache (no link transfer needed).
    pub cache_hits: u64,
    /// Gathers that had to stream a row over the link.
    pub cache_misses: u64,
}

impl SparseStageTiming {
    /// Total sparse-stage latency (index fetch + gathers), in ns.
    pub fn total_ns(&self) -> f64 {
        self.index_fetch_ns + self.gather_reduce_ns
    }

    /// Hot-row cache hit fraction for the request (0 when the cache is
    /// disabled, i.e. on the scalar oracle backend).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The paper's effective memory throughput for embedding gathers:
    /// useful bytes over the gather/reduce latency. Cache hits deliver
    /// useful bytes without link transfers, so effective throughput can
    /// exceed the raw link bandwidth on skewed traffic — exactly the
    /// on-chip-reuse win the paper's block-RAM budget buys.
    pub fn effective_throughput(&self) -> Throughput {
        Throughput::new(self.gathered_bytes, self.gather_reduce_ns)
    }
}

/// One sample's slice of a packed index-SRAM fill: where the sample's
/// indices for the current table landed and whether this is the first
/// segment of the sample's list (oversized lists span multiple fills).
#[derive(Debug, Clone, Copy)]
struct GatherSegment {
    sample: usize,
    start: usize,
    len: usize,
    first: bool,
}

/// The sparse accelerator complex.
#[derive(Debug, Clone)]
pub struct EbStreamer {
    link: ChipletLinkConfig,
    index_sram: SparseIndexSram,
    gather_unit: EmbeddingGatherUnit,
    reduction_unit: EmbeddingReductionUnit,
    /// Which gather-reduce engine executes the functional path. `Scalar`
    /// is the PR 2 oracle (per-row accumulate, no cache); the vectorized
    /// backends run the register-tiled prefetching kernels through the
    /// hot-row cache. (The streamer models a single hardware pipeline, so
    /// `VectorizedParallel` executes like `Vectorized` here — the
    /// host-side `EmbeddingBag` engine is where sample-band threading
    /// applies.)
    backend: SparseBackend,
    /// The hot-row cache (engaged on the vectorized backends).
    hot_cache: HotRowCache,
    /// Persistent tag state for the timing path's trace replay — like the
    /// functional cache, residency carries across requests, so a stream of
    /// small skewed requests is predicted with warm-cache hit rates
    /// instead of restarting from compulsory misses every call.
    timing_tags: Option<RowCacheTags>,
    /// Row width the timing tags were built for.
    timing_row_bytes: u64,
    /// Reused segment directory for packed batch fills (high-water-mark
    /// capacity, cleared per fill — steady state stays zero-alloc).
    segments: Vec<GatherSegment>,
}

impl EbStreamer {
    /// Creates a streamer over the given link with the paper's SRAM/ALU
    /// sizing and the process-default sparse backend
    /// (`CENTAUR_SPARSE_BACKEND`).
    pub fn new(link: ChipletLinkConfig) -> Self {
        EbStreamer {
            link,
            index_sram: SparseIndexSram::harpv2_sized(),
            gather_unit: EmbeddingGatherUnit::new(),
            reduction_unit: EmbeddingReductionUnit::harpv2_sized(),
            backend: global_sparse_backend(),
            hot_cache: HotRowCache::harpv2_sized(),
            timing_tags: None,
            timing_row_bytes: 0,
            segments: Vec::new(),
        }
    }

    /// Creates a streamer with explicit components (for ablations).
    pub fn with_components(
        link: ChipletLinkConfig,
        index_sram: SparseIndexSram,
        reduction_unit: EmbeddingReductionUnit,
    ) -> Self {
        EbStreamer {
            link,
            index_sram,
            gather_unit: EmbeddingGatherUnit::new(),
            reduction_unit,
            backend: global_sparse_backend(),
            hot_cache: HotRowCache::harpv2_sized(),
            timing_tags: None,
            timing_row_bytes: 0,
            segments: Vec::new(),
        }
    }

    /// The link configuration in use.
    pub fn link(&self) -> &ChipletLinkConfig {
        &self.link
    }

    /// The gather unit (exposes issue counters).
    pub fn gather_unit(&self) -> &EmbeddingGatherUnit {
        &self.gather_unit
    }

    /// The reduction unit (exposes reduction counters).
    pub fn reduction_unit(&self) -> &EmbeddingReductionUnit {
        &self.reduction_unit
    }

    /// The index SRAM (exposes chunking behaviour).
    pub fn index_sram(&self) -> &SparseIndexSram {
        &self.index_sram
    }

    /// The hot-row cache (exposes hit/miss counters).
    pub fn hot_row_cache(&self) -> &HotRowCache {
        &self.hot_cache
    }

    /// The sparse backend executing the functional gather-reduce path.
    pub fn sparse_backend(&self) -> SparseBackend {
        self.backend
    }

    /// Selects the sparse backend for subsequent requests.
    pub fn set_sparse_backend(&mut self, backend: SparseBackend) {
        self.backend = backend;
    }

    /// Swaps in a differently-budgeted hot-row cache (for ablations).
    pub fn set_hot_row_cache(&mut self, cache: HotRowCache) {
        self.hot_cache = cache;
    }

    // ------------------------------------------------------------------
    // Functional path
    // ------------------------------------------------------------------

    /// Functionally performs the gathers and reductions of one request over
    /// real embedding tables, streaming through the gather and reduction
    /// units. The result is the `[num_tables, dim]` matrix of reduced
    /// embeddings, numerically identical to the reference
    /// [`EmbeddingBag::sparse_lengths_reduce`].
    ///
    /// # Errors
    ///
    /// Propagates index-out-of-bounds and table-count errors from the
    /// reference tables, and index-SRAM capacity errors.
    pub fn gather_reduce(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
    ) -> Result<Matrix, CentaurError> {
        let mut out = Matrix::zeros(bag.num_tables(), bag.dim());
        self.gather_reduce_into(bag, indices_per_table, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`EbStreamer::gather_reduce`]: streams each chunk of
    /// indices through the SRAM and accumulates rows on the fly into the
    /// caller-owned `[num_tables, dim]` output — no per-chunk gather
    /// matrices, exactly how the EB-RU reduces rows as they arrive off the
    /// link.
    ///
    /// # Errors
    ///
    /// Same as [`EbStreamer::gather_reduce`], plus a shape mismatch when
    /// `out` has the wrong shape, and [`DlrmError::InvalidConfig`] for bags
    /// whose reduction operator is not `Sum` — the EB-RU accumulates rows
    /// as they stream in and cannot compute Mean/Max on the fly.
    ///
    /// [`DlrmError::InvalidConfig`]: centaur_dlrm::DlrmError::InvalidConfig
    pub fn gather_reduce_into(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
        out: &mut Matrix,
    ) -> Result<(), CentaurError> {
        if indices_per_table.len() != bag.num_tables() {
            return Err(centaur_dlrm::DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: bag.num_tables(),
            }
            .into());
        }
        if out.shape() != (bag.num_tables(), bag.dim()) {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "eb-streamer gather_reduce_into",
                lhs: (bag.num_tables(), bag.dim()),
                rhs: out.shape(),
            }
            .into());
        }
        self.check_streamable(bag)?;
        self.stream_sample(bag, indices_per_table, out.as_mut_slice())
    }

    /// Batch-major gather/reduce: streams **every** sample's gathers through
    /// the index SRAM and reduction unit, accumulating each sample's reduced
    /// tables directly into its row of a caller-owned `[batch, row_stride]`
    /// buffer at column `row_offset` — exactly the layout of the dense
    /// complex's batch-major feature matrix, so gathered rows land where the
    /// interaction unit reads them with no intermediate staging matrices.
    ///
    /// # Errors
    ///
    /// Same as [`EbStreamer::gather_reduce_into`] per sample, plus a shape
    /// mismatch when `out` is not `batch * row_stride` long or a sample's
    /// reduced block does not fit its row.
    pub fn gather_reduce_batch_into(
        &mut self,
        bag: &EmbeddingBag,
        batch_indices: &[Vec<Vec<u32>>],
        out: &mut [f32],
        row_stride: usize,
        row_offset: usize,
    ) -> Result<(), CentaurError> {
        self.check_streamable(bag)?;
        let width = bag.num_tables() * bag.dim();
        if row_offset + width > row_stride || out.len() != batch_indices.len() * row_stride {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "eb-streamer gather_reduce_batch_into",
                lhs: (batch_indices.len(), row_stride),
                rhs: (out.len(), row_offset + width),
            }
            .into());
        }
        if self.backend == SparseBackend::Scalar {
            for (sample, indices_per_table) in batch_indices.iter().enumerate() {
                let base = sample * row_stride + row_offset;
                self.stream_sample(bag, indices_per_table, &mut out[base..base + width])?;
            }
            return Ok(());
        }
        // Vectorized engine, table-major: validate the whole batch up
        // front (same error-discovery order as the scalar loop), then run
        // all samples' gathers for one table back to back — the table's
        // hot rows stay cache- and L2-resident across the batch instead of
        // every sample cycling the whole bag through the cache.
        for indices_per_table in batch_indices {
            Self::validate_sample(bag, indices_per_table)?;
        }
        if row_stride == 0 {
            return Ok(());
        }
        let dim = bag.dim();
        let EbStreamer {
            index_sram,
            reduction_unit,
            hot_cache,
            segments,
            ..
        } = self;
        // One packed SRAM fill serves as many samples of a table as fit:
        // the per-fill cost (buffer swap, cache observation, EB-RU
        // bookkeeping) amortizes across the whole batch instead of being
        // paid once per (table, sample) — the measured ~4 ns/lookup the
        // chunk-per-sample loop cost over the raw bag engine.
        let capacity = index_sram.capacity_indices().max(1);
        for (t, table) in bag.iter().enumerate() {
            let mut sample = 0usize;
            // Progress inside a list longer than the whole SRAM (it then
            // spans several fills, accumulating into the same output row).
            let mut resume_at = 0usize;
            while sample < batch_indices.len() {
                index_sram.begin_load();
                segments.clear();
                while sample < batch_indices.len() {
                    let list = &batch_indices[sample][t];
                    let remaining = &list[resume_at..];
                    let space = capacity - index_sram.len();
                    if remaining.is_empty() {
                        if resume_at == 0 {
                            // Empty bag: still zero the output slot below.
                            segments.push(GatherSegment {
                                sample,
                                start: index_sram.len(),
                                len: 0,
                                first: true,
                            });
                        }
                        sample += 1;
                        resume_at = 0;
                        continue;
                    }
                    if space == 0 {
                        break;
                    }
                    let take = remaining.len().min(space);
                    let start = index_sram.append(&remaining[..take])?;
                    segments.push(GatherSegment {
                        sample,
                        start,
                        len: take,
                        first: resume_at == 0,
                    });
                    if take < remaining.len() {
                        resume_at += take;
                        break; // SRAM full mid-list; next fill resumes it.
                    }
                    sample += 1;
                    resume_at = 0;
                }
                if !index_sram.is_empty() {
                    index_sram.finish_load();
                }
                let loaded = index_sram.contents();
                hot_cache.observe_rows(t as u32, dim, loaded);
                reduction_unit.record_reductions(loaded.len() as u64);
                for (i, seg) in segments.iter().enumerate() {
                    // Pipeline the next segment's cold misses behind this
                    // segment's reduction (the in-kernel prefetcher cannot
                    // see past the current index list).
                    if let Some(next) = segments.get(i + 1) {
                        centaur_dlrm::kernel::prefetch_gather_list(
                            table.as_slice(),
                            dim,
                            &loaded[next.start..next.start + next.len],
                        );
                    }
                    let base = seg.sample * row_stride + row_offset + t * dim;
                    let row_out = &mut out[base..base + dim];
                    if seg.first {
                        row_out.fill(0.0);
                    }
                    centaur_dlrm::kernel::gather_rows_sum(
                        table.as_slice(),
                        dim,
                        &loaded[seg.start..seg.start + seg.len],
                        row_out,
                    );
                }
            }
        }
        Ok(())
    }

    /// Validates one sample's request exactly as the scalar streaming loop
    /// would discover problems (table count first, then each table's
    /// indices in order) — delegated to the bag's own pre-pass so the two
    /// engines can never drift on error selection.
    fn validate_sample(
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
    ) -> Result<(), CentaurError> {
        bag.validate_request(indices_per_table)
            .map_err(CentaurError::from)
    }

    /// Streams one (sample, table) gather-reduce through the index SRAM,
    /// the EB-RU and the hot-row cache model: indices chunk through the
    /// SRAM as the hardware double-buffer would, each chunk accumulates
    /// through the register-tiled prefetching gather kernel, the cache
    /// model observes the index stream for hit/miss accounting, and the
    /// EB-RU occupancy counter advances by the chunk's row count. Indices
    /// must be pre-validated.
    fn stream_table_gathers(
        index_sram: &mut SparseIndexSram,
        reduction_unit: &mut EmbeddingReductionUnit,
        hot_cache: &mut HotRowCache,
        t: usize,
        table: &EmbeddingTable,
        indices: &[u32],
        row_out: &mut [f32],
    ) -> Result<(), CentaurError> {
        row_out.fill(0.0);
        let dim = table.dim();
        for chunk in indices.chunks(index_sram.capacity_indices().max(1)) {
            index_sram.load(chunk)?;
            let loaded = index_sram.contents();
            centaur_dlrm::kernel::gather_rows_sum(table.as_slice(), dim, loaded, row_out);
            hot_cache.observe_rows(t as u32, dim, loaded);
            reduction_unit.record_reductions(loaded.len() as u64);
        }
        Ok(())
    }

    /// The EB-RU only accumulates rows as they stream off the link, so only
    /// `Sum` bags can be served.
    fn check_streamable(&self, bag: &EmbeddingBag) -> Result<(), CentaurError> {
        if bag.reduction_op() != ReductionOp::Sum {
            return Err(centaur_dlrm::DlrmError::InvalidConfig(format!(
                "EB-Streamer reduces on the fly and supports {} only, got {}",
                ReductionOp::Sum.op_name(),
                bag.reduction_op().op_name()
            ))
            .into());
        }
        Ok(())
    }

    /// Streams one sample's gathers: chunks each table's indices through the
    /// index SRAM and reduces rows on the fly into the sample's
    /// `[num_tables * dim]` output block.
    ///
    /// On the scalar oracle backend every row accumulates one at a time
    /// through [`EmbeddingReductionUnit::accumulate`]; the vectorized
    /// backends validate up front and run whole SRAM chunks through the
    /// hot-row cache's register-tiled accumulate — bitwise identical
    /// results either way.
    fn stream_sample(
        &mut self,
        bag: &EmbeddingBag,
        indices_per_table: &[Vec<u32>],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        if self.backend != SparseBackend::Scalar {
            Self::validate_sample(bag, indices_per_table)?;
            let EbStreamer {
                index_sram,
                reduction_unit,
                hot_cache,
                ..
            } = self;
            let dim = bag.dim();
            for (t, indices) in indices_per_table.iter().enumerate() {
                Self::stream_table_gathers(
                    index_sram,
                    reduction_unit,
                    hot_cache,
                    t,
                    bag.table(t),
                    indices,
                    &mut out[t * dim..(t + 1) * dim],
                )?;
            }
            return Ok(());
        }
        if indices_per_table.len() != bag.num_tables() {
            return Err(centaur_dlrm::DlrmError::TableCountMismatch {
                provided: indices_per_table.len(),
                expected: bag.num_tables(),
            }
            .into());
        }
        let EbStreamer {
            index_sram,
            reduction_unit,
            ..
        } = self;
        let dim = bag.dim();
        for (t, indices) in indices_per_table.iter().enumerate() {
            let row_out = &mut out[t * dim..(t + 1) * dim];
            row_out.fill(0.0);
            for chunk in indices.chunks(index_sram.capacity_indices().max(1)) {
                index_sram.load(chunk)?;
                for &idx in index_sram.contents() {
                    reduction_unit.accumulate(row_out, bag.table(t).row(idx)?);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Timing path
    // ------------------------------------------------------------------

    /// Predicts the sparse-stage timing for one batched request.
    ///
    /// On the vectorized backends the hot-row cache is replayed over the
    /// trace's row stream (same geometry and replacement policy as the
    /// functional cache): hits never cross the link, so only cold rows pay
    /// CPU-memory transfers — on skewed traffic the effective gather
    /// throughput rises above the raw link bandwidth.
    pub fn execute_timing(&mut self, trace: &InferenceTrace) -> SparseStageTiming {
        let layout = trace.layout();
        let total_lookups = trace.gather.total_lookups() as u64;
        let gathered_bytes = trace.gathered_bytes();
        let index_bytes = trace.index_bytes();
        let row_bytes = trace.config.row_bytes() as u64;

        // Generate the request stream (exercises the gather unit counters).
        for sample in &trace.gather.samples {
            let _ = self
                .gather_unit
                .generate_all(&layout, &sample.rows_per_table);
        }

        // Replay the hot-row cache over the trace (tags only — the timing
        // path never touches row data). The tag state persists across
        // requests, matching the functional cache's residency behaviour;
        // serving a model with a different row width rebuilds it. The
        // scalar oracle models the uncached PR 2 pipeline.
        let (cache_hits, cache_misses) = if self.backend == SparseBackend::Scalar {
            (0, total_lookups)
        } else {
            if self.timing_tags.is_none() || self.timing_row_bytes != row_bytes {
                let slots = self
                    .hot_cache
                    .slots_for_row_bytes(row_bytes.max(1) as usize);
                self.timing_tags = Some(RowCacheTags::with_slots(slots));
                self.timing_row_bytes = row_bytes;
            }
            let tags = self.timing_tags.as_mut().expect("built above");
            let (hits_before, misses_before) = (tags.hits(), tags.misses());
            for sample in &trace.gather.samples {
                for (t, rows) in sample.rows_per_table.iter().enumerate() {
                    for &row in rows {
                        tags.access(RowCacheTags::key(t as u32, row));
                    }
                }
            }
            (tags.hits() - hits_before, tags.misses() - misses_before)
        };
        self.gather_unit.record_suppressed(cache_hits);

        // 1. Fetch the sparse index array into the index SRAM (possibly in
        //    chunks; chunk fills overlap with gathers after the first, so
        //    only the first fill is exposed plus a small per-chunk
        //    resynchronisation cost).
        let index_chunks = self.index_sram.chunks_needed(total_lookups as usize);
        let chunk_bytes = index_bytes / index_chunks.max(1) as u64;
        let index_fetch_ns = self.link.bulk_transfer_ns(chunk_bytes)
            + (index_chunks.saturating_sub(1)) as f64 * self.link.request_latency_ns;

        // 2. Stream the cold embedding rows over the link, reducing on the
        //    fly (cache hits reduce straight out of block RAM). The link is
        //    the bottleneck for misses; the EB-RU must still keep up with
        //    the full reduction stream.
        let link_ns = self
            .link
            .gather_stream_ns(cache_misses * row_bytes, cache_misses);
        let reduce_ns = self
            .reduction_unit
            .reduction_time_ns(total_lookups, trace.config.embedding_dim);
        let gather_reduce_ns = link_ns.max(reduce_ns);

        SparseStageTiming {
            index_fetch_ns,
            gather_reduce_ns,
            gathered_bytes,
            gather_requests: total_lookups,
            index_chunks,
            cache_hits,
            cache_misses,
        }
    }
}

impl Default for EbStreamer {
    fn default() -> Self {
        EbStreamer::new(ChipletLinkConfig::harpv2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;
    use centaur_workload::{IndexDistribution, RequestGenerator};

    #[test]
    fn non_sum_bags_are_rejected() {
        use centaur_dlrm::EmbeddingTable;
        let tables = (0..2).map(|s| EmbeddingTable::random(16, 4, s)).collect();
        let bag = EmbeddingBag::new(tables, ReductionOp::Mean);
        let mut streamer = EbStreamer::default();
        let err = streamer.gather_reduce(&bag, &[vec![0], vec![1]]);
        assert!(err.is_err(), "EB-Streamer must reject Mean bags");
    }

    #[test]
    fn functional_gather_reduce_matches_reference() {
        let bag = EmbeddingBag::random(4, 256, 32, 7);
        let indices: Vec<Vec<u32>> = (0..4)
            .map(|t| (0..10u32).map(|i| (t as u32 * 37 + i * 11) % 256).collect())
            .collect();
        let mut streamer = EbStreamer::default();
        let ours = streamer.gather_reduce(&bag, &indices).unwrap();
        let reference = bag.sparse_lengths_reduce(&indices).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-5);
        assert_eq!(streamer.reduction_unit().vectors_reduced(), 40);
    }

    #[test]
    fn functional_gather_reduce_chunks_when_sram_small() {
        let bag = EmbeddingBag::random(1, 128, 8, 3);
        let indices = vec![(0..100u32).map(|i| i % 128).collect::<Vec<_>>()];
        let tiny_sram = SparseIndexSram::new(16);
        let mut streamer = EbStreamer::with_components(
            ChipletLinkConfig::harpv2(),
            tiny_sram,
            EmbeddingReductionUnit::harpv2_sized(),
        );
        let ours = streamer.gather_reduce(&bag, &indices).unwrap();
        let reference = bag.sparse_lengths_reduce(&indices).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-4);
        assert!(streamer.index_sram().loads() >= 7);
    }

    #[test]
    fn batched_gather_reduce_matches_reference_with_offset_layout() {
        let bag = EmbeddingBag::random(3, 128, 8, 5);
        let batch_indices: Vec<Vec<Vec<u32>>> = (0..4)
            .map(|s| {
                (0..3)
                    .map(|t| {
                        (0..6u32)
                            .map(|i| (s as u32 * 41 + t * 13 + i * 7) % 128)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Feature-matrix layout: stride = (tables + 1) * dim, reduced block
        // at column `dim` — row 0 of each sample is left for the bottom MLP.
        let stride = 4 * 8;
        let mut out = vec![f32::NAN; 4 * stride];
        let mut streamer = EbStreamer::default();
        streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, stride, 8)
            .unwrap();
        for (s, indices) in batch_indices.iter().enumerate() {
            let reference = bag.sparse_lengths_reduce(indices).unwrap();
            let block = &out[s * stride + 8..s * stride + 8 + 24];
            for (a, b) in block.iter().zip(reference.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
            // The bottom-MLP slot must be untouched.
            assert!(out[s * stride..s * stride + 8].iter().all(|x| x.is_nan()));
        }
        assert_eq!(streamer.reduction_unit().vectors_reduced(), 4 * 3 * 6);
    }

    #[test]
    fn batched_gather_reduce_rejects_bad_layout() {
        let bag = EmbeddingBag::random(2, 64, 8, 1);
        let batch_indices = vec![vec![vec![0u32], vec![1]]];
        let mut streamer = EbStreamer::default();
        // Reduced block (16) does not fit the row past the offset.
        let mut out = vec![0.0f32; 20];
        assert!(streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, 20, 8)
            .is_err());
        // Wrong total length.
        let mut out = vec![0.0f32; 16];
        assert!(streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut out, 24, 0)
            .is_err());
    }

    #[test]
    fn table_count_mismatch_errors() {
        let bag = EmbeddingBag::random(2, 64, 8, 1);
        let mut streamer = EbStreamer::default();
        assert!(streamer.gather_reduce(&bag, &[vec![1]]).is_err());
    }

    fn timing(model: PaperModel, batch: usize) -> SparseStageTiming {
        let config = model.config();
        let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 9);
        let trace = generator.inference_trace(batch);
        EbStreamer::default().execute_timing(&trace)
    }

    #[test]
    fn effective_throughput_saturates_near_streamer_bandwidth() {
        // Large batch, lookup-heavy model: throughput approaches the
        // streamer's sustainable link bandwidth (~12 GB/s on HARPv2).
        let t = timing(PaperModel::Dlrm4, 128);
        let gbs = t.effective_throughput().gigabytes_per_second();
        let target = ChipletLinkConfig::harpv2().streamer_bandwidth_gbs();
        assert!(
            (gbs - target).abs() / target < 0.1,
            "effective {gbs:.1} GB/s should be near {target:.1}"
        );
    }

    #[test]
    fn small_batches_are_latency_bound() {
        let t = timing(PaperModel::Dlrm1, 1);
        let gbs = t.effective_throughput().gigabytes_per_second();
        let target = ChipletLinkConfig::harpv2().streamer_bandwidth_gbs();
        assert!(gbs < 0.95 * target);
        assert!(t.index_fetch_ns > 0.0);
        assert!(t.total_ns() > t.gather_reduce_ns);
    }

    #[test]
    fn throughput_grows_with_batch() {
        let small = timing(PaperModel::Dlrm3, 1)
            .effective_throughput()
            .gigabytes_per_second();
        let large = timing(PaperModel::Dlrm3, 64)
            .effective_throughput()
            .gigabytes_per_second();
        assert!(large > small);
    }

    #[test]
    fn every_sparse_backend_is_bitwise_identical_through_the_streamer() {
        let bag = EmbeddingBag::random(3, 256, 32, 13);
        let batch_indices: Vec<Vec<Vec<u32>>> = (0..6)
            .map(|s| {
                (0..3)
                    .map(|t| {
                        (0..20u32)
                            .map(|i| (s as u32 * 37 + t * 11 + i * 3) % 64) // skewed head
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let stride = 3 * 32;
        let mut oracle = vec![0.0f32; 6 * stride];
        let mut streamer = EbStreamer::default();
        streamer.set_sparse_backend(SparseBackend::Scalar);
        streamer
            .gather_reduce_batch_into(&bag, &batch_indices, &mut oracle, stride, 0)
            .unwrap();
        for backend in [SparseBackend::Vectorized, SparseBackend::VectorizedParallel] {
            let mut streamer = EbStreamer::default();
            streamer.set_sparse_backend(backend);
            let mut out = vec![0.0f32; 6 * stride];
            streamer
                .gather_reduce_batch_into(&bag, &batch_indices, &mut out, stride, 0)
                .unwrap();
            assert_eq!(oracle, out, "{backend:?} diverged from scalar streamer");
            // The cache model observed the (heavily repeated) stream.
            let cache = streamer.hot_row_cache();
            assert!(cache.hits() + cache.misses() > 0);
            // Per-backend counters still advance identically.
            assert_eq!(streamer.reduction_unit().vectors_reduced(), 6 * 3 * 20);
        }
    }

    #[test]
    fn scalar_oracle_backend_never_touches_the_cache_model() {
        let bag = EmbeddingBag::random(2, 64, 8, 3);
        let mut streamer = EbStreamer::default();
        streamer.set_sparse_backend(SparseBackend::Scalar);
        streamer
            .gather_reduce(&bag, &[vec![1, 1, 1], vec![2, 2, 2]])
            .unwrap();
        assert_eq!(streamer.hot_row_cache().hits(), 0);
        assert_eq!(streamer.hot_row_cache().misses(), 0);
    }

    #[test]
    fn timing_counts_cache_hits_on_skewed_traces_and_speeds_up_gathers() {
        let config = PaperModel::Dlrm1.config();
        // Skewed trace: hot rows recur, so the replayed cache must hit and
        // the modelled gather time must shrink versus the scalar pipeline.
        let mut generator = RequestGenerator::new(
            &config,
            IndexDistribution::HotSet {
                hot_rows: 64,
                hot_fraction: 0.9,
            },
            21,
        );
        let trace = generator.inference_trace(32);

        let mut scalar = EbStreamer::default();
        scalar.set_sparse_backend(SparseBackend::Scalar);
        let uncached = scalar.execute_timing(&trace);
        assert_eq!(uncached.cache_hits, 0);
        assert_eq!(uncached.cache_hit_rate(), 0.0);
        assert_eq!(scalar.gather_unit().requests_suppressed(), 0);

        let mut vectorized = EbStreamer::default();
        vectorized.set_sparse_backend(SparseBackend::Vectorized);
        let cached = vectorized.execute_timing(&trace);
        assert!(cached.cache_hits > 0, "hot-set trace must hit the cache");
        assert!(cached.cache_hit_rate() > 0.5);
        assert_eq!(
            cached.cache_hits + cached.cache_misses,
            cached.gather_requests
        );
        assert_eq!(
            vectorized.gather_unit().requests_suppressed(),
            cached.cache_hits
        );
        assert!(
            cached.gather_reduce_ns < uncached.gather_reduce_ns,
            "on-chip hits must shorten the modelled gather stream"
        );
        // Effective throughput may exceed the raw link bandwidth — that is
        // the point of on-chip reuse.
        assert!(
            cached.effective_throughput().gigabytes_per_second()
                > uncached.effective_throughput().gigabytes_per_second()
        );
    }

    #[test]
    fn uniform_traces_on_paper_tables_barely_hit() {
        // 200 K-row tables under uniform draws: the cache model must report
        // (near) no reuse, keeping the paper's worst-case behaviour intact.
        let t = timing(PaperModel::Dlrm1, 16);
        assert!(
            t.cache_hit_rate() < 0.1,
            "uniform hit rate {}",
            t.cache_hit_rate()
        );
    }

    #[test]
    fn index_chunks_used_for_very_large_batches() {
        // DLRM(4) at batch 128 needs 512K indices, more than the index SRAM
        // holds — the streamer must chunk.
        let t = timing(PaperModel::Dlrm4, 128);
        assert!(t.index_chunks > 1);
        assert_eq!(t.gather_requests, 128 * 50 * 80);
    }
}
