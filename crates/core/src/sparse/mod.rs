//! The sparse accelerator complex (EB-Streamer): sparse index SRAM,
//! embedding gather unit (EB-GU), embedding reduction unit (EB-RU) and the
//! hot-row cache, exactly as laid out in Figures 9 and 10 of the paper
//! (the cache models the on-chip reuse Centaur's block RAM enables on
//! skewed production traffic).

pub mod gather_unit;
pub mod hot_row_cache;
pub mod index_sram;
pub mod reduction_unit;
pub mod streamer;

pub use gather_unit::{EmbeddingGatherUnit, GatherRequest};
pub use hot_row_cache::{CacheAccess, HotRowCache, RowCacheTags};
pub use index_sram::SparseIndexSram;
pub use reduction_unit::EmbeddingReductionUnit;
pub use streamer::{EbStreamer, SparseStageTiming};
