//! The sparse accelerator complex (EB-Streamer): sparse index SRAM,
//! embedding gather unit (EB-GU) and embedding reduction unit (EB-RU),
//! exactly as laid out in Figures 9 and 10 of the paper.

pub mod gather_unit;
pub mod index_sram;
pub mod reduction_unit;
pub mod streamer;

pub use gather_unit::{EmbeddingGatherUnit, GatherRequest};
pub use index_sram::SparseIndexSram;
pub use reduction_unit::EmbeddingReductionUnit;
pub use streamer::{EbStreamer, SparseStageTiming};
