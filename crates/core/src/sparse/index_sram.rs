//! The on-FPGA SRAM array holding sparse index IDs awaiting gather
//! (`SRAM_sparseID` in Figure 9/10).
//!
//! A large index SRAM is what lets the gather unit keep many embedding
//! reads in flight: the paper's design spends over half of the sparse
//! complex's block memory on it (Table III). When a batch carries more
//! indices than fit, the streamer processes the index array in chunks,
//! double-buffering the SRAM.

use crate::error::CentaurError;
use serde::{Deserialize, Serialize};

/// The sparse-index SRAM buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseIndexSram {
    capacity_indices: usize,
    contents: Vec<u32>,
    loads: u64,
}

impl SparseIndexSram {
    /// Bytes per stored index (32-bit row IDs).
    pub const INDEX_BYTES: usize = 4;

    /// Creates an SRAM able to hold `capacity_indices` row IDs.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_indices: usize) -> Self {
        assert!(capacity_indices > 0, "index SRAM needs non-zero capacity");
        SparseIndexSram {
            capacity_indices,
            contents: Vec::new(),
            loads: 0,
        }
    }

    /// The paper's configuration: ~12.2 Mbit of block RAM dedicated to
    /// sparse indices (Table III), i.e. roughly 380 K 32-bit indices.
    pub fn harpv2_sized() -> Self {
        let bits = 12_200_000u64;
        SparseIndexSram::new((bits / 8 / Self::INDEX_BYTES as u64) as usize)
    }

    /// Maximum number of indices the SRAM holds at once.
    pub fn capacity_indices(&self) -> usize {
        self.capacity_indices
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_indices * Self::INDEX_BYTES
    }

    /// Number of indices currently buffered.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// Returns `true` when no indices are buffered.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// How many CPU→FPGA fill operations have occurred.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of chunked fills needed to stream `total_indices` through
    /// this SRAM.
    pub fn chunks_needed(&self, total_indices: usize) -> usize {
        total_indices.div_ceil(self.capacity_indices)
    }

    /// Fills the SRAM with a chunk of indices (replacing the previous
    /// contents, as the hardware double-buffer would).
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the chunk does not
    /// fit.
    pub fn load(&mut self, indices: &[u32]) -> Result<(), CentaurError> {
        if indices.len() > self.capacity_indices {
            return Err(CentaurError::CapacityExceeded {
                resource: "sparse index SRAM",
                required: indices.len() as u64,
                available: self.capacity_indices as u64,
            });
        }
        self.contents.clear();
        self.contents.extend_from_slice(indices);
        self.loads += 1;
        Ok(())
    }

    /// Starts a packed fill: clears the buffer so several index lists can
    /// be appended back to back with [`SparseIndexSram::append`] and then
    /// streamed as **one** CPU→FPGA fill. This is what lets the batch path
    /// amortize the per-fill cost across every sample of a table instead of
    /// paying one fill per (table, sample).
    pub fn begin_load(&mut self) {
        self.contents.clear();
    }

    /// Appends a chunk of indices to the current packed fill, returning the
    /// offset at which the chunk landed (so callers can address each
    /// sample's segment inside the shared fill).
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the chunk does not
    /// fit in the remaining capacity; the buffered contents are unchanged.
    pub fn append(&mut self, indices: &[u32]) -> Result<usize, CentaurError> {
        if self.contents.len() + indices.len() > self.capacity_indices {
            return Err(CentaurError::CapacityExceeded {
                resource: "sparse index SRAM",
                required: (self.contents.len() + indices.len()) as u64,
                available: self.capacity_indices as u64,
            });
        }
        let start = self.contents.len();
        self.contents.extend_from_slice(indices);
        Ok(start)
    }

    /// Completes a packed fill, counting it as one CPU→FPGA load.
    pub fn finish_load(&mut self) {
        self.loads += 1;
    }

    /// Borrows the buffered indices.
    pub fn contents(&self) -> &[u32] {
        &self.contents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harpv2_capacity_is_hundreds_of_thousands() {
        let sram = SparseIndexSram::harpv2_sized();
        assert!(sram.capacity_indices() > 300_000);
        assert!(sram.capacity_bytes() < 2 * 1024 * 1024);
    }

    #[test]
    fn load_and_read_back() {
        let mut sram = SparseIndexSram::new(8);
        sram.load(&[1, 2, 3]).unwrap();
        assert_eq!(sram.contents(), &[1, 2, 3]);
        assert_eq!(sram.len(), 3);
        assert!(!sram.is_empty());
        // A second load replaces the first (double buffering).
        sram.load(&[9]).unwrap();
        assert_eq!(sram.contents(), &[9]);
        assert_eq!(sram.loads(), 2);
    }

    #[test]
    fn overflow_is_rejected() {
        let mut sram = SparseIndexSram::new(2);
        let err = sram.load(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, CentaurError::CapacityExceeded { .. }));
        assert!(sram.is_empty());
    }

    #[test]
    fn packed_fill_appends_and_counts_one_load() {
        let mut sram = SparseIndexSram::new(8);
        sram.begin_load();
        assert_eq!(sram.append(&[1, 2, 3]).unwrap(), 0);
        assert_eq!(sram.append(&[4, 5]).unwrap(), 3);
        sram.finish_load();
        assert_eq!(sram.contents(), &[1, 2, 3, 4, 5]);
        assert_eq!(sram.loads(), 1);
        // Overfilling the remaining capacity is rejected, contents intact.
        let err = sram.append(&[6, 7, 8, 9]).unwrap_err();
        assert!(matches!(err, CentaurError::CapacityExceeded { .. }));
        assert_eq!(sram.len(), 5);
        // The next packed fill replaces the previous one.
        sram.begin_load();
        assert!(sram.is_empty());
    }

    #[test]
    fn chunks_needed_rounds_up() {
        let sram = SparseIndexSram::new(100);
        assert_eq!(sram.chunks_needed(0), 0);
        assert_eq!(sram.chunks_needed(1), 1);
        assert_eq!(sram.chunks_needed(100), 1);
        assert_eq!(sram.chunks_needed(101), 2);
        assert_eq!(sram.chunks_needed(1000), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_panics() {
        SparseIndexSram::new(0);
    }
}
