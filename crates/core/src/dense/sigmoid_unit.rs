//! The sigmoid unit that converts the top-MLP output into an event
//! probability (Figure 9). A handful of pipeline stages of fixed-function
//! logic — never a performance factor, but part of the functional datapath.

use centaur_dlrm::tensor::sigmoid_scalar;
use serde::{Deserialize, Serialize};

/// The sigmoid unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidUnit {
    pipeline_cycles: u32,
    clock_mhz: f64,
}

impl SigmoidUnit {
    /// Creates a sigmoid unit with the given pipeline depth and clock.
    pub fn new(pipeline_cycles: u32, clock_mhz: f64) -> Self {
        SigmoidUnit {
            pipeline_cycles,
            clock_mhz,
        }
    }

    /// The paper's configuration (a short pipeline at the 200 MHz fabric
    /// clock).
    pub fn harpv2() -> Self {
        SigmoidUnit::new(8, 200.0)
    }

    /// Applies the sigmoid to one pre-activation value.
    pub fn apply(&self, x: f32) -> f32 {
        sigmoid_scalar(x)
    }

    /// Applies the sigmoid to a batch of pre-activation values.
    pub fn apply_batch(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Allocation-free [`SigmoidUnit::apply_batch`]: one vectorized sweep
    /// over the batch of logits into a caller-owned output — the unit is
    /// fully pipelined, so the batch-major datapath converts all logits in
    /// one pass.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn apply_slice(&self, xs: &[f32], out: &mut [f32]) {
        centaur_dlrm::tensor::sigmoid_into(xs, out);
    }

    /// Latency to produce `batch` probabilities, in nanoseconds (fully
    /// pipelined: fill + one value per cycle).
    pub fn latency_ns(&self, batch: usize) -> f64 {
        (self.pipeline_cycles as f64 + batch.max(1) as f64) * 1000.0 / self.clock_mhz
    }
}

impl Default for SigmoidUnit {
    fn default() -> Self {
        SigmoidUnit::harpv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_matches_reference_and_bounds() {
        let unit = SigmoidUnit::harpv2();
        for &x in &[-10.0, -1.0, 0.0, 1.0, 10.0] {
            let y = unit.apply(x);
            assert!((y - sigmoid_scalar(x)).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn batch_application_preserves_order() {
        let unit = SigmoidUnit::harpv2();
        let out = unit.apply_batch(&[-1.0, 0.0, 1.0]);
        assert_eq!(out.len(), 3);
        assert!(out[0] < out[1] && out[1] < out[2]);
    }

    #[test]
    fn latency_is_nanoseconds_scale() {
        let unit = SigmoidUnit::harpv2();
        assert!(unit.latency_ns(1) < 100.0);
        assert!(unit.latency_ns(128) > unit.latency_ns(1));
    }
}
