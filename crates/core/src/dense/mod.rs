//! The dense accelerator complex: a spatial array of FP GEMM processing
//! engines for the MLPs, a feature-interaction unit, a sigmoid unit and the
//! on-chip SRAM buffers (Figures 9, 11 and 12 of the paper).

pub mod accelerator;
pub mod interaction_unit;
pub mod mlp_unit;
pub mod pe;
pub mod sigmoid_unit;
pub mod sram;

pub use accelerator::{DenseAccelerator, DenseStageTiming};
pub use interaction_unit::FeatureInteractionUnit;
pub use mlp_unit::MlpUnit;
pub use pe::{PeConfig, ProcessingEngine};
pub use sigmoid_unit::SigmoidUnit;
pub use sram::SramBuffer;
