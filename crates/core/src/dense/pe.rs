//! A single processing engine (PE): one instance of the FPGA floating-point
//! matrix-multiply IP core, configured for 32×32 tile GEMMs (Section IV-D).

use centaur_dlrm::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Static parameters of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeConfig {
    /// Square tile dimension the `FP_MATRIX_MULT` core is configured for.
    pub tile_dim: usize,
    /// Single-precision FLOPs the core retires per cycle.
    pub flops_per_cycle: f64,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Minimum cycles per tile operation (pipeline fill/drain), even when
    /// the operands are much smaller than a full tile.
    pub min_pipeline_cycles: f64,
}

impl PeConfig {
    /// The paper's configuration: 32×32 tiles; 20 PEs at 200 MHz jointly
    /// deliver 313 GFLOPS, i.e. ~78 FLOP/cycle per PE.
    pub fn harpv2() -> Self {
        PeConfig {
            tile_dim: 32,
            flops_per_cycle: 78.25,
            clock_mhz: 200.0,
            min_pipeline_cycles: 64.0,
        }
    }

    /// Peak throughput of one PE in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.flops_per_cycle * self.clock_mhz / 1000.0
    }

    /// Cycles for a (possibly partial) `m × n × k` tile GEMM on this PE.
    pub fn gemm_cycles(&self, m: usize, n: usize, k: usize) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        (flops / self.flops_per_cycle).max(self.min_pipeline_cycles)
    }

    /// Cycles to multiply two full `tile_dim × tile_dim` tiles.
    pub fn tile_gemm_cycles(&self) -> f64 {
        self.gemm_cycles(self.tile_dim, self.tile_dim, self.tile_dim)
    }

    /// Time for one full-tile GEMM in nanoseconds.
    pub fn tile_gemm_ns(&self) -> f64 {
        self.tile_gemm_cycles() * 1000.0 / self.clock_mhz
    }

    /// Converts cycles at this PE's clock into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * 1000.0 / self.clock_mhz
    }
}

impl Default for PeConfig {
    fn default() -> Self {
        PeConfig::harpv2()
    }
}

/// One processing engine: functional tile GEMM plus cycle accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessingEngine {
    config: PeConfig,
    tiles_executed: u64,
}

impl ProcessingEngine {
    /// Creates a PE.
    pub fn new(config: PeConfig) -> Self {
        ProcessingEngine {
            config,
            tiles_executed: 0,
        }
    }

    /// The PE configuration.
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    /// Number of tile GEMMs executed so far.
    pub fn tiles_executed(&self) -> u64 {
        self.tiles_executed
    }

    /// Multiplies two tiles (`a` is `[m, k]`, `b` is `[k, n]`, with
    /// `m, n, k ≤ tile_dim`), producing the `[m, n]` partial product the
    /// output-stationary dataflow accumulates.
    ///
    /// # Panics
    ///
    /// Panics if either operand exceeds the tile dimension or the inner
    /// dimensions disagree.
    pub fn tile_matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let t = self.config.tile_dim;
        assert!(
            a.rows() <= t && a.cols() <= t && b.rows() <= t && b.cols() <= t,
            "tile operands exceed the {t}x{t} PE tile"
        );
        assert_eq!(a.cols(), b.rows(), "tile inner dimensions disagree");
        self.tiles_executed += 1;
        a.matmul(b).expect("dimensions checked above")
    }
}

impl Default for ProcessingEngine {
    fn default() -> Self {
        ProcessingEngine::new(PeConfig::harpv2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_peak_gflops_matches_paper_aggregate() {
        // 20 PEs (16 MLP + 4 feature interaction) must total ~313 GFLOPS.
        let pe = PeConfig::harpv2();
        let aggregate = 20.0 * pe.peak_gflops();
        assert!((aggregate - 313.0).abs() < 1.0, "aggregate = {aggregate}");
    }

    #[test]
    fn tile_gemm_cycles_positive_and_consistent() {
        let pe = PeConfig::harpv2();
        let cycles = pe.tile_gemm_cycles();
        assert!(cycles > 100.0 && cycles < 10_000.0);
        let ns = pe.tile_gemm_ns();
        assert!((ns - cycles * 5.0).abs() < 1e-9, "200 MHz = 5 ns per cycle");
    }

    #[test]
    fn tile_matmul_matches_reference() {
        let mut pe = ProcessingEngine::default();
        let a = Matrix::from_fn(32, 32, |r, c| ((r * 31 + c) % 7) as f32 - 3.0);
        let b = Matrix::from_fn(32, 32, |r, c| ((r + c * 13) % 5) as f32 * 0.25);
        let ours = pe.tile_matmul(&a, &b);
        let reference = a.matmul(&b).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-5);
        assert_eq!(pe.tiles_executed(), 1);
    }

    #[test]
    fn partial_tiles_are_accepted() {
        let mut pe = ProcessingEngine::default();
        let a = Matrix::filled(5, 7, 1.0);
        let b = Matrix::filled(7, 3, 2.0);
        let out = pe.tile_matmul(&a, &b);
        assert_eq!(out.shape(), (5, 3));
        assert!((out.get(0, 0) - 14.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_tile_panics() {
        let mut pe = ProcessingEngine::default();
        let a = Matrix::zeros(64, 32);
        let b = Matrix::zeros(32, 32);
        pe.tile_matmul(&a, &b);
    }
}
