//! The MLP unit: a 4×4 spatial array of processing engines driven by an
//! output-stationary dataflow (Figures 11 and 12).
//!
//! The control unit tiles the input and weight matrices into 32×32 tiles,
//! broadcasts weight tiles along PE rows and input tiles along PE columns,
//! and each PE accumulates its output tile in a private SRAM buffer.

use crate::dense::pe::{PeConfig, ProcessingEngine};
use centaur_dlrm::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The spatial PE array executing GEMMs for the MLP layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpUnit {
    rows: usize,
    cols: usize,
    pe: ProcessingEngine,
    gemms_executed: u64,
}

impl MlpUnit {
    /// Creates an MLP unit with a `rows × cols` PE array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, pe_config: PeConfig) -> Self {
        assert!(rows > 0 && cols > 0, "PE array needs non-zero dimensions");
        MlpUnit {
            rows,
            cols,
            pe: ProcessingEngine::new(pe_config),
            gemms_executed: 0,
        }
    }

    /// The paper's configuration: a 4×4 array of 32×32-tile PEs at 200 MHz.
    pub fn harpv2() -> Self {
        MlpUnit::new(4, 4, PeConfig::harpv2())
    }

    /// Number of PEs in the array.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// The per-PE configuration.
    pub fn pe_config(&self) -> &PeConfig {
        self.pe.config()
    }

    /// Aggregate peak throughput of the array in GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.num_pes() as f64 * self.pe.config().peak_gflops()
    }

    /// GEMMs executed so far.
    pub fn gemms_executed(&self) -> u64 {
        self.gemms_executed
    }

    /// Records `count` GEMMs dispatched to the array by the dense complex.
    /// The functional datapath executes layer GEMMs through the optimized
    /// kernel backend rather than the tile-by-tile model, but they still
    /// occupy the array, so the utilization counter must advance.
    pub fn record_gemms(&mut self, count: u64) {
        self.gemms_executed += count;
    }

    /// Functional GEMM through the tiled, output-stationary dataflow:
    /// `a` is `[m, k]` (inputs), `b` is `[k, n]` (weights); the result is
    /// `[m, n]`, numerically identical to a flat matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "GEMM inner dimensions disagree");
        self.gemms_executed += 1;
        let t = self.pe.config().tile_dim;
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        // Output-stationary: each (mi, ni) output tile stays in its PE's
        // accumulator while the k-dimension is streamed through.
        for mi in (0..m).step_by(t) {
            let m_end = (mi + t).min(m);
            for ni in (0..n).step_by(t) {
                let n_end = (ni + t).min(n);
                let mut acc = Matrix::zeros(m_end - mi, n_end - ni);
                for ki in (0..k).step_by(t) {
                    let k_end = (ki + t).min(k);
                    let a_tile =
                        Matrix::from_fn(m_end - mi, k_end - ki, |r, c| a.get(mi + r, ki + c));
                    let b_tile =
                        Matrix::from_fn(k_end - ki, n_end - ni, |r, c| b.get(ki + r, ni + c));
                    let partial = self.pe.tile_matmul(&a_tile, &b_tile);
                    acc = &acc + &partial;
                }
                for r in 0..(m_end - mi) {
                    for c in 0..(n_end - ni) {
                        out.set(mi + r, ni + c, acc.get(r, c));
                    }
                }
            }
        }
        out
    }

    /// Number of 32×32×32 tile GEMMs a `[m, k] × [k, n]` product requires.
    pub fn tile_count(&self, m: usize, n: usize, k: usize) -> u64 {
        let t = self.pe.config().tile_dim;
        (m.div_ceil(t) * n.div_ceil(t) * k.div_ceil(t)) as u64
    }

    /// Total PE cycles for a `[m, k] × [k, n]` GEMM, accounting for partial
    /// edge tiles (which take fewer cycles than full tiles, down to the
    /// pipeline-fill minimum).
    pub fn gemm_total_cycles(&self, m: usize, n: usize, k: usize) -> f64 {
        let t = self.pe.config().tile_dim;
        let mut cycles = 0.0;
        for mi in (0..m).step_by(t) {
            let mt = (m - mi).min(t);
            for ni in (0..n).step_by(t) {
                let nt = (n - ni).min(t);
                for ki in (0..k).step_by(t) {
                    let kt = (k - ki).min(t);
                    cycles += self.pe.config().gemm_cycles(mt, nt, kt);
                }
            }
        }
        cycles
    }

    /// Time in nanoseconds for a `[m, k] × [k, n]` GEMM on the PE array,
    /// with tiles spread across the PEs (a GEMM can never finish faster
    /// than its longest single k-reduction chain on one PE).
    pub fn gemm_time_ns(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let total_cycles = self.gemm_total_cycles(m, n, k);
        let t = self.pe.config().tile_dim;
        // One output tile's k-chain is serial on its PE.
        let chain_cycles =
            k.div_ceil(t) as f64 * self.pe.config().gemm_cycles(m.min(t), n.min(t), k.min(t));
        let parallel_cycles = (total_cycles / self.num_pes() as f64).max(chain_cycles);
        self.pe.config().cycles_to_ns(parallel_cycles)
    }

    /// Time for a full MLP forward pass described by `dims` (layer widths
    /// including input) on a batch of `batch` samples, in nanoseconds.
    /// `per_layer_overhead_ns` models the pipeline drain/configuration
    /// between layers.
    pub fn mlp_time_ns(&self, dims: &[usize], batch: usize, per_layer_overhead_ns: f64) -> f64 {
        dims.windows(2)
            .map(|w| self.gemm_time_ns(batch, w[1], w[0]) + per_layer_overhead_ns)
            .sum()
    }
}

impl Default for MlpUnit {
    fn default() -> Self {
        MlpUnit::harpv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harpv2_array_is_4x4() {
        let unit = MlpUnit::harpv2();
        assert_eq!(unit.num_pes(), 16);
        // 16 of the 20 PEs → ~250 of the 313 GFLOPS.
        assert!((unit.peak_gflops() - 16.0 * 15.65).abs() < 1.0);
    }

    #[test]
    fn tiled_matmul_matches_flat_matmul() {
        let mut unit = MlpUnit::harpv2();
        // Dimensions that do not divide evenly by 32 exercise edge tiles.
        let a = Matrix::from_fn(45, 70, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(70, 33, |r, c| ((r + c) % 13) as f32 * 0.125);
        let ours = unit.matmul(&a, &b);
        let reference = a.matmul(&b).unwrap();
        assert!(ours.max_abs_diff(&reference) < 1e-3);
        assert_eq!(unit.gemms_executed(), 1);
    }

    #[test]
    fn tile_count_rounds_up() {
        let unit = MlpUnit::harpv2();
        assert_eq!(unit.tile_count(32, 32, 32), 1);
        assert_eq!(unit.tile_count(33, 32, 32), 2);
        assert_eq!(unit.tile_count(64, 64, 64), 8);
        assert_eq!(unit.tile_count(1, 1, 1), 1);
    }

    #[test]
    fn gemm_time_scales_with_tiles() {
        let unit = MlpUnit::harpv2();
        let small = unit.gemm_time_ns(32, 32, 32);
        let large = unit.gemm_time_ns(128, 128, 128);
        assert!(large > small);
        // 128³ = 64 tiles over 16 PEs = 4 waves.
        assert!((large / unit.pe_config().tile_gemm_ns() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mlp_time_sums_layers() {
        let unit = MlpUnit::harpv2();
        let dims = [13, 128, 64, 32];
        let t = unit.mlp_time_ns(&dims, 16, 100.0);
        let manual: f64 = dims
            .windows(2)
            .map(|w| unit.gemm_time_ns(16, w[1], w[0]) + 100.0)
            .sum();
        assert!((t - manual).abs() < 1e-9);
        assert!(t > 300.0);
    }

    #[test]
    fn array_throughput_beats_single_pe() {
        let unit = MlpUnit::harpv2();
        let single = MlpUnit::new(1, 1, PeConfig::harpv2());
        assert!(unit.gemm_time_ns(256, 256, 256) < single.gemm_time_ns(256, 256, 256));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_array_panics() {
        MlpUnit::new(0, 4, PeConfig::harpv2());
    }
}
