//! On-chip SRAM buffers of the dense accelerator complex: the MLP weight
//! store (`SRAM_MLPmodel`), the dense-feature buffer (`SRAM_DenseFeature`)
//! and the top-MLP input buffer (`SRAM_MLPinput`) from Figure 9.

use crate::error::CentaurError;
use serde::{Deserialize, Serialize};

/// A capacity-checked on-chip buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramBuffer {
    name: &'static str,
    capacity_bytes: u64,
    used_bytes: u64,
    writes: u64,
}

impl SramBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(name: &'static str, capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "SRAM buffer needs non-zero capacity");
        SramBuffer {
            name,
            capacity_bytes,
            used_bytes: 0,
            writes: 0,
        }
    }

    /// The MLP weight store: ~5.2 Mbit of block RAM (Table III), enough for
    /// every Table I model's MLP parameters.
    pub fn mlp_weights_harpv2() -> Self {
        SramBuffer::new("SRAM_MLPmodel", 5_200_000 / 8)
    }

    /// The dense-feature input buffer (part of the dense complex's SRAM
    /// arrays in Table III).
    pub fn dense_features_harpv2() -> Self {
        SramBuffer::new("SRAM_DenseFeature", 800_000 / 8)
    }

    /// The top-MLP input buffer holding the feature-interaction output.
    pub fn mlp_inputs_harpv2() -> Self {
        SramBuffer::new("SRAM_MLPinput", 800_000 / 8)
    }

    /// Buffer name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Number of successful allocations/stores performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// Allocates `bytes` in the buffer (e.g. uploading weights at boot).
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the buffer cannot
    /// hold the additional bytes.
    pub fn store(&mut self, bytes: u64) -> Result<(), CentaurError> {
        if self.used_bytes + bytes > self.capacity_bytes {
            return Err(CentaurError::CapacityExceeded {
                resource: self.name,
                required: self.used_bytes + bytes,
                available: self.capacity_bytes,
            });
        }
        self.used_bytes += bytes;
        self.writes += 1;
        Ok(())
    }

    /// Clears the buffer (e.g. between requests for the per-request
    /// buffers; weights persist and are never cleared in deployment).
    pub fn clear(&mut self) {
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;

    #[test]
    fn weight_sram_holds_every_paper_model() {
        let sram = SramBuffer::mlp_weights_harpv2();
        for model in PaperModel::all() {
            let mut s = sram.clone();
            assert!(
                s.store(model.config().mlp_bytes()).is_ok(),
                "{model} MLP ({} B) should fit in {} B",
                model.config().mlp_bytes(),
                s.capacity_bytes()
            );
        }
    }

    #[test]
    fn store_and_occupancy_accounting() {
        let mut sram = SramBuffer::new("test", 1000);
        sram.store(250).unwrap();
        sram.store(250).unwrap();
        assert_eq!(sram.used_bytes(), 500);
        assert_eq!(sram.free_bytes(), 500);
        assert!((sram.occupancy() - 0.5).abs() < 1e-9);
        assert_eq!(sram.writes(), 2);
        sram.clear();
        assert_eq!(sram.used_bytes(), 0);
    }

    #[test]
    fn overflow_rejected_with_details() {
        let mut sram = SramBuffer::new("tiny", 100);
        let err = sram.store(101).unwrap_err();
        match err {
            CentaurError::CapacityExceeded {
                resource,
                required,
                available,
            } => {
                assert_eq!(resource, "tiny");
                assert_eq!(required, 101);
                assert_eq!(available, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn named_buffers_have_expected_names() {
        assert_eq!(SramBuffer::mlp_weights_harpv2().name(), "SRAM_MLPmodel");
        assert_eq!(
            SramBuffer::dense_features_harpv2().name(),
            "SRAM_DenseFeature"
        );
        assert_eq!(SramBuffer::mlp_inputs_harpv2().name(), "SRAM_MLPinput");
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_panics() {
        SramBuffer::new("zero", 0);
    }
}
