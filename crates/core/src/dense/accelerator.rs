//! The dense accelerator complex assembled: MLP unit, feature-interaction
//! unit, sigmoid unit and SRAM buffers, with both a functional datapath
//! (numerically equivalent to the reference DLRM) and a timing model.

use crate::dense::interaction_unit::FeatureInteractionUnit;
use crate::dense::mlp_unit::MlpUnit;
use crate::dense::sigmoid_unit::SigmoidUnit;
use crate::dense::sram::SramBuffer;
use crate::error::CentaurError;
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::kernel::{global_backend, grow, KernelBackend, Workspace};
use centaur_dlrm::model::DlrmModel;
use centaur_dlrm::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Timing of the dense stage of one batched request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseStageTiming {
    /// Bottom-MLP execution time, in ns.
    pub bottom_mlp_ns: f64,
    /// Feature-interaction (batched GEMM) time, in ns.
    pub interaction_ns: f64,
    /// Top-MLP execution time, in ns.
    pub top_mlp_ns: f64,
    /// Sigmoid-unit time, in ns.
    pub sigmoid_ns: f64,
    /// Dense FLOPs executed.
    pub flops: u64,
}

impl DenseStageTiming {
    /// Total dense-stage latency (the `MLP` component of Figure 14), in ns.
    pub fn total_ns(&self) -> f64 {
        self.bottom_mlp_ns + self.interaction_ns + self.top_mlp_ns + self.sigmoid_ns
    }

    /// Achieved GFLOP/s over the dense stage.
    pub fn achieved_gflops(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.total_ns()
        }
    }
}

/// The dense accelerator complex.
#[derive(Debug, Clone)]
pub struct DenseAccelerator {
    mlp_unit: MlpUnit,
    interaction_unit: FeatureInteractionUnit,
    sigmoid_unit: SigmoidUnit,
    weight_sram: SramBuffer,
    dense_feature_sram: SramBuffer,
    mlp_input_sram: SramBuffer,
    /// Pipeline reconfiguration overhead between layers, in ns.
    per_layer_overhead_ns: f64,
    weights_loaded: bool,
    /// Kernel backend executing the functional datapath.
    backend: KernelBackend,
    /// MLP ping/pong/pack scratch — models the on-chip activation SRAMs:
    /// buffers are sized once and reused for every request.
    ws: Workspace,
    /// Interaction-input staging buffer (`[num_features, dim]`).
    features: Vec<f32>,
    /// Interaction-output staging buffer (`[1, dim + pairs]`).
    interact_out: Vec<f32>,
}

impl DenseAccelerator {
    /// Creates the paper's dense accelerator: a 4×4 MLP PE array, 4
    /// interaction PEs and the Table III SRAM sizing.
    pub fn harpv2() -> Self {
        DenseAccelerator {
            mlp_unit: MlpUnit::harpv2(),
            interaction_unit: FeatureInteractionUnit::harpv2(),
            sigmoid_unit: SigmoidUnit::harpv2(),
            weight_sram: SramBuffer::mlp_weights_harpv2(),
            dense_feature_sram: SramBuffer::dense_features_harpv2(),
            mlp_input_sram: SramBuffer::mlp_inputs_harpv2(),
            per_layer_overhead_ns: 250.0,
            weights_loaded: false,
            backend: global_backend(),
            ws: Workspace::new(),
            features: Vec::new(),
            interact_out: Vec::new(),
        }
    }

    /// The kernel backend executing the functional datapath.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Selects the kernel backend for subsequent functional inferences.
    pub fn set_backend(&mut self, backend: KernelBackend) {
        self.backend = backend;
    }

    /// The MLP PE array.
    pub fn mlp_unit(&self) -> &MlpUnit {
        &self.mlp_unit
    }

    /// The feature-interaction unit.
    pub fn interaction_unit(&self) -> &FeatureInteractionUnit {
        &self.interaction_unit
    }

    /// The weight SRAM.
    pub fn weight_sram(&self) -> &SramBuffer {
        &self.weight_sram
    }

    /// Aggregate peak throughput of the dense complex in GFLOP/s
    /// (MLP array + interaction PEs).
    pub fn peak_gflops(&self) -> f64 {
        self.mlp_unit.peak_gflops()
            + self.interaction_unit.num_pes() as f64 * self.mlp_unit.pe_config().peak_gflops()
    }

    /// Returns `true` once model weights have been uploaded.
    pub fn weights_loaded(&self) -> bool {
        self.weights_loaded
    }

    /// Uploads a model's MLP weights into `SRAM_MLPmodel` (done once at
    /// boot; the weights persist across requests), accounting the row-major
    /// footprint from the configuration alone. Prefer
    /// [`DenseAccelerator::load_model_packed`] when the instantiated model
    /// is at hand: it accounts the panel layout actually served from.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the model's MLP
    /// parameters do not fit on chip.
    pub fn load_model(&mut self, config: &ModelConfig) -> Result<(), CentaurError> {
        self.weight_sram.clear();
        self.weight_sram.store(config.mlp_bytes())?;
        self.weights_loaded = true;
        Ok(())
    }

    /// Uploads an instantiated model's MLP weights in their **prepacked
    /// panel layout** — the resident form the prepacked GEMM path serves
    /// from, measured from the actual [`PrepackedWeights`] stores rather
    /// than derived from the configuration. Packing is a permutation, so
    /// the accounted bytes equal [`ModelConfig::mlp_bytes`] exactly; the
    /// point is that the SRAM model now tracks the representation the
    /// kernels really read.
    ///
    /// [`PrepackedWeights`]: centaur_dlrm::kernel::PrepackedWeights
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when the packed panels do
    /// not fit on chip.
    pub fn load_model_packed(&mut self, model: &DlrmModel) -> Result<(), CentaurError> {
        self.weight_sram.clear();
        self.weight_sram.store(model.mlp_packed_bytes() as u64)?;
        self.weights_loaded = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Functional path
    // ------------------------------------------------------------------

    /// Functionally executes the dense stage for one sample: bottom MLP over
    /// the dense features, feature interaction with the reduced embeddings,
    /// top MLP and sigmoid. Returns the event probability.
    ///
    /// The math runs on the configured [`KernelBackend`] through the
    /// accelerator's persistent staging buffers (fused GEMM + bias +
    /// activation per layer, no intermediate matrices): steady-state
    /// requests are allocation-free on the `Naive`/`Blocked` backends.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::NotInitialised`] when
    /// [`DenseAccelerator::load_model`] has not been called, and propagates
    /// shape errors from the datapath.
    pub fn forward_sample(
        &mut self,
        model: &DlrmModel,
        dense_row: &Matrix,
        reduced_embeddings: &Matrix,
    ) -> Result<f32, CentaurError> {
        if dense_row.rows() != 1 {
            return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                op: "dense features row",
                lhs: (1, dense_row.cols()),
                rhs: dense_row.shape(),
            }
            .into());
        }
        self.forward_sample_slice(model, dense_row.as_slice(), reduced_embeddings)
    }

    /// [`DenseAccelerator::forward_sample`] over a raw dense-feature row —
    /// the zero-allocation entry point used by the runtime's batched path.
    ///
    /// Mirrors `DlrmModel::forward_sample_ws` stage for stage, but cannot
    /// delegate to it: the hardware model's bookkeeping (SRAM refills, PE
    /// counters) is interleaved *between* the stages. Keep the two in sync
    /// when changing the staging layout.
    ///
    /// # Errors
    ///
    /// Same as [`DenseAccelerator::forward_sample`].
    pub fn forward_sample_slice(
        &mut self,
        model: &DlrmModel,
        dense_row: &[f32],
        reduced_embeddings: &Matrix,
    ) -> Result<f32, CentaurError> {
        if !self.weights_loaded {
            return Err(CentaurError::NotInitialised("MLP weight SRAM"));
        }
        // Per-request buffers are refilled for every inference.
        self.dense_feature_sram.clear();
        self.dense_feature_sram
            .store(std::mem::size_of_val(dense_row) as u64)?;

        let dim = reduced_embeddings.cols();
        let num_features = reduced_embeddings.rows() + 1;
        let interact_width = dim + num_features * (num_features - 1) / 2;
        grow(&mut self.features, num_features * dim);
        grow(&mut self.interact_out, interact_width);

        // 1. Bottom MLP into interaction feature row 0.
        {
            let DenseAccelerator { ws, features, .. } = self;
            let (bottom, cols) =
                model
                    .bottom_mlp()
                    .forward_ws(self.backend, dense_row, 1, dense_row.len(), ws)?;
            if cols != dim {
                return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                    op: "bottom MLP output vs embedding dim",
                    lhs: (1, dim),
                    rhs: (1, cols),
                }
                .into());
            }
            features[..dim].copy_from_slice(bottom);
        }
        self.mlp_unit
            .record_gemms(model.bottom_mlp().num_layers() as u64);
        self.features[dim..num_features * dim].copy_from_slice(reduced_embeddings.as_slice());

        // 2. Feature interaction over [bottom; reduced embeddings].
        {
            let DenseAccelerator {
                interaction_unit,
                features,
                interact_out,
                ..
            } = self;
            interaction_unit.interact_into(
                &features[..num_features * dim],
                num_features,
                dim,
                &mut interact_out[..interact_width],
            )?;
        }
        self.mlp_input_sram.clear();
        self.mlp_input_sram
            .store((interact_width * std::mem::size_of::<f32>()) as u64)?;

        // 3. Top MLP + 4. sigmoid.
        let DenseAccelerator {
            ws,
            interact_out,
            sigmoid_unit,
            ..
        } = self;
        let (top, _) = model.top_mlp().forward_ws(
            self.backend,
            &interact_out[..interact_width],
            1,
            interact_width,
            ws,
        )?;
        self.mlp_unit
            .record_gemms(model.top_mlp().num_layers() as u64);
        Ok(sigmoid_unit.apply(top[0]))
    }

    /// The **batch-major** functional dense stage: the whole batch flows
    /// through one GEMM per MLP layer (`m = batch`), the interaction runs
    /// as one batched pass and the sigmoid unit converts every logit in one
    /// sweep. `reduced_batch` is the EB-Streamer's batch-major output —
    /// each sample's `[num_tables * dim]` reduced embeddings back to back —
    /// and `out` receives one probability per sample.
    ///
    /// Per-request SRAMs are refilled in as-large-as-fit sample waves
    /// (double-buffered batch staging), so large batches stream through the
    /// same Table-III capacities the per-sample path models.
    ///
    /// Numerically identical (bitwise, per backend) to looping
    /// [`DenseAccelerator::forward_sample_slice`] over the batch.
    ///
    /// # Errors
    ///
    /// Same as [`DenseAccelerator::forward_sample`], plus a batch mismatch
    /// when `dense.rows()`, the reduced batch and `out` disagree.
    pub fn forward_batch_into(
        &mut self,
        model: &DlrmModel,
        dense: &Matrix,
        reduced_batch: &[f32],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        self.forward_batch_rows_into(
            model,
            dense.as_slice(),
            dense.rows(),
            dense.cols(),
            reduced_batch,
            out,
        )
    }

    /// [`DenseAccelerator::forward_batch_into`] over a raw row-major slice
    /// of dense-feature rows — the entry point of the runtime's **waved**
    /// batch pipeline, which carves a large batch into bounded sample
    /// waves and runs gather → dense per wave so each wave's staging stays
    /// cache-resident end to end.
    ///
    /// # Errors
    ///
    /// Same as [`DenseAccelerator::forward_batch_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch_rows_into(
        &mut self,
        model: &DlrmModel,
        dense_rows: &[f32],
        batch: usize,
        dense_cols: usize,
        reduced_batch: &[f32],
        out: &mut [f32],
    ) -> Result<(), CentaurError> {
        if !self.weights_loaded {
            return Err(CentaurError::NotInitialised("MLP weight SRAM"));
        }
        if dense_rows.len() != batch * dense_cols {
            return Err(centaur_dlrm::DlrmError::BatchMismatch {
                what: "dense elements vs batch rows",
                left: dense_rows.len(),
                right: batch * dense_cols,
            }
            .into());
        }
        let dim = model.config().embedding_dim;
        let num_tables = model.config().num_tables;
        if out.len() != batch {
            return Err(centaur_dlrm::DlrmError::BatchMismatch {
                what: "dense rows vs output slots",
                left: batch,
                right: out.len(),
            }
            .into());
        }
        if reduced_batch.len() != batch * num_tables * dim {
            return Err(centaur_dlrm::DlrmError::BatchMismatch {
                what: "reduced embedding elements vs batch",
                left: reduced_batch.len(),
                right: batch * num_tables * dim,
            }
            .into());
        }
        let num_features = num_tables + 1;
        let interact_width = dim + num_features * (num_features - 1) / 2;
        let stride = num_features * dim;
        grow(&mut self.features, batch * stride);
        grow(&mut self.interact_out, batch * interact_width);

        // Per-request buffers stream the batch in as-large-as-fit waves.
        Self::stage_batch(
            &mut self.dense_feature_sram,
            (dense_cols * std::mem::size_of::<f32>()) as u64,
            batch,
        )?;

        // 1. Bottom MLP over the whole batch — one GEMM per layer with
        //    m = batch — scattered into feature row 0 of every sample.
        {
            let DenseAccelerator { ws, features, .. } = self;
            let (bottom, cols) = model.bottom_mlp().forward_batch_ws(
                self.backend,
                dense_rows,
                batch,
                dense_cols,
                ws,
            )?;
            if cols != dim {
                return Err(centaur_dlrm::DlrmError::ShapeMismatch {
                    op: "bottom MLP output vs embedding dim",
                    lhs: (batch, dim),
                    rhs: (batch, cols),
                }
                .into());
            }
            for (src, dst) in bottom
                .chunks_exact(dim)
                .zip(features.chunks_exact_mut(stride))
            {
                dst[..dim].copy_from_slice(src);
            }
        }
        // One GEMM per layer for the whole batch, not one per sample.
        self.mlp_unit
            .record_gemms(model.bottom_mlp().num_layers() as u64);
        for (src, dst) in reduced_batch
            .chunks_exact(num_tables * dim)
            .zip(self.features.chunks_exact_mut(stride))
        {
            dst[dim..stride].copy_from_slice(src);
        }

        // 2. Batched feature interaction over every sample's
        //    [bottom; reduced embeddings] block.
        {
            let DenseAccelerator {
                interaction_unit,
                features,
                interact_out,
                ..
            } = self;
            interaction_unit.interact_batch_into(
                &features[..batch * stride],
                batch,
                num_features,
                dim,
                &mut interact_out[..batch * interact_width],
            )?;
        }
        Self::stage_batch(
            &mut self.mlp_input_sram,
            (interact_width * std::mem::size_of::<f32>()) as u64,
            batch,
        )?;

        // 3. Top MLP with m = batch + 4. one sigmoid sweep over the batch.
        let DenseAccelerator {
            ws,
            interact_out,
            sigmoid_unit,
            ..
        } = self;
        let (top, top_cols) = model.top_mlp().forward_batch_ws(
            self.backend,
            &interact_out[..batch * interact_width],
            batch,
            interact_width,
            ws,
        )?;
        self.mlp_unit
            .record_gemms(model.top_mlp().num_layers() as u64);
        if top_cols == 1 {
            sigmoid_unit.apply_slice(&top[..batch], out);
        } else {
            for (o, row) in out.iter_mut().zip(top.chunks_exact(top_cols)) {
                *o = sigmoid_unit.apply(row[0]);
            }
        }
        Ok(())
    }

    /// Refills a per-request SRAM with `batch` samples of `bytes_per_sample`
    /// each, in as many full-buffer waves as the capacity requires — the
    /// functional model of double-buffered batch staging.
    ///
    /// # Errors
    ///
    /// Returns [`CentaurError::CapacityExceeded`] when even a single sample
    /// does not fit (the same condition the per-sample path hits).
    fn stage_batch(
        sram: &mut SramBuffer,
        bytes_per_sample: u64,
        batch: usize,
    ) -> Result<(), CentaurError> {
        sram.clear();
        if bytes_per_sample == 0 || batch == 0 {
            return Ok(());
        }
        let per_wave = (sram.capacity_bytes() / bytes_per_sample).max(1) as usize;
        let mut remaining = batch;
        while remaining > 0 {
            let wave = remaining.min(per_wave);
            sram.clear();
            sram.store(bytes_per_sample * wave as u64)?;
            remaining -= wave;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Timing path
    // ------------------------------------------------------------------

    /// Predicts the dense-stage timing for one batched request against
    /// `config` (the `MLP` component of Figure 14).
    pub fn execute_timing(&self, config: &ModelConfig, batch: usize) -> DenseStageTiming {
        let batch = batch.max(1);
        let bottom_mlp_ns =
            self.mlp_unit
                .mlp_time_ns(&config.bottom_mlp_dims(), batch, self.per_layer_overhead_ns);
        let top_mlp_ns =
            self.mlp_unit
                .mlp_time_ns(&config.top_mlp_dims(), batch, self.per_layer_overhead_ns);
        let interaction_ns = self.interaction_unit.batch_time_ns(
            config.interaction_features(),
            config.embedding_dim,
            batch,
        );
        let sigmoid_ns = self.sigmoid_unit.latency_ns(batch);
        DenseStageTiming {
            bottom_mlp_ns,
            interaction_ns,
            top_mlp_ns,
            sigmoid_ns,
            flops: config.dense_flops_per_sample() * batch as u64,
        }
    }
}

impl Default for DenseAccelerator {
    fn default() -> Self {
        DenseAccelerator::harpv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;

    fn tiny_model() -> DlrmModel {
        let config = ModelConfig::builder()
            .name("tiny")
            .num_tables(3)
            .rows_per_table(64)
            .embedding_dim(8)
            .lookups_per_table(4)
            .dense_features(5)
            .bottom_mlp(&[16, 8])
            .top_mlp(&[16, 8])
            .build()
            .unwrap();
        DlrmModel::random(&config, 11).unwrap()
    }

    #[test]
    fn functional_forward_matches_reference_model() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        acc.load_model(model.config()).unwrap();

        let dense = Matrix::from_fn(1, 5, |_, c| c as f32 * 0.3 - 0.7);
        let indices: Vec<Vec<u32>> = (0..3)
            .map(|t| vec![t as u32 * 5, t as u32 * 5 + 1])
            .collect();
        let reduced = model.embeddings().sparse_lengths_reduce(&indices).unwrap();

        let ours = acc.forward_sample(&model, &dense, &reduced).unwrap();
        let reference = model
            .forward_breakdown(&dense, &indices)
            .unwrap()
            .probability;
        assert!(
            (ours - reference).abs() < 1e-5,
            "accelerator {ours} vs reference {reference}"
        );
    }

    #[test]
    fn batched_forward_matches_per_sample_loop() {
        let model = tiny_model();
        let mut per_sample = DenseAccelerator::harpv2();
        per_sample.load_model(model.config()).unwrap();
        let mut batched = DenseAccelerator::harpv2();
        batched.load_model(model.config()).unwrap();

        let batch = 5;
        let dense = Matrix::from_fn(batch, 5, |r, c| (r as f32 - c as f32) * 0.2);
        let batch_indices: Vec<Vec<Vec<u32>>> = (0..batch)
            .map(|s| (0..3).map(|t| vec![(s * 7 + t) as u32 % 64]).collect())
            .collect();
        // Batch-major reduced staging buffer: [batch, num_tables * dim].
        let mut reduced_batch = vec![0.0f32; batch * 3 * 8];
        for (s, indices) in batch_indices.iter().enumerate() {
            let mut m = Matrix::zeros(3, 8);
            model
                .embeddings()
                .sparse_lengths_reduce_into(indices, &mut m)
                .unwrap();
            reduced_batch[s * 24..(s + 1) * 24].copy_from_slice(m.as_slice());
        }

        let mut batch_out = vec![0.0f32; batch];
        batched
            .forward_batch_into(&model, &dense, &reduced_batch, &mut batch_out)
            .unwrap();
        for (s, indices) in batch_indices.iter().enumerate() {
            let reduced = model.embeddings().sparse_lengths_reduce(indices).unwrap();
            let single = per_sample
                .forward_sample_slice(&model, dense.row(s), &reduced)
                .unwrap();
            assert_eq!(batch_out[s], single, "sample {s} diverged");
        }
    }

    #[test]
    fn batched_forward_records_one_gemm_per_layer() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        acc.load_model(model.config()).unwrap();
        let batch = 6;
        let dense = Matrix::zeros(batch, 5);
        let reduced_batch = vec![0.0f32; batch * 3 * 8];
        let mut out = vec![0.0f32; batch];
        acc.forward_batch_into(&model, &dense, &reduced_batch, &mut out)
            .unwrap();
        // One GEMM per MLP layer for the *whole* batch, not one per sample…
        let layers = (model.bottom_mlp().num_layers() + model.top_mlp().num_layers()) as u64;
        assert_eq!(acc.mlp_unit().gemms_executed(), layers);
        // …while every sample still occupies an interaction PE.
        assert_eq!(acc.interaction_unit().interactions_executed(), batch as u64);
    }

    #[test]
    fn functional_forward_advances_pe_counters() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        acc.load_model(model.config()).unwrap();
        let dense = Matrix::zeros(1, 5);
        let reduced = Matrix::zeros(3, 8);
        acc.forward_sample(&model, &dense, &reduced).unwrap();
        // Every MLP layer occupies the array once per sample.
        let layers = (model.bottom_mlp().num_layers() + model.top_mlp().num_layers()) as u64;
        assert_eq!(acc.mlp_unit().gemms_executed(), layers);
        assert_eq!(acc.interaction_unit().interactions_executed(), 1);
    }

    #[test]
    fn failed_requests_do_not_advance_pe_counters() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        acc.load_model(model.config()).unwrap();
        // Wrong dense width: the bottom MLP rejects the request.
        let bad_dense = Matrix::zeros(1, 3);
        let reduced = Matrix::zeros(3, 8);
        assert!(acc.forward_sample(&model, &bad_dense, &reduced).is_err());
        assert_eq!(acc.mlp_unit().gemms_executed(), 0);
        assert_eq!(acc.interaction_unit().interactions_executed(), 0);
    }

    #[test]
    fn forward_requires_loaded_weights() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        let dense = Matrix::zeros(1, 5);
        let reduced = Matrix::zeros(3, 8);
        assert!(matches!(
            acc.forward_sample(&model, &dense, &reduced),
            Err(CentaurError::NotInitialised(_))
        ));
    }

    #[test]
    fn packed_weight_load_accounts_resident_panels() {
        let model = tiny_model();
        let mut acc = DenseAccelerator::harpv2();
        acc.load_model_packed(&model).unwrap();
        assert!(acc.weights_loaded());
        // The panel-resident layout is a permutation of the row-major
        // weights: the SRAM accounting must match the Table-I footprint
        // bit for bit, measured from the actual PrepackedWeights stores.
        assert_eq!(
            acc.weight_sram().used_bytes(),
            model.mlp_packed_bytes() as u64
        );
        assert_eq!(
            acc.weight_sram().used_bytes(),
            model.config().mlp_bytes(),
            "prepacking must not inflate the on-chip weight footprint"
        );
    }

    #[test]
    fn every_paper_model_fits_on_chip() {
        let mut acc = DenseAccelerator::harpv2();
        for model in PaperModel::all() {
            assert!(acc.load_model(&model.config()).is_ok(), "{model}");
        }
        assert!(acc.weights_loaded());
    }

    #[test]
    fn peak_gflops_matches_paper() {
        let acc = DenseAccelerator::harpv2();
        assert!((acc.peak_gflops() - 313.0).abs() < 1.5);
    }

    #[test]
    fn timing_scales_with_batch_and_model_weight() {
        let acc = DenseAccelerator::harpv2();
        let light = PaperModel::Dlrm1.config();
        let heavy = PaperModel::Dlrm6.config();
        let light_b1 = acc.execute_timing(&light, 1);
        let light_b128 = acc.execute_timing(&light, 128);
        let heavy_b1 = acc.execute_timing(&heavy, 1);
        assert!(light_b128.total_ns() > light_b1.total_ns());
        assert!(heavy_b1.total_ns() > light_b1.total_ns());
        assert!(light_b1.flops > 0);
        assert!(light_b128.achieved_gflops() > light_b1.achieved_gflops());
    }

    #[test]
    fn fpga_dense_stage_is_faster_than_cpu_rooflines_suggest() {
        // At batch 128 the dense accelerator should sustain a large fraction
        // of its 313 GFLOPS on the heavyweight model.
        let acc = DenseAccelerator::harpv2();
        let t = acc.execute_timing(&PaperModel::Dlrm6.config(), 128);
        assert!(t.achieved_gflops() > 50.0, "{}", t.achieved_gflops());
    }
}
