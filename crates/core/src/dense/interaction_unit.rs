//! The feature-interaction unit: four PEs dedicated to the batched GEMM
//! that computes all pairwise dot products between the reduced embeddings
//! and the bottom-MLP output (Figures 9 and 11).

use crate::dense::pe::{PeConfig, ProcessingEngine};
use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::{DlrmError, FeatureInteraction};
use serde::{Deserialize, Serialize};

/// The feature-interaction unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureInteractionUnit {
    num_pes: usize,
    pe: ProcessingEngine,
    interactions_executed: u64,
}

impl FeatureInteractionUnit {
    /// Creates a unit with `num_pes` processing engines.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is zero.
    pub fn new(num_pes: usize, pe_config: PeConfig) -> Self {
        assert!(
            num_pes > 0,
            "feature interaction unit needs at least one PE"
        );
        FeatureInteractionUnit {
            num_pes,
            pe: ProcessingEngine::new(pe_config),
            interactions_executed: 0,
        }
    }

    /// The paper's configuration: four 32×32-tile PEs.
    pub fn harpv2() -> Self {
        FeatureInteractionUnit::new(4, PeConfig::harpv2())
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Interactions executed so far.
    pub fn interactions_executed(&self) -> u64 {
        self.interactions_executed
    }

    /// Functionally computes the interaction output for one sample: the
    /// bottom-MLP output (row 0 of `features`) concatenated with every
    /// pairwise dot product — identical to the reference
    /// [`FeatureInteraction::interact`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the reference operator.
    pub fn interact(&mut self, features: &Matrix) -> Result<Matrix, DlrmError> {
        let reference = FeatureInteraction::new(features.rows(), features.cols())?;
        let out = reference.interact(features)?;
        self.interactions_executed += 1;
        Ok(out)
    }

    /// Allocation-free variant of [`FeatureInteractionUnit::interact`] over
    /// raw buffers: `features` is `[num_features, dim]` row-major, `out`
    /// receives the `[1, dim + pairs]` top-MLP input.
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] for degenerate shapes.
    pub fn interact_into(
        &mut self,
        features: &[f32],
        num_features: usize,
        dim: usize,
        out: &mut [f32],
    ) -> Result<(), DlrmError> {
        let reference = FeatureInteraction::new(num_features, dim)?;
        reference.interact_into(features, out);
        self.interactions_executed += 1;
        Ok(())
    }

    /// Batch-major [`FeatureInteractionUnit::interact_into`]: `features` is
    /// the `[batch, num_features * dim]` matrix and `out` receives the
    /// `[batch, dim + pairs]` top-MLP input in one pass. Counts one executed
    /// interaction per sample (each sample still occupies a PE).
    ///
    /// # Errors
    ///
    /// Returns [`DlrmError::InvalidConfig`] for degenerate shapes.
    pub fn interact_batch_into(
        &mut self,
        features: &[f32],
        batch: usize,
        num_features: usize,
        dim: usize,
        out: &mut [f32],
    ) -> Result<(), DlrmError> {
        let reference = FeatureInteraction::new(num_features, dim)?;
        reference.interact_batch_into(features, batch, out);
        self.interactions_executed += batch as u64;
        Ok(())
    }

    /// PE cycles for the `R · Rᵀ` batched GEMM of one sample with
    /// `num_features` vectors of width `dim` (partial tiles cost fewer
    /// cycles, down to the pipeline-fill minimum).
    pub fn interaction_cycles(&self, num_features: usize, dim: usize) -> f64 {
        let t = self.pe.config().tile_dim;
        let mut cycles = 0.0;
        for fi in (0..num_features).step_by(t) {
            let ft = (num_features - fi).min(t);
            for fj in (0..num_features).step_by(t) {
                let gt = (num_features - fj).min(t);
                for ki in (0..dim).step_by(t) {
                    let kt = (dim - ki).min(t);
                    cycles += self.pe.config().gemm_cycles(ft, gt, kt);
                }
            }
        }
        cycles
    }

    /// Time in nanoseconds for one sample's interaction GEMM on a single PE.
    pub fn interaction_time_ns(&self, num_features: usize, dim: usize) -> f64 {
        self.pe
            .config()
            .cycles_to_ns(self.interaction_cycles(num_features, dim))
    }

    /// Time for a whole batch of interactions, in nanoseconds. Independent
    /// samples are distributed across the unit's PEs.
    pub fn batch_time_ns(&self, num_features: usize, dim: usize, batch: usize) -> f64 {
        let per_sample = self.interaction_cycles(num_features, dim);
        let waves = batch.max(1).div_ceil(self.num_pes) as f64;
        self.pe.config().cycles_to_ns(waves * per_sample)
    }
}

impl Default for FeatureInteractionUnit {
    fn default() -> Self {
        FeatureInteractionUnit::harpv2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_interaction_matches_reference() {
        let mut unit = FeatureInteractionUnit::harpv2();
        let features = Matrix::from_fn(6, 32, |r, c| ((r * 17 + c) % 9) as f32 - 4.0);
        let ours = unit.interact(&features).unwrap();
        let reference = FeatureInteraction::new(6, 32)
            .unwrap()
            .interact(&features)
            .unwrap();
        assert_eq!(ours, reference);
        assert_eq!(unit.interactions_executed(), 1);
        assert_eq!(ours.cols(), 32 + 15);
    }

    #[test]
    fn timing_grows_with_feature_count() {
        let unit = FeatureInteractionUnit::harpv2();
        let few = unit.interaction_time_ns(6, 32);
        let many = unit.interaction_time_ns(51, 32);
        assert!(many > few);
        assert!(few > 0.0);
    }

    #[test]
    fn batch_time_scales_with_batch_waves() {
        let unit = FeatureInteractionUnit::harpv2();
        let one = unit.batch_time_ns(6, 32, 1);
        // Up to 4 samples run concurrently on the 4 PEs.
        assert_eq!(unit.batch_time_ns(6, 32, 4), one);
        let eight = unit.batch_time_ns(6, 32, 8);
        assert!((eight - 2.0 * one).abs() < 1e-9);
        assert_eq!(unit.batch_time_ns(6, 32, 0), one);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        FeatureInteractionUnit::new(0, PeConfig::harpv2());
    }
}
