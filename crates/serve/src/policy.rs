//! Batching policies for the serving layer.

use std::time::Duration;

/// How queued requests are coalesced into accelerator batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Batch-1 FIFO: every request runs alone, strictly in arrival order —
    /// the baseline an un-batched deployment would serve.
    Fifo,
    /// Dynamic batching: a worker coalesces queued requests into one batch,
    /// dispatching as soon as `max_batch` requests are buffered or
    /// `max_wait` has elapsed since the batch was opened — whichever comes
    /// first. Under saturating load the wait never triggers (the queue
    /// always holds a full batch); under light load it bounds the latency
    /// cost of waiting for co-riders.
    Dynamic {
        /// Largest coalesced batch handed to the accelerator.
        max_batch: usize,
        /// Longest a batch is held open waiting to fill.
        max_wait: Duration,
    },
    /// Deadline-aware dynamic batching: coalesces like [`Dynamic`], but the
    /// hold-open window additionally closes early when the *oldest* held
    /// request's remaining SLO slack drops below `service_estimate` — the
    /// batch dispatches partial rather than letting a request it already
    /// holds expire while waiting for co-riders.
    ///
    /// [`Dynamic`]: BatchPolicy::Dynamic
    Deadline {
        /// Largest coalesced batch handed to the accelerator.
        max_batch: usize,
        /// Longest a batch is held open waiting to fill.
        max_wait: Duration,
        /// Expected service time of one dispatched batch — the margin the
        /// oldest request needs before its deadline for the answer to still
        /// arrive in time.
        service_estimate: Duration,
    },
}

impl BatchPolicy {
    /// A production-shaped dynamic policy: one full accelerator wave per
    /// batch, held open at most 1 ms.
    pub fn dynamic_wave() -> BatchPolicy {
        BatchPolicy::Dynamic {
            max_batch: centaur::BATCH_WAVE_SAMPLES,
            max_wait: Duration::from_millis(1),
        }
    }

    /// The deadline-aware twin of [`dynamic_wave`]: same wave-sized batch
    /// and 1 ms hold-open, dispatching early when the oldest held request
    /// has less than `service_estimate` of SLO slack left.
    ///
    /// [`dynamic_wave`]: BatchPolicy::dynamic_wave
    pub fn deadline_wave(service_estimate: Duration) -> BatchPolicy {
        BatchPolicy::Deadline {
            max_batch: centaur::BATCH_WAVE_SAMPLES,
            max_wait: Duration::from_millis(1),
            service_estimate,
        }
    }

    /// Largest batch this policy dispatches.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fifo => 1,
            BatchPolicy::Dynamic { max_batch, .. } | BatchPolicy::Deadline { max_batch, .. } => {
                max_batch.max(1)
            }
        }
    }

    /// Longest a batch is held open waiting to fill.
    pub fn max_wait(&self) -> Duration {
        match *self {
            BatchPolicy::Fifo => Duration::ZERO,
            BatchPolicy::Dynamic { max_wait, .. } | BatchPolicy::Deadline { max_wait, .. } => {
                max_wait
            }
        }
    }

    /// The slack margin below which a held batch dispatches early, or `None`
    /// for deadline-oblivious policies.
    pub fn dispatch_slack(&self) -> Option<Duration> {
        match *self {
            BatchPolicy::Deadline {
                service_estimate, ..
            } => Some(service_estimate),
            _ => None,
        }
    }

    /// Short label for bench/report output: `fifo`, `dynamic64w1ms`,
    /// `deadline64w1ms`, … — the hold-open window is part of the label so
    /// bench cells differing only in `max_wait` stay distinguishable.
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Fifo => "fifo".to_string(),
            BatchPolicy::Dynamic {
                max_batch,
                max_wait,
            } => format!("dynamic{max_batch}w{}", wait_label(max_wait)),
            BatchPolicy::Deadline {
                max_batch,
                max_wait,
                ..
            } => format!("deadline{max_batch}w{}", wait_label(max_wait)),
        }
    }
}

/// Compact duration label: whole milliseconds as `1ms`, sub-millisecond
/// windows as `200us`.
fn wait_label(wait: Duration) -> String {
    let micros = wait.as_micros();
    if micros.is_multiple_of(1_000) {
        format!("{}ms", micros / 1_000)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_batch_one_no_wait() {
        assert_eq!(BatchPolicy::Fifo.max_batch(), 1);
        assert_eq!(BatchPolicy::Fifo.max_wait(), Duration::ZERO);
        assert_eq!(BatchPolicy::Fifo.dispatch_slack(), None);
        assert_eq!(BatchPolicy::Fifo.label(), "fifo");
    }

    #[test]
    fn dynamic_clamps_and_labels_with_the_hold_open_window() {
        let p = BatchPolicy::Dynamic {
            max_batch: 0,
            max_wait: Duration::from_micros(200),
        };
        assert_eq!(p.max_batch(), 1);
        assert_eq!(p.label(), "dynamic0w200us");
        let wave = BatchPolicy::dynamic_wave();
        assert_eq!(wave.max_batch(), centaur::BATCH_WAVE_SAMPLES);
        assert_eq!(wave.dispatch_slack(), None);
        assert_eq!(
            wave.label(),
            format!("dynamic{}w1ms", centaur::BATCH_WAVE_SAMPLES)
        );
    }

    #[test]
    fn deadline_wave_carries_the_service_estimate() {
        let est = Duration::from_micros(400);
        let p = BatchPolicy::deadline_wave(est);
        assert_eq!(p.max_batch(), centaur::BATCH_WAVE_SAMPLES);
        assert_eq!(p.max_wait(), Duration::from_millis(1));
        assert_eq!(p.dispatch_slack(), Some(est));
        assert_eq!(
            p.label(),
            format!("deadline{}w1ms", centaur::BATCH_WAVE_SAMPLES)
        );
    }
}
