//! Batching policies for the serving layer.

use centaur_dlrm::ModelConfig;
use std::time::Duration;

/// How queued requests are coalesced into accelerator batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Batch-1 FIFO: every request runs alone, strictly in arrival order —
    /// the baseline an un-batched deployment would serve.
    Fifo,
    /// Dynamic batching: a worker coalesces queued requests into one batch,
    /// dispatching as soon as `max_batch` requests are buffered or
    /// `max_wait` has elapsed since the batch was opened — whichever comes
    /// first. Under saturating load the wait never triggers (the queue
    /// always holds a full batch); under light load it bounds the latency
    /// cost of waiting for co-riders.
    Dynamic {
        /// Largest coalesced batch handed to the accelerator.
        max_batch: usize,
        /// Longest a batch is held open waiting to fill.
        max_wait: Duration,
    },
    /// Deadline-aware dynamic batching: coalesces like [`Dynamic`], but the
    /// hold-open window additionally closes early when the *oldest* held
    /// request's remaining SLO slack drops below `service_estimate` — the
    /// batch dispatches partial rather than letting a request it already
    /// holds expire while waiting for co-riders.
    ///
    /// [`Dynamic`]: BatchPolicy::Dynamic
    Deadline {
        /// Largest coalesced batch handed to the accelerator.
        max_batch: usize,
        /// Longest a batch is held open waiting to fill.
        max_wait: Duration,
        /// Expected service time of one dispatched batch — the margin the
        /// oldest request needs before its deadline for the answer to still
        /// arrive in time.
        service_estimate: Duration,
    },
}

impl BatchPolicy {
    /// A production-shaped dynamic policy: one full accelerator wave per
    /// batch, held open at most 1 ms.
    pub fn dynamic_wave() -> BatchPolicy {
        BatchPolicy::Dynamic {
            max_batch: centaur::BATCH_WAVE_SAMPLES,
            max_wait: Duration::from_millis(1),
        }
    }

    /// The deadline-aware twin of [`dynamic_wave`]: same wave-sized batch
    /// and 1 ms hold-open, dispatching early when the oldest held request
    /// has less than `service_estimate` of SLO slack left.
    ///
    /// [`dynamic_wave`]: BatchPolicy::dynamic_wave
    pub fn deadline_wave(service_estimate: Duration) -> BatchPolicy {
        BatchPolicy::Deadline {
            max_batch: centaur::BATCH_WAVE_SAMPLES,
            max_wait: Duration::from_millis(1),
            service_estimate,
        }
    }

    /// Largest batch this policy dispatches.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fifo => 1,
            BatchPolicy::Dynamic { max_batch, .. } | BatchPolicy::Deadline { max_batch, .. } => {
                max_batch.max(1)
            }
        }
    }

    /// Longest a batch is held open waiting to fill.
    pub fn max_wait(&self) -> Duration {
        match *self {
            BatchPolicy::Fifo => Duration::ZERO,
            BatchPolicy::Dynamic { max_wait, .. } | BatchPolicy::Deadline { max_wait, .. } => {
                max_wait
            }
        }
    }

    /// The slack margin below which a held batch dispatches early, or `None`
    /// for deadline-oblivious policies.
    pub fn dispatch_slack(&self) -> Option<Duration> {
        match *self {
            BatchPolicy::Deadline {
                service_estimate, ..
            } => Some(service_estimate),
            _ => None,
        }
    }

    /// Short label for bench/report output: `fifo`, `dynamic64w1ms`,
    /// `deadline64w1ms e400us`, … — the hold-open window is part of the
    /// label so bench cells differing only in `max_wait` stay
    /// distinguishable, and a deadline policy's label encodes its
    /// `service_estimate` so per-tenant calibrated policies stay
    /// distinguishable too.
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Fifo => "fifo".to_string(),
            BatchPolicy::Dynamic {
                max_batch,
                max_wait,
            } => format!("dynamic{max_batch}w{}", wait_label(max_wait)),
            BatchPolicy::Deadline {
                max_batch,
                max_wait,
                service_estimate,
            } => format!(
                "deadline{max_batch}w{}e{}",
                wait_label(max_wait),
                wait_label(service_estimate)
            ),
        }
    }
}

/// Relative per-sample serving cost of a model configuration: dense MLP
/// flops plus the bytes its sparse gathers, index streams and dense
/// activations move. Dimensionally a mix of flops and bytes, which is fine —
/// it is only ever used as a *ratio* between two configs on the same
/// hardware, where both terms scale the same way with model size.
pub fn relative_sample_cost(config: &ModelConfig) -> f64 {
    (config.dense_flops_per_sample()
        + config.gathered_bytes_per_sample()
        + config.index_bytes_per_sample()
        + config.dense_bytes_per_sample()) as f64
}

/// Calibrates a per-tenant `service_estimate` from a measured base: scales
/// `base` (measured for `base_config`, e.g. the capacity-probe model) by the
/// relative per-sample cost of `config`. A DLRM(6) batch costs ~6× a DLRM(1)
/// batch, so one shared constant either over-holds the light tenant's
/// batches or under-protects the heavy tenant's deadlines.
pub fn scaled_service_estimate(
    base: Duration,
    base_config: &ModelConfig,
    config: &ModelConfig,
) -> Duration {
    let ratio = relative_sample_cost(config) / relative_sample_cost(base_config);
    Duration::from_secs_f64(base.as_secs_f64() * ratio)
}

/// Compact duration label: whole milliseconds as `1ms`, sub-millisecond
/// windows as `200us`.
fn wait_label(wait: Duration) -> String {
    let micros = wait.as_micros();
    if micros.is_multiple_of(1_000) {
        format!("{}ms", micros / 1_000)
    } else {
        format!("{micros}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_batch_one_no_wait() {
        assert_eq!(BatchPolicy::Fifo.max_batch(), 1);
        assert_eq!(BatchPolicy::Fifo.max_wait(), Duration::ZERO);
        assert_eq!(BatchPolicy::Fifo.dispatch_slack(), None);
        assert_eq!(BatchPolicy::Fifo.label(), "fifo");
    }

    #[test]
    fn dynamic_clamps_and_labels_with_the_hold_open_window() {
        let p = BatchPolicy::Dynamic {
            max_batch: 0,
            max_wait: Duration::from_micros(200),
        };
        assert_eq!(p.max_batch(), 1);
        assert_eq!(p.label(), "dynamic0w200us");
        let wave = BatchPolicy::dynamic_wave();
        assert_eq!(wave.max_batch(), centaur::BATCH_WAVE_SAMPLES);
        assert_eq!(wave.dispatch_slack(), None);
        assert_eq!(
            wave.label(),
            format!("dynamic{}w1ms", centaur::BATCH_WAVE_SAMPLES)
        );
    }

    #[test]
    fn deadline_wave_carries_the_service_estimate() {
        let est = Duration::from_micros(400);
        let p = BatchPolicy::deadline_wave(est);
        assert_eq!(p.max_batch(), centaur::BATCH_WAVE_SAMPLES);
        assert_eq!(p.max_wait(), Duration::from_millis(1));
        assert_eq!(p.dispatch_slack(), Some(est));
        assert_eq!(
            p.label(),
            format!("deadline{}w1mse400us", centaur::BATCH_WAVE_SAMPLES),
            "label encodes the service estimate"
        );
        let p2 = BatchPolicy::deadline_wave(Duration::from_millis(2));
        assert_eq!(
            p2.label(),
            format!("deadline{}w1mse2ms", centaur::BATCH_WAVE_SAMPLES),
            "differently calibrated tenants get distinguishable labels"
        );
    }

    #[test]
    fn service_estimates_scale_with_model_cost() {
        use centaur_dlrm::PaperModel;
        let light = PaperModel::Dlrm1.config();
        let heavy = PaperModel::Dlrm6.config();
        let ratio = relative_sample_cost(&heavy) / relative_sample_cost(&light);
        assert!(
            (5.0..9.0).contains(&ratio),
            "a DLRM(6) sample costs ~6x a DLRM(1) sample, got {ratio:.2}x"
        );
        let base = Duration::from_micros(500);
        let scaled = scaled_service_estimate(base, &light, &heavy);
        let expected = base.as_secs_f64() * ratio;
        assert!((scaled.as_secs_f64() - expected).abs() < 1e-9);
        assert_eq!(
            scaled_service_estimate(base, &light, &light),
            base,
            "same config scales by exactly 1"
        );
    }
}
