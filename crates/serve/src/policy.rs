//! Batching policies for the serving layer.

use std::time::Duration;

/// How queued requests are coalesced into accelerator batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Batch-1 FIFO: every request runs alone, strictly in arrival order —
    /// the baseline an un-batched deployment would serve.
    Fifo,
    /// Dynamic batching: a worker coalesces queued requests into one batch,
    /// dispatching as soon as `max_batch` requests are buffered or
    /// `max_wait` has elapsed since the batch was opened — whichever comes
    /// first. Under saturating load the wait never triggers (the queue
    /// always holds a full batch); under light load it bounds the latency
    /// cost of waiting for co-riders.
    Dynamic {
        /// Largest coalesced batch handed to the accelerator.
        max_batch: usize,
        /// Longest a batch is held open waiting to fill.
        max_wait: Duration,
    },
}

impl BatchPolicy {
    /// A production-shaped dynamic policy: one full accelerator wave per
    /// batch, held open at most 1 ms.
    pub fn dynamic_wave() -> BatchPolicy {
        BatchPolicy::Dynamic {
            max_batch: centaur::BATCH_WAVE_SAMPLES,
            max_wait: Duration::from_millis(1),
        }
    }

    /// Largest batch this policy dispatches.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fifo => 1,
            BatchPolicy::Dynamic { max_batch, .. } => max_batch.max(1),
        }
    }

    /// Longest a batch is held open waiting to fill.
    pub fn max_wait(&self) -> Duration {
        match *self {
            BatchPolicy::Fifo => Duration::ZERO,
            BatchPolicy::Dynamic { max_wait, .. } => max_wait,
        }
    }

    /// Short label for bench/report output (`fifo`, `dynamic64`, …).
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Fifo => "fifo".to_string(),
            BatchPolicy::Dynamic { max_batch, .. } => format!("dynamic{max_batch}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_is_batch_one_no_wait() {
        assert_eq!(BatchPolicy::Fifo.max_batch(), 1);
        assert_eq!(BatchPolicy::Fifo.max_wait(), Duration::ZERO);
        assert_eq!(BatchPolicy::Fifo.label(), "fifo");
    }

    #[test]
    fn dynamic_clamps_and_labels() {
        let p = BatchPolicy::Dynamic {
            max_batch: 0,
            max_wait: Duration::from_micros(200),
        };
        assert_eq!(p.max_batch(), 1);
        let wave = BatchPolicy::dynamic_wave();
        assert_eq!(wave.max_batch(), centaur::BATCH_WAVE_SAMPLES);
        assert_eq!(
            wave.label(),
            format!("dynamic{}", centaur::BATCH_WAVE_SAMPLES)
        );
    }
}
