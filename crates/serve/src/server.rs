//! The serving backend abstraction: how a replica worker turns one popped
//! batch of [`QueuedRequest`]s into probabilities.
//!
//! The queue/supervision machinery (pop, publish-in-flight, retry, restart)
//! is the same whether a replica serves one model or routes a merged
//! multi-tenant stream across several; [`BatchServer`] is the seam between
//! them. [`SoloServer`] is the single-model backend every pre-mix entry
//! point uses; `centaur_serve::mix::MixServer` is the shared-pool backend
//! that dispatches each request to its tenant's engine.

use crate::queue::QueuedRequest;
use crate::stage::ReplicaStage;
use centaur::{CentaurError, CentaurRuntime};
use centaur_dlrm::InferenceRequest;

/// One replica's serving backend: stages the requests a popped batch points
/// at, runs the accelerator path, and yields one probability per batch
/// entry.
pub trait BatchServer {
    /// Serves `batch`, writing one probability per entry into `out`
    /// (cleared first, same order as `batch`). An error fails the whole
    /// attempt — the supervised loop then re-serves request-by-request so a
    /// poison request cannot burn its co-riders' retry budgets.
    ///
    /// # Errors
    ///
    /// Returns the accelerator datapath error that failed the attempt.
    fn serve_batch(
        &mut self,
        batch: &[QueuedRequest],
        out: &mut Vec<f32>,
    ) -> Result<(), CentaurError>;

    /// The wire-level id of the pre-generated request a
    /// [`QueuedRequest::index`] refers to.
    fn request_id(&self, index: usize) -> u64;
}

/// The single-model backend: one runtime shard, one staging buffer, one
/// request set. Steady state allocates nothing once the staging buffers
/// reach their high-water marks.
pub struct SoloServer<'a> {
    runtime: CentaurRuntime,
    stage: ReplicaStage,
    requests: &'a [InferenceRequest],
    staged: Vec<&'a InferenceRequest>,
}

impl<'a> SoloServer<'a> {
    /// A backend serving `requests` through `runtime`, staging up to
    /// `max_batch` requests per dispatch.
    pub fn new(
        runtime: CentaurRuntime,
        requests: &'a [InferenceRequest],
        max_batch: usize,
    ) -> Self {
        let config = runtime.model().config().clone();
        SoloServer {
            runtime,
            stage: ReplicaStage::new(&config, max_batch),
            requests,
            staged: Vec::with_capacity(max_batch),
        }
    }
}

impl BatchServer for SoloServer<'_> {
    fn serve_batch(
        &mut self,
        batch: &[QueuedRequest],
        out: &mut Vec<f32>,
    ) -> Result<(), CentaurError> {
        self.staged.clear();
        self.staged
            .extend(batch.iter().map(|q| &self.requests[q.index]));
        let probabilities = self.stage.run_batch(&mut self.runtime, &self.staged)?;
        out.clear();
        out.extend_from_slice(probabilities);
        Ok(())
    }

    fn request_id(&self, index: usize) -> u64 {
        self.requests[index].id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur::CentaurConfig;
    use centaur_dlrm::{DlrmModel, PaperModel};
    use centaur_workload::IndexDistribution;

    #[test]
    fn solo_server_serves_batches_and_echoes_ids() {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(256);
        let model = DlrmModel::random(&config, 3).unwrap();
        let requests = crate::harness::generate_requests(&config, IndexDistribution::Uniform, 4, 8);
        let runtime = CentaurRuntime::new(model, CentaurConfig::harpv2()).unwrap();
        let mut server = SoloServer::new(runtime, &requests, 4);
        let batch: Vec<QueuedRequest> = (0..4).map(|i| QueuedRequest::new(i, 0.0)).collect();
        let mut out = Vec::new();
        server.serve_batch(&batch, &mut out).unwrap();
        assert_eq!(out.len(), 4, "one probability per batch entry");
        assert!(out.iter().all(|p| (0.0..=1.0).contains(p)));
        assert_eq!(server.request_id(3), requests[3].id);
        // A second serve reuses the buffers and can shrink the batch.
        server.serve_batch(&batch[..2], &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }
}
