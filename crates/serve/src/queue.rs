//! The shared arrival queue between the load generator and the replica
//! workers: requests land as they arrive and workers coalesce them into
//! batches according to the [`BatchPolicy`].

use crate::policy::BatchPolicy;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued query: which pre-generated request arrived, and when it was
/// scheduled to arrive (seconds from experiment start — the open-loop
/// latency clock starts here, not at enqueue time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Index into the experiment's pre-generated request set.
    pub index: usize,
    /// Scheduled arrival offset in seconds from experiment start.
    pub arrival_s: f64,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<QueuedRequest>,
    closed: bool,
}

/// MPMC arrival queue (mutex + condvar; no external dependencies). The
/// generator pushes, every replica worker pops batches; closing wakes all
/// waiters so workers drain the tail and exit.
#[derive(Debug)]
pub struct ArrivalQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
}

impl ArrivalQueue {
    /// Creates an open, empty queue.
    pub fn new() -> Self {
        ArrivalQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Enqueues one arrived request and wakes a waiting worker.
    pub fn push(&self, request: QueuedRequest) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.queue.push_back(request);
        drop(state);
        self.nonempty.notify_one();
    }

    /// Marks the arrival stream finished; workers drain what is left and
    /// then observe the close.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Queued-but-unserved requests right now.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").queue.len()
    }

    /// Pops the next batch into `out` (cleared first): blocks for the first
    /// request, then — for a dynamic policy — keeps the batch open until it
    /// fills to `max_batch` or `max_wait` elapses. Returns `false` when the
    /// queue is closed and fully drained (no batch was produced).
    pub fn pop_batch(&self, policy: BatchPolicy, out: &mut Vec<QueuedRequest>) -> bool {
        out.clear();
        let max_batch = policy.max_batch();
        let mut state = self.state.lock().expect("queue poisoned");
        // Block until the batch can open.
        loop {
            if let Some(request) = state.queue.pop_front() {
                out.push(request);
                break;
            }
            if state.closed {
                return false;
            }
            state = self.nonempty.wait(state).expect("queue poisoned");
        }
        // Fill the open batch: drain whatever is queued, then wait out the
        // remainder of the hold-open window for co-riders.
        let deadline = Instant::now() + policy.max_wait();
        loop {
            while out.len() < max_batch {
                match state.queue.pop_front() {
                    Some(request) => out.push(request),
                    None => break,
                }
            }
            if out.len() >= max_batch || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .nonempty
                .wait_timeout(state, deadline - now)
                .expect("queue poisoned");
            state = next;
            if timeout.timed_out() && state.queue.is_empty() {
                break;
            }
        }
        true
    }
}

impl Default for ArrivalQueue {
    fn default() -> Self {
        ArrivalQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn request(index: usize) -> QueuedRequest {
        QueuedRequest {
            index,
            arrival_s: index as f64 * 0.001,
        }
    }

    #[test]
    fn fifo_pops_one_at_a_time_in_order() {
        let queue = ArrivalQueue::new();
        for i in 0..3 {
            queue.push(request(i));
        }
        let mut batch = Vec::new();
        for expected in 0..3 {
            assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].index, expected);
        }
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn dynamic_coalesces_everything_queued() {
        let queue = ArrivalQueue::new();
        for i in 0..5 {
            queue.push(request(i));
        }
        let policy = BatchPolicy::Dynamic {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        };
        let mut batch = Vec::new();
        assert!(queue.pop_batch(policy, &mut batch));
        assert_eq!(batch.len(), 4, "caps at max_batch");
        assert!(queue.pop_batch(policy, &mut batch));
        assert_eq!(batch.len(), 1, "tail flushes after max_wait");
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = ArrivalQueue::new();
        queue.push(request(0));
        queue.close();
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch.len(), 1);
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn workers_block_until_arrivals_land() {
        let queue = ArrivalQueue::new();
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut batch = Vec::new();
                let served = queue.pop_batch(BatchPolicy::Fifo, &mut batch);
                (served, batch)
            });
            std::thread::sleep(Duration::from_millis(10));
            queue.push(request(9));
            let (served, batch) = worker.join().unwrap();
            assert!(served);
            assert_eq!(batch[0].index, 9);
        });
    }
}
