//! The shared arrival queue between the load generator and the replica
//! workers: requests land as they arrive and workers coalesce them into
//! batches according to the [`BatchPolicy`].
//!
//! Overload protection lives here as two independently switchable gates
//! configured through [`AdmissionConfig`]:
//!
//! * an **admission gate** — [`ArrivalQueue::push`] refuses new requests
//!   while the queue already holds `max_depth` of them, so a burst sheds at
//!   the door instead of building unbounded backlog every queued request
//!   then pays for;
//! * **dequeue shedding** — [`ArrivalQueue::pop_batch`] drops requests whose
//!   deadline has already passed, so dead work never reaches the
//!   accelerator.
//!
//! Both gates count what they shed (never silently) and park the shed
//! requests in a log the harness drains into per-request rejections.

use crate::policy::BatchPolicy;
use centaur_dlrm::RejectReason;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued query: which pre-generated request arrived, when it was
/// scheduled to arrive (seconds from experiment start — the open-loop
/// latency clock starts here, not at enqueue time), and when its answer
/// stops being useful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Index into the experiment's pre-generated request set.
    pub index: usize,
    /// Scheduled arrival offset in seconds from experiment start.
    pub arrival_s: f64,
    /// Deadline offset in seconds from experiment start: the request is
    /// dead once the clock passes this. `f64::INFINITY` means no deadline.
    pub deadline_s: f64,
    /// Times this request has been re-served after a replica crash or
    /// datapath error. `0` on first enqueue; bumped by
    /// [`ArrivalQueue::requeue`]. The original `arrival_s` stamp is kept
    /// across retries — the open-loop latency clock never resets.
    pub retries: u32,
    /// Marks the hedge clone of a request: [`ArrivalQueue::hedge`]
    /// re-enqueues a copy of an overdue in-flight request with this flag
    /// set, so a first-result win can be attributed to the hedge rather
    /// than the straggler. All other stamps match the original's.
    pub hedged: bool,
}

impl QueuedRequest {
    /// A request with no deadline — pre-SLO behaviour.
    pub fn new(index: usize, arrival_s: f64) -> Self {
        QueuedRequest {
            index,
            arrival_s,
            deadline_s: f64::INFINITY,
            retries: 0,
            hedged: false,
        }
    }

    /// A request that must complete within `slo_s` of its scheduled arrival.
    pub fn with_slo(index: usize, arrival_s: f64, slo_s: f64) -> Self {
        QueuedRequest {
            index,
            arrival_s,
            deadline_s: arrival_s + slo_s,
            retries: 0,
            hedged: false,
        }
    }

    /// This request, one retry later. Arrival and deadline stamps are
    /// unchanged — a retried request is still judged against its original
    /// schedule.
    pub fn retry(mut self) -> Self {
        self.retries += 1;
        self
    }
}

/// The order [`ArrivalQueue::pop_batch`] hands out backlogged requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeueOrder {
    /// Arrival order — the pre-EDF behaviour and the default.
    #[default]
    Fifo,
    /// Earliest-deadline-first: the backlog is a min-heap on `deadline_s`,
    /// ties broken by enqueue order, no-deadline (`INFINITY`) requests last.
    /// Under mixed-urgency backlog this serves the most perishable work
    /// first instead of letting it expire behind patient arrivals.
    Edf,
}

impl DequeueOrder {
    /// Short label for report output (`fifo`, `edf`).
    pub fn label(&self) -> &'static str {
        match self {
            DequeueOrder::Fifo => "fifo",
            DequeueOrder::Edf => "edf",
        }
    }
}

/// Overload-protection knobs for an [`ArrivalQueue`]. The default is fully
/// permissive (unbounded depth, no shedding, FIFO order) — exactly the
/// pre-admission behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionConfig {
    /// Refuse new requests while the queue already holds this many.
    /// `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Drop already-dead requests at dequeue instead of serving them.
    pub shed_expired: bool,
    /// Dequeue order for the backlog.
    pub order: DequeueOrder,
}

/// One heap entry in an EDF backlog. Ordered by deadline (via `total_cmp`,
/// so `INFINITY` deadlines sort last), then by enqueue sequence so equal
/// deadlines keep their arrival order and the heap order is total.
#[derive(Debug, Clone, Copy)]
struct EdfEntry {
    deadline_s: f64,
    seq: u64,
    request: QueuedRequest,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.deadline_s
            .total_cmp(&other.deadline_s)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The queued-but-unserved requests, in whichever order the queue was
/// configured to dispatch. Both shapes reuse their buffers at steady state —
/// pushes into drained capacity never allocate.
#[derive(Debug)]
enum Backlog {
    Fifo(VecDeque<QueuedRequest>),
    Edf {
        heap: BinaryHeap<Reverse<EdfEntry>>,
        /// Monotonic enqueue counter for deterministic tie-breaks. Requeued
        /// requests take a fresh sequence number (they re-enter the heap
        /// now) while keeping their original arrival/deadline stamps.
        seq: u64,
    },
}

impl Backlog {
    fn new(order: DequeueOrder) -> Self {
        match order {
            DequeueOrder::Fifo => Backlog::Fifo(VecDeque::new()),
            DequeueOrder::Edf => Backlog::Edf {
                heap: BinaryHeap::new(),
                seq: 0,
            },
        }
    }

    fn push(&mut self, request: QueuedRequest) {
        match self {
            Backlog::Fifo(queue) => queue.push_back(request),
            Backlog::Edf { heap, seq } => {
                heap.push(Reverse(EdfEntry {
                    deadline_s: request.deadline_s,
                    seq: *seq,
                    request,
                }));
                *seq += 1;
            }
        }
    }

    /// The next request to dispatch: oldest arrival (FIFO) or earliest
    /// deadline (EDF).
    fn pop_next(&mut self) -> Option<QueuedRequest> {
        match self {
            Backlog::Fifo(queue) => queue.pop_front(),
            Backlog::Edf { heap, .. } => heap.pop().map(|Reverse(entry)| entry.request),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backlog::Fifo(queue) => queue.len(),
            Backlog::Edf { heap, .. } => heap.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Bookkeeping for one hedged request: how many copies (original + hedge
/// clone) still exist anywhere — backlog or in flight — and whether the
/// request's fate (completed, shed, or failed) has already been counted.
/// A `copies == 0 && done` entry is a **pending-hedge marker**: the worker
/// resolved the whole batch before the watchdog's [`ArrivalQueue::hedge`]
/// call landed, and the marker makes that late call cancel instead of
/// dispatching a duplicate of an already-answered request.
#[derive(Debug, Clone, Copy)]
struct HedgeEntry {
    index: usize,
    copies: usize,
    done: bool,
}

/// How one copy of a (possibly hedged) request resolves when it reaches a
/// terminal state.
enum CopyFate {
    /// This copy speaks for the request — count it.
    Counted,
    /// Another copy already decided the request's fate — suppress this one
    /// and count nothing.
    Suppressed,
}

#[derive(Debug)]
struct QueueState {
    backlog: Backlog,
    closed: bool,
    aborted: bool,
    in_flight: usize,
    shed_admission: usize,
    shed_expired: usize,
    failed: usize,
    retries: usize,
    hedged: usize,
    hedge_wins: usize,
    duplicates: usize,
    hedge_entries: Vec<HedgeEntry>,
    shed_log: Vec<(QueuedRequest, RejectReason)>,
}

impl QueueState {
    /// Whether every request the queue ever accepted has reached a terminal
    /// state (served, shed, or failed) — nothing queued, nothing in flight.
    fn drained(&self) -> bool {
        self.backlog.is_empty() && self.in_flight == 0
    }

    /// Whether `index` is hedged and its fate is already counted — every
    /// remaining copy is a duplicate to suppress.
    fn hedge_done(&self, index: usize) -> bool {
        self.hedge_entries
            .iter()
            .any(|e| e.index == index && e.done)
    }

    /// Resolves one copy of a request reaching a terminal state. The first
    /// *completion* always speaks for the request; a fail/shed only does
    /// when it is the last copy standing (a live sibling may still answer).
    /// `hedged` is the worker's in-flight-slot flag: when set and no entry
    /// exists yet, the watchdog marked this dispatch overdue but its
    /// `hedge()` has not landed — a pending-hedge marker is left so it
    /// cancels.
    fn resolve_copy(&mut self, index: usize, completion: bool, hedged: bool) -> CopyFate {
        let Some(pos) = self.hedge_entries.iter().position(|e| e.index == index) else {
            if hedged {
                self.hedge_entries.push(HedgeEntry {
                    index,
                    copies: 0,
                    done: true,
                });
            }
            return CopyFate::Counted;
        };
        let entry = &mut self.hedge_entries[pos];
        entry.copies -= 1;
        let last = entry.copies == 0;
        let fate = if !entry.done && (completion || last) {
            entry.done = true;
            CopyFate::Counted
        } else {
            CopyFate::Suppressed
        };
        if last {
            self.hedge_entries.swap_remove(pos);
        }
        fate
    }

    /// Pops the next dispatchable request off the backlog: suppresses
    /// backlog copies of already-answered hedged requests, sheds expired
    /// requests when `shed` is set (hedge-aware — an expired copy with a
    /// live sibling suppresses instead of counting a shed), and marks the
    /// returned request in flight.
    fn next_live(&mut self, shed: bool, now_s: f64) -> Option<QueuedRequest> {
        while let Some(request) = self.backlog.pop_next() {
            if self.hedge_done(request.index) {
                let _ = self.resolve_copy(request.index, false, false);
                self.duplicates += 1;
                continue;
            }
            if shed && request.deadline_s < now_s {
                match self.resolve_copy(request.index, false, false) {
                    CopyFate::Counted => {
                        self.shed_expired += 1;
                        self.shed_log.push((request, RejectReason::DeadlineExpired));
                    }
                    CopyFate::Suppressed => self.duplicates += 1,
                }
                continue;
            }
            self.in_flight += 1;
            return Some(request);
        }
        None
    }
}

/// MPMC arrival queue (mutex + condvar; no external dependencies). The
/// generator pushes, every replica worker pops batches; closing wakes all
/// waiters so workers drain the tail and exit.
#[derive(Debug)]
pub struct ArrivalQueue {
    state: Mutex<QueueState>,
    nonempty: Condvar,
    config: AdmissionConfig,
    start: Mutex<Instant>,
}

impl ArrivalQueue {
    /// Creates an open, empty, fully permissive queue (unbounded depth, no
    /// shedding).
    pub fn new() -> Self {
        ArrivalQueue::with_config(AdmissionConfig::default())
    }

    /// Creates an open, empty queue with the given overload-protection
    /// config. The queue's deadline clock starts now.
    pub fn with_config(config: AdmissionConfig) -> Self {
        ArrivalQueue {
            state: Mutex::new(QueueState {
                backlog: Backlog::new(config.order),
                closed: false,
                aborted: false,
                in_flight: 0,
                shed_admission: 0,
                shed_expired: 0,
                failed: 0,
                retries: 0,
                hedged: 0,
                hedge_wins: 0,
                duplicates: 0,
                hedge_entries: Vec::new(),
                shed_log: Vec::new(),
            }),
            nonempty: Condvar::new(),
            config,
            start: Mutex::new(Instant::now()),
        }
    }

    /// The instant the queue's deadline clock started — the experiment
    /// start every `arrival_s`/`deadline_s` offset is measured from.
    pub fn start(&self) -> Instant {
        *self.start.lock().expect("queue clock poisoned")
    }

    /// Restarts the deadline clock at `Instant::now()`. Harnesses call this
    /// after expensive pre-replay setup (replica construction, respawn
    /// template clones) and immediately before spawning the arrival
    /// generator, so that `arrival_s`/`deadline_s` offsets are measured
    /// from the moment the replay actually starts — not from queue
    /// construction, which may predate it by the full setup cost. Must not
    /// be called once requests are in the queue: stamps already issued
    /// against the old clock would be reinterpreted against the new one.
    pub fn restart_clock(&self) {
        *self.start.lock().expect("queue clock poisoned") = Instant::now();
    }

    /// Enqueues one arrived request and wakes a waiting worker. Returns
    /// `false` without enqueueing when the queue is closed, or when the
    /// admission gate sheds the request because the queue is already at its
    /// depth bound (counted in [`shed_admission`](Self::shed_admission)).
    #[must_use = "a rejected push means the request was shed, not queued"]
    pub fn push(&self, request: QueuedRequest) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return false;
        }
        if let Some(depth) = self.config.max_depth {
            if state.backlog.len() >= depth {
                state.shed_admission += 1;
                state.shed_log.push((request, RejectReason::QueueFull));
                return false;
            }
        }
        state.backlog.push(request);
        drop(state);
        self.nonempty.notify_one();
        true
    }

    /// Marks the arrival stream finished; workers drain what is left and
    /// then observe the close. Pushes after this are rejected.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Closes the queue *and* abandons whatever it still holds: waiting
    /// workers return immediately without draining. This is the
    /// unrecoverable-failure path — the run is aborting, so serving the
    /// tail would only delay the error.
    pub fn close_abort(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        state.aborted = true;
        drop(state);
        self.nonempty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }

    /// Whether [`close_abort`](Self::close_abort) has been called.
    pub fn is_aborted(&self) -> bool {
        self.state.lock().expect("queue poisoned").aborted
    }

    /// Marks `n` popped requests served. Every request a
    /// [`pop_batch`](Self::pop_batch) hands out is **in flight** until the
    /// worker accounts for it — [`complete`](Self::complete) /
    /// [`complete_batch`](Self::complete_batch),
    /// [`requeue`](Self::requeue) or [`fail`](Self::fail) — and the queue
    /// does not report itself drained while anything is in flight, so a
    /// crashed worker's batch can be recovered and requeued even after
    /// `close()`. Hedge-free paths only; hedged pools must resolve through
    /// [`complete_batch`](Self::complete_batch).
    pub fn complete(&self, n: usize) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.in_flight -= n;
        let wake = state.closed && state.drained();
        drop(state);
        if wake {
            self.nonempty.notify_all();
        }
    }

    /// Marks every request in `batch` served, resolving hedge copies
    /// first-result-wins. `hedged` is the flag the worker took from its
    /// in-flight slot when clearing it: `true` means the watchdog marked
    /// this dispatch overdue, so a hedge clone either already raced (an
    /// entry exists) or is about to be enqueued (no entry yet — a
    /// pending-hedge marker is left so the late [`hedge`](Self::hedge)
    /// call cancels instead of duplicating an answered request).
    ///
    /// `primary` (cleared first) gets one flag per batch entry: `true` when
    /// the worker should record this completion, `false` when the result is
    /// a suppressed duplicate — counted once in
    /// [`duplicates_suppressed`](Self::duplicates_suppressed) — whose
    /// answer must be discarded.
    pub fn complete_batch(&self, batch: &[QueuedRequest], hedged: bool, primary: &mut Vec<bool>) {
        primary.clear();
        let mut state = self.state.lock().expect("queue poisoned");
        for request in batch {
            state.in_flight -= 1;
            match state.resolve_copy(request.index, true, hedged) {
                CopyFate::Counted => {
                    if request.hedged {
                        state.hedge_wins += 1;
                    }
                    primary.push(true);
                }
                CopyFate::Suppressed => {
                    state.duplicates += 1;
                    primary.push(false);
                }
            }
        }
        let wake = state.closed && state.drained();
        drop(state);
        if wake {
            self.nonempty.notify_all();
        }
    }

    /// Re-enqueues a **hedge clone** of an overdue in-flight request so a
    /// healthy sibling replica races the straggler. The clone keeps the
    /// original arrival/deadline stamps (the open-loop latency clock never
    /// resets) and bypasses the admission gate like a requeue, succeeding
    /// even after `close()`. First result wins: whichever copy finishes
    /// first is counted once and every other copy is suppressed, so
    /// `generated = completed + shed + failed` stays exact with hedges
    /// counted separately.
    ///
    /// Returns `false` without enqueueing when the request is already
    /// hedged (copies are bounded at two), when its fate was already
    /// counted (the original finished between the watchdog's overdue check
    /// and this call — the pending-hedge marker is cancelled here), or
    /// when the queue aborted.
    pub fn hedge(&self, request: QueuedRequest) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.aborted {
            return false;
        }
        if let Some(pos) = state
            .hedge_entries
            .iter()
            .position(|e| e.index == request.index)
        {
            if state.hedge_entries[pos].done && state.hedge_entries[pos].copies == 0 {
                state.hedge_entries.swap_remove(pos);
            }
            return false;
        }
        state.hedge_entries.push(HedgeEntry {
            index: request.index,
            copies: 2,
            done: false,
        });
        state.hedged += 1;
        let mut clone = request;
        clone.hedged = true;
        state.backlog.push(clone);
        drop(state);
        self.nonempty.notify_one();
        true
    }

    /// Returns one in-flight request to the queue for another serve attempt
    /// (bump its retry count with [`QueuedRequest::retry`] first). Requeues
    /// bypass the admission gate and succeed even after `close()` — the
    /// request was already admitted once; recovery must not re-shed it. A
    /// straggler copy of an already-answered hedged request is suppressed
    /// instead of re-queued: re-serving it could only produce a duplicate.
    pub fn requeue(&self, request: QueuedRequest) {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.hedge_done(request.index) {
            state.in_flight -= 1;
            let _ = state.resolve_copy(request.index, false, false);
            state.duplicates += 1;
            let wake = state.closed && state.drained();
            drop(state);
            if wake {
                self.nonempty.notify_all();
            }
            return;
        }
        state.in_flight -= 1;
        state.retries += 1;
        state.backlog.push(request);
        drop(state);
        self.nonempty.notify_one();
    }

    /// Marks one in-flight request permanently failed (retry budget
    /// exhausted): counted, logged with [`RejectReason::Failed`], never
    /// silent. `hedged` carries the worker's in-flight-slot flag exactly
    /// as in [`complete_batch`](Self::complete_batch); a failed copy whose
    /// hedge sibling is still live resolves as suppressed — the sibling
    /// decides the request's fate.
    pub fn fail(&self, request: QueuedRequest, hedged: bool) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.in_flight -= 1;
        match state.resolve_copy(request.index, false, hedged) {
            CopyFate::Counted => {
                state.failed += 1;
                state.shed_log.push((request, RejectReason::Failed));
            }
            CopyFate::Suppressed => state.duplicates += 1,
        }
        let wake = state.closed && state.drained();
        drop(state);
        if wake {
            self.nonempty.notify_all();
        }
    }

    /// Queued-but-unserved requests right now.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").backlog.len()
    }

    /// The dequeue order this queue was configured with.
    pub fn order(&self) -> DequeueOrder {
        self.config.order
    }

    /// Requests shed at the admission gate so far.
    pub fn shed_admission(&self) -> usize {
        self.state.lock().expect("queue poisoned").shed_admission
    }

    /// Requests shed at dequeue (deadline already passed) so far.
    pub fn shed_expired(&self) -> usize {
        self.state.lock().expect("queue poisoned").shed_expired
    }

    /// Requests permanently failed (retry budget exhausted) so far.
    pub fn failed(&self) -> usize {
        self.state.lock().expect("queue poisoned").failed
    }

    /// Total re-serve attempts ([`requeue`](Self::requeue) calls) so far.
    pub fn retries(&self) -> usize {
        self.state.lock().expect("queue poisoned").retries
    }

    /// Hedge clones dispatched ([`hedge`](Self::hedge) calls that enqueued
    /// a copy) so far.
    pub fn hedges(&self) -> usize {
        self.state.lock().expect("queue poisoned").hedged
    }

    /// Hedged requests whose **clone** finished first (the hedge paid off)
    /// so far.
    pub fn hedge_wins(&self) -> usize {
        self.state.lock().expect("queue poisoned").hedge_wins
    }

    /// Redundant hedge copies discarded without double-counting — late
    /// originals, losing clones, and suppressed requeues — so far.
    pub fn duplicates_suppressed(&self) -> usize {
        self.state.lock().expect("queue poisoned").duplicates
    }

    /// Whether the arrival stream closed **and** every accepted request
    /// reached a terminal state — the replay is over. Quarantined workers
    /// poll this so a backoff sleep never outlives the replay.
    pub fn is_finished(&self) -> bool {
        let state = self.state.lock().expect("queue poisoned");
        state.closed && state.drained()
    }

    /// Requests popped but not yet completed, requeued or failed.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("queue poisoned").in_flight
    }

    /// Pre-grows the shed log so steady-state shedding never allocates.
    pub fn reserve_shed(&self, additional: usize) {
        self.state
            .lock()
            .expect("queue poisoned")
            .shed_log
            .reserve(additional);
    }

    /// Drains and returns every shed request recorded so far with why it
    /// was shed, in shed order (admission and expiry sheds interleaved).
    pub fn take_shed(&self) -> Vec<(QueuedRequest, RejectReason)> {
        std::mem::take(&mut self.state.lock().expect("queue poisoned").shed_log)
    }

    /// Pops the next batch into `out` (cleared first): blocks for the first
    /// live request, then — for a dynamic policy — keeps the batch open
    /// until it fills to `max_batch` or `max_wait` elapses. A deadline-aware
    /// policy additionally closes the batch early when the oldest held
    /// request's remaining slack drops to its `service_estimate`, so the
    /// batch dispatches partial rather than expiring what it already holds.
    /// With `shed_expired` set, already-dead requests are dropped (and
    /// counted) instead of entering the batch.
    ///
    /// Every request handed out is **in flight** until the worker calls
    /// [`complete`](Self::complete), [`requeue`](Self::requeue) or
    /// [`fail`](Self::fail) for it. Returns `false` only when the queue is
    /// closed *and* fully drained — nothing queued **and** nothing in
    /// flight — so requests already queued (or recovered from a crashed
    /// worker) at `close()` are still served or counted-shed, never
    /// silently dropped; or immediately after
    /// [`close_abort`](Self::close_abort), which abandons the drain.
    pub fn pop_batch(&self, policy: BatchPolicy, out: &mut Vec<QueuedRequest>) -> bool {
        out.clear();
        let max_batch = policy.max_batch();
        let shed = self.config.shed_expired;
        let start = self.start();
        let mut state = self.state.lock().expect("queue poisoned");
        // Block until the batch opens with a live request.
        loop {
            if state.aborted {
                return false;
            }
            let now_s = start.elapsed().as_secs_f64();
            if let Some(request) = state.next_live(shed, now_s) {
                out.push(request);
                break;
            }
            if state.closed && state.drained() {
                return false;
            }
            state = self.nonempty.wait(state).expect("queue poisoned");
        }
        // Hold-open deadline: the policy's max_wait, tightened for a
        // deadline-aware policy by when the most urgent held request must
        // dispatch to finish inside its SLO. Under EDF the first request
        // popped has the earliest deadline by construction; under FIFO the
        // same holds because queue order is arrival order and each queue
        // serves one tenant's uniform SLO.
        let mut hold_until = Instant::now() + policy.max_wait();
        if let Some(slack) = policy.dispatch_slack() {
            let oldest_deadline_s = out[0].deadline_s;
            if oldest_deadline_s.is_finite() {
                let dispatch_by_s = (oldest_deadline_s - slack.as_secs_f64()).max(0.0);
                let dispatch_by = start + Duration::from_secs_f64(dispatch_by_s);
                hold_until = hold_until.min(dispatch_by);
            }
        }
        // Fill the open batch: drain whatever is queued, then wait out the
        // remainder of the hold-open window for co-riders.
        loop {
            let now_s = start.elapsed().as_secs_f64();
            while out.len() < max_batch {
                match state.next_live(shed, now_s) {
                    Some(request) => out.push(request),
                    None => break,
                }
            }
            if out.len() >= max_batch || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= hold_until {
                break;
            }
            let (next, timeout) = self
                .nonempty
                .wait_timeout(state, hold_until - now)
                .expect("queue poisoned");
            state = next;
            if timeout.timed_out() && state.backlog.is_empty() {
                break;
            }
        }
        true
    }
}

impl Default for ArrivalQueue {
    fn default() -> Self {
        ArrivalQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn request(index: usize) -> QueuedRequest {
        QueuedRequest::new(index, index as f64 * 0.001)
    }

    /// A request whose deadline passed before the experiment even started —
    /// definitely dead without any timing dependence in the test.
    fn dead_request(index: usize) -> QueuedRequest {
        QueuedRequest {
            index,
            arrival_s: 0.0,
            deadline_s: -1.0,
            retries: 0,
            hedged: false,
        }
    }

    #[test]
    fn fifo_pops_one_at_a_time_in_order() {
        let queue = ArrivalQueue::new();
        for i in 0..3 {
            assert!(queue.push(request(i)));
        }
        let mut batch = Vec::new();
        for expected in 0..3 {
            assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].index, expected);
        }
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn dynamic_coalesces_everything_queued() {
        let queue = ArrivalQueue::new();
        for i in 0..5 {
            assert!(queue.push(request(i)));
        }
        let policy = BatchPolicy::Dynamic {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        };
        let mut batch = Vec::new();
        assert!(queue.pop_batch(policy, &mut batch));
        assert_eq!(batch.len(), 4, "caps at max_batch");
        assert!(queue.pop_batch(policy, &mut batch));
        assert_eq!(batch.len(), 1, "tail flushes after max_wait");
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        queue.close();
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch.len(), 1);
        queue.complete(1);
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert!(batch.is_empty());
    }

    /// Pins the drain-then-close contract: every request already queued
    /// when `close()` fires is either handed to a worker or shed with a
    /// counted reason — the queue never reports drained while anything it
    /// accepted lacks a terminal state, and nothing is silently dropped.
    #[test]
    fn requests_queued_at_close_are_served_or_counted_never_dropped() {
        let queue = ArrivalQueue::with_config(AdmissionConfig {
            max_depth: None,
            shed_expired: true,
            order: DequeueOrder::Fifo,
        });
        let total = 6;
        for i in 0..total {
            let pushed = if i % 3 == 2 {
                queue.push(dead_request(i))
            } else {
                queue.push(request(i))
            };
            assert!(pushed);
        }
        queue.close();
        let policy = BatchPolicy::Dynamic {
            max_batch: 3,
            max_wait: Duration::from_millis(5),
        };
        let mut batch = Vec::new();
        let mut served = 0;
        while queue.pop_batch(policy, &mut batch) {
            served += batch.len();
            queue.complete(batch.len());
        }
        assert_eq!(
            served + queue.shed_expired(),
            total,
            "every queued request is served or counted-shed at shutdown"
        );
        assert_eq!(queue.shed_expired(), 2);
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.in_flight(), 0);
    }

    #[test]
    fn pop_waits_for_in_flight_work_and_serves_requeues_after_close() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let held = batch[0];
        queue.close();
        // The queue is closed and empty, but one request is in flight: a
        // second consumer must wait for its terminal state, and a requeue
        // must reach it even though the queue is closed.
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut tail = Vec::new();
                let served = queue.pop_batch(BatchPolicy::Fifo, &mut tail);
                (served, tail)
            });
            std::thread::sleep(Duration::from_millis(10));
            queue.requeue(held.retry());
            let (served, tail) = waiter.join().unwrap();
            assert!(served, "requeued request is re-served, not dropped");
            assert_eq!(tail[0].index, 0);
            assert_eq!(tail[0].retries, 1, "retry count rode along");
            assert_eq!(
                tail[0].arrival_s, held.arrival_s,
                "original arrival stamp preserved across the retry"
            );
            queue.complete(1);
        });
        assert_eq!(queue.retries(), 1);
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch));
    }

    #[test]
    fn fail_records_a_counted_rejection_and_drains_the_queue() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        assert!(queue.push(request(1)));
        queue.close();
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        queue.complete(1);
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        queue.fail(batch[0].retry().retry(), false);
        assert_eq!(queue.failed(), 1);
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
        let shed = queue.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].0.index, 1);
        assert_eq!(shed[0].0.retries, 2, "exhausted budget rides in the log");
        assert_eq!(shed[0].1, RejectReason::Failed);
    }

    #[test]
    fn close_abort_abandons_the_drain() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        assert!(queue.push(request(1)));
        queue.close_abort();
        assert!(queue.is_closed());
        assert!(queue.is_aborted());
        let mut batch = Vec::new();
        assert!(
            !queue.pop_batch(BatchPolicy::Fifo, &mut batch),
            "aborted queue stops workers immediately, tail unserved"
        );
    }

    #[test]
    fn push_after_close_is_rejected_not_silently_queued() {
        let queue = ArrivalQueue::new();
        queue.close();
        assert!(queue.is_closed());
        assert!(!queue.push(request(0)), "closed queue must refuse pushes");
        assert_eq!(queue.depth(), 0, "nothing may enqueue after close");
        // A rejected-at-close push is not a shed: the stream itself ended.
        assert_eq!(queue.shed_admission(), 0);
    }

    #[test]
    fn admission_gate_sheds_exactly_the_overflow() {
        let queue = ArrivalQueue::with_config(AdmissionConfig {
            max_depth: Some(2),
            shed_expired: false,
            order: DequeueOrder::Fifo,
        });
        assert!(queue.push(request(0)));
        assert!(queue.push(request(1)));
        assert!(!queue.push(request(2)), "third push exceeds depth 2");
        assert!(!queue.push(request(3)));
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.shed_admission(), 2);
        assert_eq!(queue.shed_expired(), 0);
        let shed: Vec<(usize, RejectReason)> = queue
            .take_shed()
            .iter()
            .map(|&(q, reason)| (q.index, reason))
            .collect();
        assert_eq!(
            shed,
            vec![(2, RejectReason::QueueFull), (3, RejectReason::QueueFull)],
            "shed log records exactly the overflow"
        );
        // Draining one slot re-opens admission.
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert!(queue.push(request(4)));
        assert_eq!(queue.shed_admission(), 2, "re-admitted push is not a shed");
    }

    #[test]
    fn expired_requests_are_shed_at_dequeue_with_exact_counters() {
        let queue = ArrivalQueue::with_config(AdmissionConfig {
            max_depth: None,
            shed_expired: true,
            order: DequeueOrder::Fifo,
        });
        assert!(queue.push(dead_request(0)));
        assert!(queue.push(request(1)));
        assert!(queue.push(dead_request(2)));
        assert!(queue.push(request(3)));
        queue.close();
        let policy = BatchPolicy::Dynamic {
            max_batch: 8,
            max_wait: Duration::from_millis(10),
        };
        let mut batch = Vec::new();
        assert!(queue.pop_batch(policy, &mut batch));
        let served: Vec<usize> = batch.iter().map(|q| q.index).collect();
        assert_eq!(served, vec![1, 3], "only live requests reach the batch");
        queue.complete(batch.len());
        assert_eq!(queue.shed_expired(), 2);
        assert_eq!(queue.shed_admission(), 0);
        let shed: Vec<(usize, RejectReason)> = queue
            .take_shed()
            .iter()
            .map(|&(q, reason)| (q.index, reason))
            .collect();
        assert_eq!(
            shed,
            vec![
                (0, RejectReason::DeadlineExpired),
                (2, RejectReason::DeadlineExpired),
            ]
        );
        assert!(!queue.pop_batch(policy, &mut batch), "queue is drained");
    }

    #[test]
    fn all_expired_and_closed_pops_nothing_but_counts_everything() {
        let queue = ArrivalQueue::with_config(AdmissionConfig {
            max_depth: None,
            shed_expired: true,
            order: DequeueOrder::Fifo,
        });
        assert!(queue.push(dead_request(0)));
        assert!(queue.push(dead_request(1)));
        queue.close();
        let mut batch = Vec::new();
        assert!(
            !queue.pop_batch(BatchPolicy::Fifo, &mut batch),
            "a queue of only dead requests produces no batch"
        );
        assert!(batch.is_empty());
        assert_eq!(queue.shed_expired(), 2);
    }

    #[test]
    fn without_shedding_expired_requests_are_still_served() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(dead_request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch[0].index, 0, "permissive queue serves dead requests");
        assert_eq!(queue.shed_expired(), 0);
    }

    #[test]
    fn deadline_policy_dispatches_partial_batch_before_the_slo_expires() {
        let queue = ArrivalQueue::new();
        // One lone request whose deadline is 50 ms out; the policy would
        // otherwise hold the batch open for 10 s waiting for co-riders.
        let lone = QueuedRequest {
            index: 0,
            arrival_s: 0.0,
            deadline_s: 0.05,
            retries: 0,
            hedged: false,
        };
        assert!(queue.push(lone));
        let policy = BatchPolicy::Deadline {
            max_batch: 64,
            max_wait: Duration::from_secs(10),
            service_estimate: Duration::from_millis(5),
        };
        let mut batch = Vec::new();
        let popped_in = Instant::now();
        assert!(queue.pop_batch(policy, &mut batch));
        let waited = popped_in.elapsed();
        assert_eq!(batch.len(), 1, "dispatches partial rather than expiring");
        assert!(
            waited < Duration::from_secs(2),
            "batch dispatched by the deadline, not after max_wait ({waited:?})"
        );
    }

    fn edf_queue() -> ArrivalQueue {
        ArrivalQueue::with_config(AdmissionConfig {
            max_depth: None,
            shed_expired: false,
            order: DequeueOrder::Edf,
        })
    }

    /// Pins the EDF heap order: batches come out in non-decreasing deadline
    /// order regardless of arrival order, equal deadlines keep arrival
    /// order, and no-deadline requests sort last.
    #[test]
    fn edf_pops_in_deadline_order_not_arrival_order() {
        let queue = edf_queue();
        let deadlines = [0.9, 0.3, f64::INFINITY, 0.3, 0.1];
        for (i, &deadline_s) in deadlines.iter().enumerate() {
            assert!(queue.push(QueuedRequest {
                index: i,
                arrival_s: 0.0,
                deadline_s,
                retries: 0,
                hedged: false,
            }));
        }
        queue.close();
        let policy = BatchPolicy::Dynamic {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
        };
        let mut batch = Vec::new();
        assert!(queue.pop_batch(policy, &mut batch));
        let order: Vec<usize> = batch.iter().map(|q| q.index).collect();
        assert_eq!(
            order,
            vec![4, 1, 3, 0, 2],
            "earliest deadline first; 0.3-tie keeps arrival order (1 before 3); INFINITY last"
        );
        queue.complete(batch.len());
    }

    #[test]
    fn edf_requeue_resorts_by_deadline_and_keeps_stamps() {
        let queue = edf_queue();
        // A patient request queued first, an urgent one second.
        assert!(queue.push(QueuedRequest::with_slo(0, 0.0, 60.0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let held = batch[0];
        assert!(queue.push(QueuedRequest::with_slo(1, 0.0, 1.0)));
        // Requeueing the patient request must not jump it ahead of the
        // urgent one: it takes a fresh heap sequence but its original
        // arrival/deadline stamps, so EDF re-sorts it behind index 1.
        queue.requeue(held.retry());
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch[0].index, 1, "urgent request still dispatches first");
        queue.complete(1);
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch[0].index, 0);
        assert_eq!(batch[0].retries, 1);
        assert_eq!(batch[0].arrival_s, 0.0, "stamps survive the requeue");
        assert_eq!(batch[0].deadline_s, 60.0);
        queue.complete(1);
    }

    #[test]
    fn dequeue_orders_label_distinctly() {
        assert_eq!(DequeueOrder::Fifo.label(), "fifo");
        assert_eq!(DequeueOrder::Edf.label(), "edf");
        assert_eq!(DequeueOrder::default(), DequeueOrder::Fifo);
        assert_eq!(edf_queue().order(), DequeueOrder::Edf);
        assert_eq!(ArrivalQueue::new().order(), DequeueOrder::Fifo);
    }

    /// Walks the canonical hedge race: an in-flight request is hedged, the
    /// clone is dispatched to a sibling, and whichever copy completes first
    /// is counted exactly once while the straggler's late answer is
    /// suppressed exactly once.
    #[test]
    fn hedge_counts_first_result_once_and_suppresses_the_straggler() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original), "first hedge dispatches a clone");
        assert!(!queue.hedge(original), "copies are bounded at two");
        assert_eq!(queue.hedges(), 1);
        // A sibling worker picks up the clone.
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let clone = batch[0];
        assert!(clone.hedged, "the clone carries the hedge marker");
        assert_eq!(clone.index, original.index);
        assert_eq!(clone.arrival_s, original.arrival_s, "stamps preserved");
        assert_eq!(queue.in_flight(), 2);
        // The clone finishes first: counted, and attributed as a hedge win.
        let mut primary = Vec::new();
        queue.complete_batch(&[clone], false, &mut primary);
        assert_eq!(primary, vec![true]);
        assert_eq!(queue.hedge_wins(), 1);
        // The straggler's late answer is discarded once.
        queue.complete_batch(&[original], true, &mut primary);
        assert_eq!(primary, vec![false]);
        assert_eq!(queue.duplicates_suppressed(), 1);
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
    }

    #[test]
    fn original_completing_first_wins_without_a_hedge_win() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original));
        let mut primary = Vec::new();
        queue.complete_batch(&[original], true, &mut primary);
        assert_eq!(primary, vec![true], "first result is counted");
        assert_eq!(queue.hedge_wins(), 0, "the straggler won its own race");
        // The clone still sits in the backlog: the next pop suppresses it
        // instead of serving a duplicate.
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(queue.duplicates_suppressed(), 1);
        assert_eq!(queue.depth(), 0);
        assert_eq!(queue.in_flight(), 0);
    }

    /// The watchdog race: the worker resolves its batch (with the slot's
    /// hedged flag set) before the monitor's `hedge()` call lands. The
    /// pending-hedge marker must cancel the late hedge so no duplicate of
    /// an answered request is ever dispatched.
    #[test]
    fn late_hedge_of_an_answered_request_is_cancelled() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        let mut primary = Vec::new();
        // Worker saw the slot marked hedged and completed first.
        queue.complete_batch(&[original], true, &mut primary);
        assert_eq!(primary, vec![true]);
        // The monitor's hedge call lands afterwards: cancelled, no clone.
        assert!(!queue.hedge(original), "late hedge is cancelled");
        assert_eq!(queue.depth(), 0, "no duplicate was enqueued");
        assert_eq!(queue.hedges(), 0);
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
    }

    #[test]
    fn failed_copy_with_a_live_sibling_lets_the_sibling_answer() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let clone = batch[0];
        // The straggler exhausts its retry budget while the clone is live:
        // the failure is suppressed, the clone decides the fate.
        queue.fail(original, true);
        assert_eq!(queue.failed(), 0, "a live sibling may still answer");
        assert_eq!(queue.duplicates_suppressed(), 1);
        let mut primary = Vec::new();
        queue.complete_batch(&[clone], false, &mut primary);
        assert_eq!(primary, vec![true]);
        assert_eq!(queue.hedge_wins(), 1);
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
    }

    #[test]
    fn both_copies_failing_counts_one_failure() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let clone = batch[0];
        queue.fail(original, true);
        queue.fail(clone, false);
        assert_eq!(queue.failed(), 1, "the request failed exactly once");
        assert_eq!(queue.duplicates_suppressed(), 1);
        let shed = queue.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].1, RejectReason::Failed);
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
    }

    #[test]
    fn requeue_of_an_answered_hedged_request_is_suppressed() {
        let queue = ArrivalQueue::new();
        assert!(queue.push(request(0)));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let clone = batch[0];
        let mut primary = Vec::new();
        queue.complete_batch(&[clone], false, &mut primary);
        assert_eq!(primary, vec![true]);
        // A transient error makes the straggler's worker requeue it — but
        // the request is already answered, so it must not re-enter.
        queue.requeue(original.retry());
        assert_eq!(queue.depth(), 0, "answered request never re-enters");
        assert_eq!(queue.retries(), 0, "suppressed requeue is not a retry");
        assert_eq!(queue.duplicates_suppressed(), 1);
        queue.close();
        assert!(!queue.pop_batch(BatchPolicy::Fifo, &mut batch), "drained");
    }

    #[test]
    fn expired_clone_with_a_live_original_suppresses_instead_of_shedding() {
        let queue = ArrivalQueue::with_config(AdmissionConfig {
            max_depth: None,
            shed_expired: true,
            order: DequeueOrder::Fifo,
        });
        let short = QueuedRequest::with_slo(0, 0.0, 0.015);
        assert!(queue.push(short));
        let mut batch = Vec::new();
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        let original = batch[0];
        assert!(queue.hedge(original));
        // Let the clone expire in the backlog while the original is served.
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                let mut tail = Vec::new();
                queue.pop_batch(BatchPolicy::Fifo, &mut tail)
            });
            std::thread::sleep(Duration::from_millis(10));
            let mut primary = Vec::new();
            queue.complete_batch(&[original], true, &mut primary);
            assert_eq!(primary, vec![true], "the original still answers");
            assert!(
                !waiter.join().unwrap(),
                "expired clone never reaches a worker"
            );
        });
        assert_eq!(queue.shed_expired(), 0, "live sibling suppresses the shed");
        assert_eq!(queue.duplicates_suppressed(), 1);
        assert!(queue.is_finished());
    }

    #[test]
    fn workers_block_until_arrivals_land() {
        let queue = ArrivalQueue::new();
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut batch = Vec::new();
                let served = queue.pop_batch(BatchPolicy::Fifo, &mut batch);
                (served, batch)
            });
            std::thread::sleep(Duration::from_millis(10));
            assert!(queue.push(request(9)));
            let (served, batch) = worker.join().unwrap();
            assert!(served);
            assert_eq!(batch[0].index, 9);
        });
    }
}
