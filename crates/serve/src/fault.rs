//! Deterministic fault injection for the serving layer.
//!
//! A [`FaultPlan`] schedules crash / stall / transient-error events against
//! specific replicas at specific times into the replay. Each replica worker
//! carries a [`FaultGuard`] — the per-replica slice of the plan — and polls
//! it once per coalesced batch, *after* the batch has been popped and
//! published as in-flight, so an injected crash takes a real in-flight
//! batch down with it exactly like a production node loss would.
//!
//! Plans are either built explicitly ([`FaultPlan::new`]), sampled
//! deterministically from a seeded [`FaultSpec`] via the workload crate's
//! [`FaultScheduleSampler`](centaur_workload::FaultScheduleSampler)
//! ([`FaultPlan::seeded`]), or parsed from the `CENTAUR_SERVE_FAULT_PLAN`
//! environment knob ([`FaultPlan::parse`], format documented there).

use centaur::CentaurError;
use centaur_workload::FaultScheduleSampler;
use std::time::Duration;

/// What an injected fault does to the replica worker that polls it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker panics mid-batch (after publishing its in-flight batch) —
    /// a process/node crash. The supervisor recovers the in-flight batch
    /// and restarts the replica against the restart budget.
    Crash,
    /// The worker sleeps for `millis` while holding its batch — a GC pause,
    /// a page-in storm, a slow NIC. No state is lost; the held requests age
    /// (and may miss their deadlines), siblings absorb the load.
    Stall {
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The current batch fails with a datapath error but the replica
    /// survives — a parity error, a flaky link. The batch is requeued
    /// against each request's retry budget.
    Transient,
    /// The replica becomes **persistently** `factor`× slower from this
    /// event on — a thermally throttled core, a failing DIMM retraining, a
    /// noisy neighbour. Nothing is lost and no error surfaces: every
    /// subsequent batch just takes `factor`× its true service time, the
    /// slow-node tail the watchdog + quarantine machinery exists to
    /// contain.
    Degraded {
        /// Service-time multiplier (≥ 2 to have any effect; 1 is a no-op).
        factor: u32,
    },
}

impl FaultKind {
    /// Short label (`crash`, `stall`, `transient`, `degraded`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Transient => "transient",
            FaultKind::Degraded { .. } => "degraded",
        }
    }
}

/// One scheduled fault: which replica, when (seconds from replay start),
/// and what happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Index of the replica the fault targets (events targeting replicas
    /// beyond the pool size never fire).
    pub replica: usize,
    /// Offset into the replay, seconds, at which the event becomes due. It
    /// fires on the victim's first batch at or after this offset.
    pub at_s: f64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events for one serving run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults injected (the fault-free fast path).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (sorted by time per replica).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite fault times"));
        FaultPlan { events }
    }

    /// Samples a plan from a seeded [`FaultSpec`]: `spec.crashes` crash
    /// events, `spec.stalls` stalls, `spec.transients` transient errors and
    /// `spec.degraded` persistent slowdowns, each at a deterministic
    /// mid-replay offset within `window_s` against a deterministic victim
    /// in `0..replicas`. With `spec.repeat_stalls` set, the stall events
    /// instead form a repeating/intermittent schedule — evenly spaced
    /// jittered offsets across the replay window (see
    /// [`FaultScheduleSampler::repeating_offsets_s`]) all striking the
    /// same victim, the flapping slow node a single mid-replay stall
    /// cannot model.
    pub fn seeded(spec: FaultSpec, replicas: usize, window_s: f64) -> Self {
        let mut sampler = FaultScheduleSampler::new(spec.seed);
        let mut events = Vec::with_capacity(spec.count());
        let stall = FaultKind::Stall {
            millis: spec.stall_ms.max(1),
        };
        if spec.repeat_stalls && spec.stalls > 0 {
            let victim = sampler.replica(replicas);
            for at_s in sampler.repeating_offsets_s(spec.stalls, window_s) {
                events.push(FaultEvent {
                    replica: victim,
                    at_s,
                    kind: stall,
                });
            }
        }
        let kinds = [
            (spec.crashes, FaultKind::Crash),
            (if spec.repeat_stalls { 0 } else { spec.stalls }, stall),
            (spec.transients, FaultKind::Transient),
            (
                spec.degraded,
                FaultKind::Degraded {
                    factor: spec.degrade_factor.max(2),
                },
            ),
        ];
        for (count, kind) in kinds {
            for _ in 0..count {
                events.push(FaultEvent {
                    replica: sampler.replica(replicas),
                    at_s: sampler.offset_s(window_s),
                    kind,
                });
            }
        }
        FaultPlan::new(events)
    }

    /// Parses the `CENTAUR_SERVE_FAULT_PLAN` format: comma-separated
    /// events, each `kind:replica:at_ms` with kind one of
    /// `crash`/`transient`, `stall:replica:at_ms:stall_ms`, or
    /// `degraded:replica:at_ms:factor` (persistent `factor`× slowdown,
    /// factor ≥ 2). Examples: `crash:0:50`,
    /// `crash:0:50,stall:1:120:5,degraded:1:80:4,transient:0:200`.
    ///
    /// Returns `None` for anything malformed (unknown kind, missing or
    /// non-numeric fields, negative times, zero-length stalls, degrade
    /// factors below 2) so callers can distinguish "unset" from
    /// "misspelled".
    pub fn parse(value: &str) -> Option<FaultPlan> {
        let mut events = Vec::new();
        for part in value.split(',') {
            let fields: Vec<&str> = part.trim().split(':').collect();
            let kind = *fields.first()?;
            let replica = fields.get(1)?.parse::<usize>().ok()?;
            let at_ms = fields
                .get(2)?
                .parse::<f64>()
                .ok()
                .filter(|ms| ms.is_finite() && *ms >= 0.0)?;
            let kind = match (kind.to_ascii_lowercase().as_str(), fields.len()) {
                ("crash", 3) => FaultKind::Crash,
                ("transient", 3) => FaultKind::Transient,
                ("stall", 4) => FaultKind::Stall {
                    millis: fields[3].parse::<u64>().ok().filter(|&ms| ms > 0)?,
                },
                ("degraded", 4) => FaultKind::Degraded {
                    factor: fields[3].parse::<u32>().ok().filter(|&f| f >= 2)?,
                },
                _ => return None,
            };
            events.push(FaultEvent {
                replica,
                at_s: at_ms * 1e-3,
                kind,
            });
        }
        if events.is_empty() {
            return None;
        }
        Some(FaultPlan::new(events))
    }

    /// No events scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The per-replica guard a worker polls: the slice of this plan
    /// targeting `replica`, in time order.
    pub fn guard_for(&self, replica: usize) -> FaultGuard {
        FaultGuard {
            events: self
                .events
                .iter()
                .filter(|e| e.replica == replica)
                .map(|e| (e.at_s, e.kind))
                .collect(),
            next: 0,
            degrade_factor: 1,
        }
    }

    /// Compact label for bench cells: `none`, or kind counts like `c1`,
    /// `c1s1t2`, `d1` (crashes, stalls, transients, degraded).
    pub fn label(&self) -> String {
        if self.events.is_empty() {
            return "none".to_string();
        }
        let mut crashes = 0usize;
        let mut stalls = 0usize;
        let mut transients = 0usize;
        let mut degraded = 0usize;
        for event in &self.events {
            match event.kind {
                FaultKind::Crash => crashes += 1,
                FaultKind::Stall { .. } => stalls += 1,
                FaultKind::Transient => transients += 1,
                FaultKind::Degraded { .. } => degraded += 1,
            }
        }
        let mut label = String::new();
        for (count, tag) in [
            (crashes, 'c'),
            (stalls, 's'),
            (transients, 't'),
            (degraded, 'd'),
        ] {
            if count > 0 {
                label.push(tag);
                label.push_str(&count.to_string());
            }
        }
        label
    }
}

/// A compact, copyable description of a seeded fault plan — what a sweep
/// cell carries so [`FaultPlan::seeded`] can materialize the schedule once
/// the replay window and replica count are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the schedule sampler.
    pub seed: u64,
    /// Number of crash events.
    pub crashes: usize,
    /// Number of stall events.
    pub stalls: usize,
    /// Number of transient-error events.
    pub transients: usize,
    /// Number of persistent-slowdown ([`FaultKind::Degraded`]) events.
    pub degraded: usize,
    /// Stall length in milliseconds (applies to every stall event).
    pub stall_ms: u64,
    /// Service-time multiplier for degraded events (clamped to ≥ 2 when
    /// the plan materializes).
    pub degrade_factor: u32,
    /// Schedule the stall events as a repeating/intermittent series —
    /// evenly spaced jittered offsets all striking one victim — instead of
    /// independent one-off events.
    pub repeat_stalls: bool,
}

impl FaultSpec {
    /// No faults.
    pub fn none() -> Self {
        FaultSpec {
            seed: 0,
            crashes: 0,
            stalls: 0,
            transients: 0,
            degraded: 0,
            stall_ms: 5,
            degrade_factor: 4,
            repeat_stalls: false,
        }
    }

    /// A plan of `count` crashes (builder start; chain `with_*`).
    pub fn crashes(count: usize) -> Self {
        FaultSpec {
            crashes: count,
            ..FaultSpec::none()
        }
    }

    /// Adds stall events.
    pub fn with_stalls(mut self, count: usize) -> Self {
        self.stalls = count;
        self
    }

    /// Adds transient-error events.
    pub fn with_transients(mut self, count: usize) -> Self {
        self.transients = count;
        self
    }

    /// Sets the stall length in milliseconds.
    pub fn with_stall_ms(mut self, millis: u64) -> Self {
        self.stall_ms = millis;
        self
    }

    /// Adds persistent-slowdown events ([`FaultKind::Degraded`]).
    pub fn with_degraded(mut self, count: usize) -> Self {
        self.degraded = count;
        self
    }

    /// Sets the degraded service-time multiplier.
    pub fn with_degrade_factor(mut self, factor: u32) -> Self {
        self.degrade_factor = factor;
        self
    }

    /// Schedules the stall events as a repeating/intermittent series on
    /// one victim (see [`FaultPlan::seeded`]).
    pub fn with_repeating_stalls(mut self) -> Self {
        self.repeat_stalls = true;
        self
    }

    /// Sets the schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the spec schedules nothing.
    pub fn is_none(&self) -> bool {
        self.count() == 0
    }

    /// Combines two specs into the schedule a *shared* pool experiences:
    /// event counts sum, the stall length is the longer of the two, and the
    /// seed is the first non-empty spec's. In a shared multi-tenant pool a
    /// fault "targeting" one tenant hits a replica every tenant depends on —
    /// merging the per-tenant specs is what makes that concrete.
    #[must_use]
    pub fn merge(self, other: FaultSpec) -> Self {
        FaultSpec {
            seed: if self.is_none() {
                other.seed
            } else {
                self.seed
            },
            crashes: self.crashes + other.crashes,
            stalls: self.stalls + other.stalls,
            transients: self.transients + other.transients,
            degraded: self.degraded + other.degraded,
            stall_ms: self.stall_ms.max(other.stall_ms),
            degrade_factor: self.degrade_factor.max(other.degrade_factor),
            repeat_stalls: self.repeat_stalls || other.repeat_stalls,
        }
    }

    /// Total scheduled events.
    pub fn count(&self) -> usize {
        self.crashes + self.stalls + self.transients + self.degraded
    }
}

/// Per-replica fault schedule a worker polls once per coalesced batch.
/// Event state survives a replica restart (the guard lives in the
/// supervisor, outside the crashing worker body), so a fired crash never
/// re-fires against the restarted replica.
#[derive(Debug, Clone)]
pub struct FaultGuard {
    events: Vec<(f64, FaultKind)>,
    next: usize,
    /// Persistent service-time multiplier once a [`FaultKind::Degraded`]
    /// event has fired; `1` while the replica runs at full speed.
    degrade_factor: u32,
}

impl FaultGuard {
    /// A guard with no events — the fault-free fast path (never allocates,
    /// never fires).
    pub fn none() -> Self {
        FaultGuard {
            events: Vec::new(),
            next: 0,
            degrade_factor: 1,
        }
    }

    /// The active persistent slowdown multiplier (`1` = none).
    pub fn degrade_factor(&self) -> u32 {
        self.degrade_factor
    }

    /// Stretches one served batch by the active slowdown: after a
    /// [`FaultKind::Degraded`] event fires, a batch whose true service
    /// took `service` sleeps the remaining `(factor − 1) × service` here,
    /// so the replica's *observed* service time is `factor ×` its real
    /// one from the event onwards. A no-op at full speed.
    pub fn apply_degradation(&self, service: Duration) {
        if self.degrade_factor > 1 {
            std::thread::sleep(service * (self.degrade_factor - 1));
        }
    }

    /// Returns the next due event at `now_s`, if any, consuming it. At most
    /// one event fires per poll; a backlog of overdue events drains one per
    /// batch.
    pub fn poll(&mut self, now_s: f64) -> Option<FaultKind> {
        let &(at_s, kind) = self.events.get(self.next)?;
        if now_s < at_s {
            return None;
        }
        self.next += 1;
        Some(kind)
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Polls and *acts*: a due crash panics (the injected payload names the
    /// replica and time — what the supervisor preserves and the harness
    /// re-raises on unrecoverable failure), a due stall sleeps in place,
    /// and a due transient returns a datapath error for the caller to
    /// handle exactly like a real batch failure.
    ///
    /// # Errors
    ///
    /// Returns an error when a [`FaultKind::Transient`] event is due.
    ///
    /// # Panics
    ///
    /// Panics when a [`FaultKind::Crash`] event is due.
    pub fn intercept(&mut self, replica: usize, now_s: f64) -> Result<(), CentaurError> {
        match self.poll(now_s) {
            None => Ok(()),
            Some(FaultKind::Crash) => {
                panic!("injected fault: replica {replica} crash at {now_s:.4} s into the replay")
            }
            Some(FaultKind::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
                Ok(())
            }
            Some(FaultKind::Transient) => Err(CentaurError::NotInitialised(
                "injected transient datapath fault",
            )),
            Some(FaultKind::Degraded { factor }) => {
                self.degrade_factor = factor.max(1);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_fires_each_event_once_in_time_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                replica: 0,
                at_s: 0.2,
                kind: FaultKind::Transient,
            },
            FaultEvent {
                replica: 0,
                at_s: 0.1,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                replica: 1,
                at_s: 0.05,
                kind: FaultKind::Stall { millis: 3 },
            },
        ]);
        let mut guard = plan.guard_for(0);
        assert_eq!(
            guard.remaining(),
            2,
            "guard holds only its replica's events"
        );
        assert_eq!(guard.poll(0.05), None, "nothing due yet");
        assert_eq!(guard.poll(0.15), Some(FaultKind::Crash), "earliest first");
        assert_eq!(guard.poll(0.15), None, "fired events never re-fire");
        assert_eq!(guard.poll(0.5), Some(FaultKind::Transient));
        assert_eq!(guard.poll(9.0), None, "guard exhausted");
        assert_eq!(guard.remaining(), 0);

        let mut other = plan.guard_for(1);
        assert_eq!(other.poll(1.0), Some(FaultKind::Stall { millis: 3 }));
        assert!(plan.guard_for(7).poll(99.0).is_none(), "absent replica");
    }

    #[test]
    fn overdue_backlog_drains_one_event_per_poll() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                replica: 0,
                at_s: 0.01,
                kind: FaultKind::Transient,
            },
            FaultEvent {
                replica: 0,
                at_s: 0.02,
                kind: FaultKind::Transient,
            },
        ]);
        let mut guard = plan.guard_for(0);
        assert_eq!(guard.poll(1.0), Some(FaultKind::Transient));
        assert_eq!(guard.poll(1.0), Some(FaultKind::Transient));
        assert_eq!(guard.poll(1.0), None);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_sized_by_the_spec() {
        let spec = FaultSpec::crashes(2)
            .with_stalls(1)
            .with_transients(3)
            .with_seed(9);
        let a = FaultPlan::seeded(spec, 4, 2.0);
        let b = FaultPlan::seeded(spec, 4, 2.0);
        assert_eq!(a, b, "same spec, same plan");
        assert_eq!(a.len(), 6);
        assert_eq!(a.label(), "c2s1t3");
        for event in a.events() {
            assert!(event.replica < 4);
            assert!(event.at_s >= 0.0 && event.at_s <= 2.0);
        }
        assert_ne!(
            a,
            FaultPlan::seeded(spec.with_seed(10), 4, 2.0),
            "different seed, different schedule"
        );
    }

    #[test]
    fn parse_accepts_the_documented_format_only() {
        let plan = FaultPlan::parse("crash:0:50,stall:1:120:5,transient:0:200").unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.label(), "c1s1t1");
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                replica: 0,
                at_s: 0.05,
                kind: FaultKind::Crash,
            }
        );
        assert_eq!(
            plan.events()[1],
            FaultEvent {
                replica: 1,
                at_s: 0.12,
                kind: FaultKind::Stall { millis: 5 },
            }
        );
        // Case-insensitive kinds, whitespace tolerated around events.
        assert!(FaultPlan::parse("CRASH:0:10, Transient:1:20").is_some());

        for bad in [
            "",
            "crash",
            "crash:0",
            "crash:0:abc",
            "crash:0:-5",
            "crash:0:inf",
            "crash:0:50:9",
            "stall:0:50",
            "stall:0:50:0",
            "reboot:0:50",
            "crash:0:50,,",
            "crash:x:50",
        ] {
            assert!(FaultPlan::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn merged_specs_sum_counts_and_keep_the_first_seed() {
        let a = FaultSpec::crashes(1).with_stalls(2).with_seed(7);
        let b = FaultSpec::crashes(2)
            .with_transients(3)
            .with_stall_ms(9)
            .with_seed(11);
        let merged = a.merge(b);
        assert_eq!(merged.crashes, 3);
        assert_eq!(merged.stalls, 2);
        assert_eq!(merged.transients, 3);
        assert_eq!(merged.stall_ms, 9, "longer stall wins");
        assert_eq!(merged.seed, 7, "first non-empty spec's seed");
        assert_eq!(
            FaultSpec::none().merge(b).seed,
            11,
            "an empty left side defers to the right seed"
        );
    }

    #[test]
    fn labels_and_specs_cover_the_empty_case() {
        assert_eq!(FaultPlan::none().label(), "none");
        assert!(FaultPlan::none().is_empty());
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::crashes(1).is_none());
        assert_eq!(FaultPlan::seeded(FaultSpec::none(), 2, 1.0).len(), 0);
    }

    #[test]
    fn intercept_translates_events_into_actions() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                replica: 0,
                at_s: 0.0,
                kind: FaultKind::Transient,
            },
            FaultEvent {
                replica: 0,
                at_s: 0.0,
                kind: FaultKind::Stall { millis: 1 },
            },
        ]);
        let mut guard = plan.guard_for(0);
        assert!(
            guard.intercept(0, 1.0).is_err(),
            "transient becomes an error"
        );
        assert!(
            guard.intercept(0, 1.0).is_ok(),
            "stall sleeps and continues"
        );
        assert!(
            guard.intercept(0, 1.0).is_ok(),
            "exhausted guard is a no-op"
        );
    }

    #[test]
    fn parse_accepts_degraded_events_with_a_meaningful_factor() {
        let plan = FaultPlan::parse("degraded:1:80:4").unwrap();
        assert_eq!(plan.label(), "d1");
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                replica: 1,
                at_s: 0.08,
                kind: FaultKind::Degraded { factor: 4 },
            }
        );
        assert!(FaultPlan::parse("degraded:0:10:2").is_some());
        for bad in [
            "degraded:0:10",   // factor required
            "degraded:0:10:1", // a 1x slowdown is not degraded
            "degraded:0:10:0",
            "degraded:0:10:x",
        ] {
            assert!(FaultPlan::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn seeded_degraded_and_repeating_stall_schedules_are_deterministic() {
        let spec = FaultSpec::none()
            .with_degraded(1)
            .with_degrade_factor(4)
            .with_seed(5);
        let plan = FaultPlan::seeded(spec, 2, 1.0);
        assert_eq!(plan.label(), "d1");
        assert_eq!(plan.events()[0].kind, FaultKind::Degraded { factor: 4 });
        assert_eq!(
            plan,
            FaultPlan::seeded(spec, 2, 1.0),
            "same seed, same plan"
        );

        let repeating = FaultSpec::none()
            .with_stalls(4)
            .with_stall_ms(10)
            .with_repeating_stalls()
            .with_seed(9);
        let plan = FaultPlan::seeded(repeating, 3, 2.0);
        assert_eq!(plan.label(), "s4");
        let victim = plan.events()[0].replica;
        assert!(
            plan.events().iter().all(|e| e.replica == victim),
            "a repeating stall schedule afflicts one victim"
        );
        assert!(
            plan.events().windows(2).all(|p| p[0].at_s <= p[1].at_s),
            "repeating offsets are time-ordered"
        );
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::Stall { millis: 10 }));
    }

    #[test]
    fn degraded_event_persistently_stretches_service() {
        let plan = FaultPlan::new(vec![FaultEvent {
            replica: 0,
            at_s: 0.0,
            kind: FaultKind::Degraded { factor: 3 },
        }]);
        let mut guard = plan.guard_for(0);
        assert_eq!(guard.degrade_factor(), 1, "full speed before the event");
        let t0 = std::time::Instant::now();
        guard.apply_degradation(Duration::from_millis(50));
        assert!(
            t0.elapsed() < Duration::from_millis(20),
            "no slowdown applied before the event fires"
        );
        assert!(
            guard.intercept(0, 0.5).is_ok(),
            "degradation is not a fault"
        );
        assert_eq!(guard.degrade_factor(), 3);
        let t1 = std::time::Instant::now();
        guard.apply_degradation(Duration::from_millis(5));
        assert!(
            t1.elapsed() >= Duration::from_millis(10),
            "a 3x factor sleeps 2x the true service on top of it"
        );
    }

    #[test]
    fn injected_crash_panics_with_a_recognizable_payload() {
        let plan = FaultPlan::new(vec![FaultEvent {
            replica: 3,
            at_s: 0.0,
            kind: FaultKind::Crash,
        }]);
        let mut guard = plan.guard_for(3);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = guard.intercept(3, 0.5);
        }))
        .expect_err("crash event must panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload is the formatted message");
        assert!(message.contains("injected fault"), "{message}");
        assert!(message.contains("replica 3"), "{message}");
    }
}
