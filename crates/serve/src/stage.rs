//! Per-replica batch staging: coalesced requests are copied into reusable
//! batch-major buffers and run through the accelerator's batched path.
//!
//! Mirrors the `BatchWorkspace` discipline of the model crate: every buffer
//! grows to a high-water mark on the first batches and is reused afterwards,
//! so the serving steady state performs **zero heap allocations** per batch
//! (asserted by the workspace-level `tests/zero_alloc.rs`).

use centaur::{CentaurError, CentaurRuntime};
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::{DlrmError, InferenceRequest};

/// Reusable staging buffers turning a slice of queued [`InferenceRequest`]s
/// into one batch-major accelerator call.
#[derive(Debug, Clone)]
pub struct ReplicaStage {
    cols: usize,
    max_batch: usize,
    /// Batch-major dense features (`[max_batch * cols]`).
    dense: Vec<f32>,
    /// Staged index lists (`[max_batch][num_tables]`, inner `Vec`s reused).
    sparse: Vec<Vec<Vec<u32>>>,
    /// One probability slot per staged sample.
    out: Vec<f32>,
}

impl ReplicaStage {
    /// Builds a stage for `config`-shaped requests coalescing at most
    /// `max_batch` samples.
    pub fn new(config: &ModelConfig, max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        ReplicaStage {
            cols: config.dense_features,
            max_batch,
            dense: vec![0.0; max_batch * config.dense_features],
            sparse: (0..max_batch)
                .map(|_| vec![Vec::new(); config.num_tables])
                .collect(),
            out: vec![0.0; max_batch],
        }
    }

    /// Largest batch this stage can hold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Stages `requests` into the reusable buffers and runs one batched
    /// inference on `runtime`; returns one probability per request, in
    /// request order.
    ///
    /// # Errors
    ///
    /// Returns a batch/shape mismatch when more requests than `max_batch`
    /// are staged or a request does not match the stage's model shape, plus
    /// any accelerator datapath error.
    pub fn run_batch(
        &mut self,
        runtime: &mut CentaurRuntime,
        requests: &[&InferenceRequest],
    ) -> Result<&[f32], CentaurError> {
        let n = requests.len();
        if n > self.max_batch {
            return Err(DlrmError::BatchMismatch {
                what: "coalesced requests vs stage capacity",
                left: n,
                right: self.max_batch,
            }
            .into());
        }
        for (slot, request) in requests.iter().enumerate() {
            if request.dense.len() != self.cols {
                return Err(DlrmError::BatchMismatch {
                    what: "request dense features vs stage width",
                    left: request.dense.len(),
                    right: self.cols,
                }
                .into());
            }
            let tables = &mut self.sparse[slot];
            if request.sparse.len() != tables.len() {
                return Err(DlrmError::TableCountMismatch {
                    provided: request.sparse.len(),
                    expected: tables.len(),
                }
                .into());
            }
            self.dense[slot * self.cols..(slot + 1) * self.cols].copy_from_slice(&request.dense);
            for (staged, lists) in tables.iter_mut().zip(&request.sparse) {
                staged.clear();
                staged.extend_from_slice(lists);
            }
        }
        runtime.infer_batch_rows_into(
            &self.dense[..n * self.cols],
            self.cols,
            &self.sparse[..n],
            &mut self.out[..n],
        )?;
        Ok(&self.out[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::{DlrmModel, PaperModel};
    use centaur_workload::IndexDistribution;

    fn model() -> DlrmModel {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(256);
        DlrmModel::random(&config, 3).unwrap()
    }

    fn requests(config: &ModelConfig, count: usize) -> Vec<InferenceRequest> {
        crate::generate_requests(config, IndexDistribution::Uniform, 7, count)
    }

    #[test]
    fn staged_batch_matches_direct_batch_inference() {
        let model = model();
        let config = model.config().clone();
        let mut runtime = CentaurRuntime::harpv2(model.clone()).unwrap();
        let mut stage = ReplicaStage::new(&config, 8);
        let requests = requests(&config, 6);
        let refs: Vec<&InferenceRequest> = requests.iter().collect();
        let staged = stage.run_batch(&mut runtime, &refs).unwrap().to_vec();

        // Reference: the same samples through the runtime's Matrix path.
        let dense = centaur_dlrm::Matrix::from_vec(
            6,
            config.dense_features,
            requests.iter().flat_map(|r| r.dense.clone()).collect(),
        )
        .unwrap();
        let sparse: Vec<Vec<Vec<u32>>> = requests.iter().map(|r| r.sparse.clone()).collect();
        let mut reference = CentaurRuntime::harpv2(model).unwrap();
        let expected = reference.infer_batch(&dense, &sparse).unwrap();
        assert_eq!(staged, expected);
    }

    #[test]
    fn stage_rejects_overflow_and_bad_shapes() {
        let model = model();
        let config = model.config().clone();
        let mut runtime = CentaurRuntime::harpv2(model).unwrap();
        let mut stage = ReplicaStage::new(&config, 2);
        let requests = requests(&config, 3);
        let refs: Vec<&InferenceRequest> = requests.iter().collect();
        assert!(stage.run_batch(&mut runtime, &refs).is_err(), "overflow");

        let mut bad = requests[0].clone();
        bad.dense.push(0.0);
        assert!(stage.run_batch(&mut runtime, &[&bad]).is_err());
        let mut bad = requests[0].clone();
        bad.sparse.pop();
        assert!(stage.run_batch(&mut runtime, &[&bad]).is_err());
        // A good batch still serves after rejected ones.
        assert_eq!(stage.run_batch(&mut runtime, &refs[..2]).unwrap().len(), 2);
    }
}
