//! Multi-tenant serving: per-tenant replica pools with their own SLO, fault
//! and retry budgets, versus a shared-everything baseline.
//!
//! A production recommendation fleet serves a *mix* — a heavy DLRM(6)
//! ranking query and a light DLRM(1) candidate query co-located on one
//! host. The robustness question (RecNMP / MicroRec leave it open) is
//! whether a crash or burst in one tenant's pool starves its neighbour's
//! SLO. This module answers it measurably with two topologies over the same
//! tenant specs:
//!
//! * **Isolated** ([`PoolMode::Isolated`]): each tenant gets its own
//!   [`ArrivalQueue`] (earliest-deadline-first order), its own supervised
//!   replica pool, its own SLO/retry/restart budgets, and its own fault
//!   plan. Nothing is shared, so a fault plan targeting the heavy pool
//!   cannot touch the light tenant's queue or replicas.
//! * **Shared** ([`PoolMode::Shared`]): the merged request stream feeds one
//!   FIFO queue with one deadline budget (the *loosest* tenant SLO), one
//!   over-holding service estimate (the *largest* tenant estimate), pooled
//!   replicas each able to serve every tenant ([`MixServer`]), pooled
//!   admission depth and merged supervision/fault budgets — the
//!   "one of everything" deployment the isolation sweep measures against.
//!
//! Per-tenant accounting holds in both: every generated request ends in
//! exactly one of completed / shed / failed *per tenant* (asserted), and
//! each tenant's row reports goodput, availability and per-reason
//! rejections judged against that tenant's **own** SLO — in shared mode the
//! pool only enforced the shared budget, which is exactly the violation the
//! sweep exposes.
//!
//! Availability on mix rows is *answered availability*: `completed /
//! generated`. The single-model rows report `completed / (completed +
//! failed)` (sheds excluded as deliberate flow control); for cross-tenant
//! isolation the question is "what fraction of this tenant's traffic got an
//! answer", and a light tenant shed behind a heavy backlog is exactly the
//! harm being measured, so sheds count against mix availability.

use crate::fault::{FaultPlan, FaultSpec};
use crate::harness::{
    generate_requests, guard_worker, replay_arrivals, worker_loop, ServeOptions, ServeOutcome,
    ServeReport, WorkerResult,
};
use crate::policy::BatchPolicy;
use crate::queue::{ArrivalQueue, DequeueOrder, QueuedRequest};
use crate::server::BatchServer;
use crate::stage::ReplicaStage;
use crate::supervisor::{
    supervise_replica, HealthBoard, InFlightSlot, Supervision, SupervisorShared,
};
use centaur::{CentaurConfig, CentaurError, CentaurRuntime};
use centaur_dlrm::{DlrmModel, InferenceRequest, RejectReason, RejectedRequest};
use centaur_workload::{IndexDistribution, ModelMix, QueryStream, TenantTraffic};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One tenant of a multi-tenant serving mix: its model, traffic slice, SLO
/// and fault-tolerance budgets, and the replica pool it gets when pools are
/// isolated.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, used in report rows and labels.
    pub name: String,
    /// The model this tenant serves.
    pub model: DlrmModel,
    /// Index distribution for this tenant's generated requests.
    pub distribution: IndexDistribution,
    /// This tenant's slice of the total offered load.
    pub traffic: TenantTraffic,
    /// This tenant's own latency SLO.
    pub slo: Duration,
    /// Replica shards in this tenant's pool (isolated mode); pooled into
    /// the shared total in shared mode.
    pub replicas: usize,
    /// This tenant's fault-tolerance budgets; `None` = fail-stop.
    pub supervision: Option<Supervision>,
    /// Seeded fault schedule injected into this tenant's pool (isolated) or
    /// merged into the shared pool's plan (shared).
    pub faults: FaultSpec,
    /// Calibrated batch service estimate for this tenant's model — see
    /// [`crate::policy::scaled_service_estimate`].
    pub service_estimate: Duration,
    /// Admission-gate depth for this tenant's queue; summed in shared mode.
    pub admission_depth: Option<usize>,
}

impl TenantSpec {
    /// A tenant with permissive defaults: uniform indices, one replica,
    /// fail-stop (no supervision), no faults, a 1 ms service estimate and
    /// an unbounded queue.
    pub fn new(name: &str, model: DlrmModel, traffic: TenantTraffic, slo: Duration) -> Self {
        TenantSpec {
            name: name.to_string(),
            model,
            distribution: IndexDistribution::Uniform,
            traffic,
            slo,
            replicas: 1,
            supervision: None,
            faults: FaultSpec::none(),
            service_estimate: Duration::from_millis(1),
            admission_depth: None,
        }
    }

    /// Same tenant with `replicas` shards in its pool.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Same tenant with supervised fault-tolerance budgets.
    pub fn supervised(mut self, supervision: Supervision) -> Self {
        self.supervision = Some(supervision);
        self
    }

    /// Same tenant with a seeded fault schedule targeting its pool.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Same tenant with a calibrated batch service estimate.
    pub fn with_service_estimate(mut self, estimate: Duration) -> Self {
        self.service_estimate = estimate;
        self
    }

    /// Same tenant with an admission-gate depth bound.
    pub fn with_admission_depth(mut self, depth: usize) -> Self {
        self.admission_depth = Some(depth);
        self
    }

    /// Same tenant with a different index distribution.
    pub fn with_distribution(mut self, distribution: IndexDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// This tenant's deadline-aware batching policy, calibrated to its own
    /// service estimate.
    pub fn policy(&self) -> BatchPolicy {
        BatchPolicy::deadline_wave(self.service_estimate)
    }
}

/// Pool topology for a multi-tenant run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Per-tenant queue + pool + budgets, EDF dispatch.
    Isolated,
    /// One FIFO queue, one pooled replica set, one shared budget of
    /// everything — the baseline.
    Shared,
}

impl PoolMode {
    /// Short label for report output (`isolated`, `shared`).
    pub fn label(&self) -> &'static str {
        match self {
            PoolMode::Isolated => "isolated",
            PoolMode::Shared => "shared",
        }
    }
}

/// The multi-tenant serving backend for a shared pool: each replica owns
/// one engine (runtime shard + staging buffers) per tenant and routes every
/// request in a popped batch to its tenant's engine, scattering the
/// probabilities back into batch order. Steady state allocates nothing once
/// the per-tenant scratch buffers reach their high-water marks.
pub struct MixServer<'a> {
    requests: &'a [InferenceRequest],
    tenant_of: &'a [usize],
    engines: Vec<TenantEngine>,
    /// Per-tenant scratch: positions in the current batch owned by each
    /// tenant.
    positions: Vec<Vec<usize>>,
    staged: Vec<&'a InferenceRequest>,
}

struct TenantEngine {
    runtime: CentaurRuntime,
    stage: ReplicaStage,
}

impl<'a> MixServer<'a> {
    /// A backend routing `requests` across one engine per tenant:
    /// `engines[t]` serves every request whose `tenant_of[index]` is `t`.
    ///
    /// # Panics
    ///
    /// Panics when `tenant_of` does not cover `requests`, maps a request to
    /// a missing engine, or `engines` is empty.
    pub fn new(
        engines: Vec<CentaurRuntime>,
        requests: &'a [InferenceRequest],
        tenant_of: &'a [usize],
        max_batch: usize,
    ) -> Self {
        assert!(
            !engines.is_empty(),
            "a mix server needs at least one engine"
        );
        assert_eq!(
            tenant_of.len(),
            requests.len(),
            "tenant map must cover the merged request set"
        );
        assert!(
            tenant_of.iter().all(|&t| t < engines.len()),
            "every request must map to an engine"
        );
        let engines: Vec<TenantEngine> = engines
            .into_iter()
            .map(|runtime| {
                let config = runtime.model().config().clone();
                TenantEngine {
                    stage: ReplicaStage::new(&config, max_batch),
                    runtime,
                }
            })
            .collect();
        let positions = engines
            .iter()
            .map(|_| Vec::with_capacity(max_batch))
            .collect();
        MixServer {
            requests,
            tenant_of,
            engines,
            positions,
            staged: Vec::with_capacity(max_batch),
        }
    }
}

impl BatchServer for MixServer<'_> {
    fn serve_batch(
        &mut self,
        batch: &[QueuedRequest],
        out: &mut Vec<f32>,
    ) -> Result<(), CentaurError> {
        out.clear();
        out.resize(batch.len(), 0.0);
        for positions in &mut self.positions {
            positions.clear();
        }
        for (position, queued) in batch.iter().enumerate() {
            self.positions[self.tenant_of[queued.index]].push(position);
        }
        for (tenant, engine) in self.engines.iter_mut().enumerate() {
            let positions = &self.positions[tenant];
            if positions.is_empty() {
                continue;
            }
            self.staged.clear();
            self.staged
                .extend(positions.iter().map(|&p| &self.requests[batch[p].index]));
            let probabilities = engine.stage.run_batch(&mut engine.runtime, &self.staged)?;
            for (&position, &probability) in positions.iter().zip(probabilities) {
                out[position] = probability;
            }
        }
        Ok(())
    }

    fn request_id(&self, index: usize) -> u64 {
        self.requests[index].id
    }
}

/// Deterministic per-tenant seed derivation so tenants draw independent
/// request sets and arrival schedules from one cell seed.
fn tenant_seed(seed: u64, tenant: usize) -> u64 {
    seed ^ ((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs one multi-tenant cell: every tenant's traffic slice replayed
/// against pools in `mode` topology, returning one per-tenant
/// [`ServeReport`] row per tenant (declaration order).
///
/// The tenant shares must form a complete mix (positive, summing to 1 —
/// validated through [`ModelMix`]). Each tenant replays
/// `traffic.queries(total_queries)` requests at `traffic.rate_qps(total_qps)`
/// mean offered load.
///
/// # Errors
///
/// Propagates registration and serving errors from any tenant's pool.
///
/// # Panics
///
/// Panics when the per-tenant accounting invariant breaks (a generated
/// request with no terminal state), or on an unrecoverable supervised run
/// (every replica dead — the first crash's payload is re-raised).
pub fn run_mix_cell(
    accel: CentaurConfig,
    tenants: &[TenantSpec],
    mode: PoolMode,
    total_qps: f64,
    total_queries: usize,
    seed: u64,
) -> Result<Vec<ServeReport>, CentaurError> {
    // Validates the shares: positive, summing to 1.
    let _mix = ModelMix::new(
        tenants
            .iter()
            .map(|t| (t.name.clone(), t.traffic))
            .collect(),
    );
    match mode {
        PoolMode::Isolated => run_isolated(accel, tenants, total_qps, total_queries, seed),
        PoolMode::Shared => run_shared(accel, tenants, total_qps, total_queries, seed),
    }
}

/// Isolated topology: one thread per tenant, each running the standard
/// single-model harness against its own queue (EDF order), pool, SLO and
/// fault plan. The tenants run concurrently — they still contend for the
/// host like co-located pools do — but share no serving state.
fn run_isolated(
    accel: CentaurConfig,
    tenants: &[TenantSpec],
    total_qps: f64,
    total_queries: usize,
    seed: u64,
) -> Result<Vec<ServeReport>, CentaurError> {
    let mut results: Vec<Option<Result<ServeReport, CentaurError>>> =
        tenants.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        for (tenant_index, (slot, tenant)) in results.iter_mut().zip(tenants).enumerate() {
            scope.spawn(move || {
                *slot = Some(run_tenant_pool(
                    accel,
                    tenant,
                    tenant_index,
                    total_qps,
                    total_queries,
                    seed,
                ));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("tenant thread always reports"))
        .collect()
}

/// One isolated tenant pool, end to end.
fn run_tenant_pool(
    accel: CentaurConfig,
    tenant: &TenantSpec,
    tenant_index: usize,
    total_qps: f64,
    total_queries: usize,
    seed: u64,
) -> Result<ServeReport, CentaurError> {
    let config = tenant.model.config().clone();
    let queries = tenant.traffic.queries(total_queries);
    let rate_qps = tenant.traffic.rate_qps(total_qps);
    let request_seed = tenant_seed(seed, tenant_index);
    let requests = generate_requests(&config, tenant.distribution, request_seed, queries);
    let stream = QueryStream::generate(
        tenant.traffic.process(total_qps),
        queries,
        request_seed ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(tenant.model.clone(), accel, tenant.replicas)?;
    let plan = if tenant.faults.is_none() {
        FaultPlan::none()
    } else {
        let window_s = queries as f64 / rate_qps.max(1e-9);
        FaultPlan::seeded(tenant.faults, tenant.replicas, window_s)
    };
    let options = ServeOptions {
        slo: Some(tenant.slo),
        admission_depth: tenant.admission_depth,
        shed_expired: true,
        supervision: tenant.supervision,
        order: DequeueOrder::Edf,
        hedge: None,
    };
    let outcome = crate::harness::serve_replay_faulted(
        pool,
        &requests,
        &stream,
        tenant.policy(),
        options,
        &plan,
    )?;
    Ok(tenant_report(
        tenant,
        PoolMode::Isolated,
        rate_qps,
        tenant.policy().label(),
        tenant.replicas,
        plan.label(),
        queries,
        &outcome,
    ))
}

/// Shared-everything topology: merged stream, one FIFO queue, pooled
/// replicas each serving every tenant, one shared budget of everything.
fn run_shared(
    accel: CentaurConfig,
    tenants: &[TenantSpec],
    total_qps: f64,
    total_queries: usize,
    seed: u64,
) -> Result<Vec<ServeReport>, CentaurError> {
    // Merge the per-tenant request sets, re-stamped with ids dense across
    // the merged stream so completions/rejections map back to tenants.
    let mut merged: Vec<InferenceRequest> = Vec::new();
    let mut tenant_of: Vec<usize> = Vec::new();
    let mut offsets: Vec<usize> = Vec::new();
    let mut generated: Vec<usize> = Vec::new();
    let mut streams: Vec<QueryStream> = Vec::new();
    for (tenant_index, tenant) in tenants.iter().enumerate() {
        let config = tenant.model.config().clone();
        let queries = tenant.traffic.queries(total_queries);
        let request_seed = tenant_seed(seed, tenant_index);
        let requests = generate_requests(&config, tenant.distribution, request_seed, queries);
        offsets.push(merged.len());
        for request in requests {
            let id = merged.len() as u64;
            tenant_of.push(tenant_index);
            merged.push(request.with_id(id));
        }
        generated.push(queries);
        streams.push(QueryStream::generate(
            tenant.traffic.process(total_qps),
            queries,
            request_seed ^ 0xA11,
        ));
    }

    // Shared-everything budgets: the loosest SLO, the largest (over-holding)
    // service estimate, pooled depth/replicas, merged supervision and fault
    // counts. This is the deployment that gives every tenant "one of
    // everything" — and therefore no tenant its own anything.
    let shared_slo = tenants.iter().map(|t| t.slo).max().expect("non-empty mix");
    let shared_estimate = tenants
        .iter()
        .map(|t| t.service_estimate)
        .max()
        .expect("non-empty mix");
    let shared_depth = tenants
        .iter()
        .map(|t| t.admission_depth)
        .try_fold(0usize, |sum, depth| depth.map(|d| sum + d));
    let replicas: usize = tenants.iter().map(|t| t.replicas).sum::<usize>().max(1);
    let supervision = merge_supervision(tenants);
    let faults = merge_faults(tenants);
    let policy = BatchPolicy::deadline_wave(shared_estimate);
    let options = ServeOptions {
        slo: Some(shared_slo),
        admission_depth: shared_depth,
        shed_expired: true,
        supervision,
        order: DequeueOrder::Fifo,
        hedge: None,
    };
    let plan = if faults.is_none() {
        FaultPlan::none()
    } else {
        let window_s = total_queries as f64 / total_qps.max(1e-9);
        FaultPlan::seeded(faults, replicas, window_s)
    };

    // Every pooled replica can serve every tenant: one engine per tenant
    // per replica (each tenant's model registered once, shards cloned).
    let mut per_tenant_pools: Vec<Vec<CentaurRuntime>> = Vec::with_capacity(tenants.len());
    for tenant in tenants {
        per_tenant_pools.push(CentaurRuntime::replica_pool(
            tenant.model.clone(),
            accel,
            replicas,
        )?);
    }
    let mut replica_engines: Vec<Vec<CentaurRuntime>> = (0..replicas)
        .map(|_| Vec::with_capacity(tenants.len()))
        .collect();
    for pool in per_tenant_pools {
        for (replica, runtime) in pool.into_iter().enumerate() {
            replica_engines[replica].push(runtime);
        }
    }

    let queue = ArrivalQueue::with_config(options.admission());
    queue.reserve_shed(merged.len());
    let slo_s = shared_slo.as_secs_f64();
    let abort = AtomicBool::new(false);
    let mut outcome = match supervision {
        None => shared_unsupervised(
            replica_engines,
            &merged,
            &tenant_of,
            &streams,
            &offsets,
            policy,
            &queue,
            slo_s,
            &abort,
            &plan,
        )?,
        Some(supervision) => shared_supervised(
            replica_engines,
            &merged,
            &tenant_of,
            &streams,
            &offsets,
            policy,
            &queue,
            slo_s,
            &abort,
            &plan,
            supervision,
        ),
    };
    outcome.failed = queue.failed();
    outcome.retries = queue.retries();
    outcome.shed_admission = queue.shed_admission();
    outcome.shed_expired = queue.shed_expired();
    outcome.rejections = queue
        .take_shed()
        .into_iter()
        .map(|(shed, reason)| RejectedRequest {
            id: merged[shed.index].id,
            reason,
            retries: shed.retries,
        })
        .collect();

    let split = split_by_tenant(&outcome, &tenant_of, tenants);
    Ok(tenants
        .iter()
        .zip(split.iter())
        .zip(generated)
        .map(|((tenant, tenant_outcome), generated)| {
            tenant_report(
                tenant,
                PoolMode::Shared,
                tenant.traffic.rate_qps(total_qps),
                policy.label(),
                replicas,
                plan.label(),
                generated,
                tenant_outcome,
            )
        })
        .collect())
}

/// Merged supervision for the shared pool: supervised if *any* tenant asked
/// for it, with the most generous per-request retry limit and the summed
/// restart budget — one shared budget every tenant's faults draw from.
fn merge_supervision(tenants: &[TenantSpec]) -> Option<Supervision> {
    let supervised: Vec<Supervision> = tenants.iter().filter_map(|t| t.supervision).collect();
    if supervised.is_empty() {
        return None;
    }
    Some(Supervision {
        retry_limit: supervised.iter().map(|s| s.retry_limit).max().unwrap_or(0),
        restart_budget: supervised.iter().map(|s| s.restart_budget).sum(),
    })
}

/// Merged fault schedule for the shared pool: the per-tenant event counts
/// summed into one spec. In a shared pool a fault "targeting" one tenant
/// hits a replica every tenant depends on — which is the point.
fn merge_faults(tenants: &[TenantSpec]) -> FaultSpec {
    let mut merged = FaultSpec::none();
    for tenant in tenants {
        if tenant.faults.is_none() {
            continue;
        }
        merged = merged.merge(tenant.faults);
    }
    merged
}

/// The shared pool's fail-stop path: mirrors the single-model harness but
/// with [`MixServer`] replicas and one generator thread per tenant stream.
#[allow(clippy::too_many_arguments)]
fn shared_unsupervised(
    mut replica_engines: Vec<Vec<CentaurRuntime>>,
    merged: &[InferenceRequest],
    tenant_of: &[usize],
    streams: &[QueryStream],
    offsets: &[usize],
    policy: BatchPolicy,
    queue: &ArrivalQueue,
    slo_s: f64,
    abort: &AtomicBool,
    plan: &FaultPlan,
) -> Result<ServeOutcome, CentaurError> {
    let mut worker_results: Vec<WorkerResult> = Vec::new();
    let generators = AtomicUsize::new(streams.len());
    let slots: Vec<InFlightSlot> = (0..replica_engines.len())
        .map(|_| InFlightSlot::new(policy.max_batch()))
        .collect();
    // Align the deadline clock with the replay start (setup between queue
    // construction and here must not eat into the schedule).
    queue.restart_clock();
    std::thread::scope(|scope| {
        let start = queue.start();
        let generators = &generators;
        let slots = &slots;
        let handles: Vec<_> = replica_engines
            .drain(..)
            .enumerate()
            .map(|(index, engines)| {
                let server = MixServer::new(engines, merged, tenant_of, policy.max_batch());
                let guard = plan.guard_for(index);
                scope.spawn(move || {
                    guard_worker(queue, abort, move || {
                        worker_loop(queue, server, policy, start, guard, &slots[index], index)
                    })
                })
            })
            .collect();
        for (stream, &offset) in streams.iter().zip(offsets) {
            scope.spawn(move || {
                replay_arrivals(queue, stream, slo_s, abort, start, offset, generators);
            });
        }
        worker_results = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect();
    });
    let mut outcome = empty_outcome(merged.len(), slo_s);
    let mut failure: Option<CentaurError> = None;
    for result in worker_results {
        match result {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(Ok((completions, batches))) => {
                outcome.completions.extend(completions);
                outcome.batches += batches;
            }
            Ok(Err(error)) => failure = failure.or(Some(error)),
        }
    }
    if let Some(error) = failure {
        return Err(error);
    }
    Ok(outcome)
}

/// The shared pool's supervised path: mirrors the single-model supervised
/// harness with [`MixServer`] replicas respawned from per-tenant template
/// shards, and one generator thread per tenant stream.
#[allow(clippy::too_many_arguments)]
fn shared_supervised<'a>(
    mut replica_engines: Vec<Vec<CentaurRuntime>>,
    merged: &'a [InferenceRequest],
    tenant_of: &'a [usize],
    streams: &[QueryStream],
    offsets: &[usize],
    policy: BatchPolicy,
    queue: &ArrivalQueue,
    slo_s: f64,
    abort: &AtomicBool,
    plan: &FaultPlan,
    supervision: Supervision,
) -> ServeOutcome {
    let pool_size = replica_engines.len();
    let shared = SupervisorShared::new(pool_size, merged.len());
    let slots: Vec<InFlightSlot> = (0..pool_size)
        .map(|_| InFlightSlot::new(policy.max_batch()))
        .collect();
    // The mix sweeps measure cross-tenant isolation, not tail tolerance: a
    // disabled board keeps every replica permanently healthy.
    let health = HealthBoard::disabled(pool_size);
    // Restarts boot from fresh shard clones, never from state a panic
    // unwound through.
    let template = Mutex::new(replica_engines[0].clone());
    let max_batch = policy.max_batch();
    let respawn = {
        let template = &template;
        move || {
            MixServer::new(
                template.lock().expect("template poisoned").clone(),
                merged,
                tenant_of,
                max_batch,
            )
        }
    };
    let generators = AtomicUsize::new(streams.len());
    // The MixServer template clone above scales with the merged model set
    // (hundreds of milliseconds at 64K rows/table) and ran *after* the
    // queue captured its construction-time clock; restart the deadline
    // clock so the replay schedule starts now, not at queue construction.
    queue.restart_clock();
    std::thread::scope(|scope| {
        let start = queue.start();
        let shared = &shared;
        let generators = &generators;
        let slots = &slots;
        let health = &health;
        let respawn: &(dyn Fn() -> MixServer<'a> + Sync) = &respawn;
        for (index, engines) in replica_engines.drain(..).enumerate() {
            let guard = plan.guard_for(index);
            let server = MixServer::new(engines, merged, tenant_of, max_batch);
            scope.spawn(move || {
                supervise_replica(
                    queue,
                    server,
                    respawn,
                    policy,
                    start,
                    supervision,
                    guard,
                    &slots[index],
                    health,
                    shared,
                    abort,
                    index,
                );
            });
        }
        for (stream, &offset) in streams.iter().zip(offsets) {
            scope.spawn(move || {
                replay_arrivals(queue, stream, slo_s, abort, start, offset, generators);
            });
        }
    });
    if queue.is_aborted() {
        // Unrecoverable: every replica died. Re-raise the first crash.
        let payload = shared
            .payload
            .lock()
            .expect("payload slot poisoned")
            .take()
            .unwrap_or_else(|| Box::new("shared mix run aborted without a payload"));
        std::panic::resume_unwind(payload);
    }
    let live = shared.live.load(Ordering::Acquire);
    let completions =
        std::mem::take(&mut *shared.completions.lock().expect("completions poisoned"));
    let mut outcome = empty_outcome(merged.len(), slo_s);
    outcome.completions = completions;
    outcome.batches = shared.batches.load(Ordering::Relaxed);
    outcome.restarts = shared.restarts.load(Ordering::Relaxed);
    outcome.replicas_lost = pool_size - live;
    outcome
}

fn empty_outcome(capacity: usize, slo_s: f64) -> ServeOutcome {
    ServeOutcome {
        completions: Vec::with_capacity(capacity),
        batches: 0,
        slo_s,
        shed_admission: 0,
        shed_expired: 0,
        failed: 0,
        retries: 0,
        restarts: 0,
        replicas_lost: 0,
        hedges: 0,
        hedge_wins: 0,
        duplicates_suppressed: 0,
        quarantines: 0,
        readmissions: 0,
        rejections: Vec::new(),
    }
}

/// Splits a shared pool's outcome into per-tenant outcomes by mapping every
/// completion and rejection id back through `tenant_of`. Per-tenant rows
/// are judged against the tenant's **own** SLO (the pool only enforced the
/// shared one); pool-level counters that cannot be attributed to one tenant
/// (batches, retries, restarts, replicas lost) are carried on every row.
fn split_by_tenant(
    outcome: &ServeOutcome,
    tenant_of: &[usize],
    tenants: &[TenantSpec],
) -> Vec<ServeOutcome> {
    let mut split: Vec<ServeOutcome> = tenants
        .iter()
        .map(|tenant| {
            let mut empty = empty_outcome(0, tenant.slo.as_secs_f64());
            empty.batches = outcome.batches;
            empty.retries = outcome.retries;
            empty.restarts = outcome.restarts;
            empty.replicas_lost = outcome.replicas_lost;
            empty
        })
        .collect();
    for completion in &outcome.completions {
        split[tenant_of[completion.id as usize]]
            .completions
            .push(*completion);
    }
    for rejection in &outcome.rejections {
        let tenant = &mut split[tenant_of[rejection.id as usize]];
        tenant.rejections.push(*rejection);
        match rejection.reason {
            RejectReason::QueueFull => tenant.shed_admission += 1,
            RejectReason::DeadlineExpired => tenant.shed_expired += 1,
            RejectReason::Failed => tenant.failed += 1,
        }
    }
    split
}

/// One tenant's report row, with the per-tenant isolation invariant
/// asserted: every generated request ended in exactly one of
/// completed / shed / failed.
#[allow(clippy::too_many_arguments)]
fn tenant_report(
    tenant: &TenantSpec,
    mode: PoolMode,
    offered_qps: f64,
    policy_label: String,
    replicas: usize,
    faults_label: String,
    generated: usize,
    outcome: &ServeOutcome,
) -> ServeReport {
    assert_eq!(
        outcome.accounted(),
        generated,
        "isolation invariant violated for tenant {:?} ({} pool): every \
         generated request must end exactly one of completed/shed/failed",
        tenant.name,
        mode.label(),
    );
    // Answered availability: what fraction of this tenant's generated
    // traffic got an answer (see the module docs for why sheds count here).
    let availability = if generated == 0 {
        1.0
    } else {
        outcome.completions.len() as f64 / generated as f64
    };
    ServeReport {
        tenant: tenant.name.clone(),
        pool: mode.label().to_string(),
        offered_qps,
        traffic: tenant.traffic.shape.label().to_string(),
        policy: policy_label,
        replicas,
        slo_ms: Some(tenant.slo.as_secs_f64() * 1e3),
        completed: outcome.completions.len(),
        batches: outcome.batches,
        mean_batch: outcome.mean_batch(),
        achieved_qps: outcome.achieved_qps(),
        goodput_qps: outcome.goodput_qps(),
        shed: outcome.shed(),
        shed_admission: outcome.shed_admission,
        shed_expired: outcome.shed_expired,
        deadline_misses: outcome.deadline_misses(),
        faults: faults_label,
        failed: outcome.failed,
        availability,
        restarts: outcome.restarts,
        retries: outcome.retries,
        replicas_lost: outcome.replicas_lost,
        hedges: outcome.hedges,
        hedge_wins: outcome.hedge_wins,
        duplicates_suppressed: outcome.duplicates_suppressed,
        quarantines: outcome.quarantines,
        readmissions: outcome.readmissions,
        latency: outcome.latency_summary().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::PaperModel;
    use centaur_workload::TrafficShape;

    fn tiny_model(paper: PaperModel, seed: u64) -> DlrmModel {
        let config = paper.config().with_rows_per_table(256);
        DlrmModel::random(&config, seed).unwrap()
    }

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                "light",
                tiny_model(PaperModel::Dlrm1, 3),
                TenantTraffic::new(0.7, TrafficShape::Poisson),
                Duration::from_millis(5),
            )
            .with_service_estimate(Duration::from_micros(300))
            .with_admission_depth(64)
            .supervised(Supervision::default()),
            TenantSpec::new(
                "heavy",
                tiny_model(PaperModel::Dlrm6, 4),
                TenantTraffic::new(0.3, TrafficShape::HeavyTail),
                Duration::from_millis(20),
            )
            .with_service_estimate(Duration::from_millis(2))
            .with_admission_depth(64)
            .with_replicas(2)
            .supervised(Supervision::default()),
        ]
    }

    #[test]
    fn isolated_mix_accounts_every_tenant_request() {
        let reports = run_mix_cell(
            CentaurConfig::harpv2(),
            &two_tenants(),
            PoolMode::Isolated,
            4_000.0,
            120,
            11,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].tenant, "light");
        assert_eq!(reports[0].pool, "isolated");
        assert_eq!(reports[0].traffic, "poisson");
        assert_eq!(reports[1].tenant, "heavy");
        assert_eq!(reports[1].traffic, "heavytail");
        // 70/30 split of 120 queries at 4k qps.
        assert_eq!(
            reports[0].completed + reports[0].shed + reports[0].failed,
            84
        );
        assert_eq!(
            reports[1].completed + reports[1].shed + reports[1].failed,
            36
        );
        assert!((reports[0].offered_qps - 2_800.0).abs() < 1e-9);
        assert_eq!(reports[0].slo_ms, Some(5.0));
        assert_eq!(reports[1].slo_ms, Some(20.0));
        // Per-tenant calibrated policies are distinguishable in the labels.
        assert_ne!(reports[0].policy, reports[1].policy);
        assert!(reports[0].policy.contains("e300us"));
        assert!(reports[1].policy.contains("e2ms"));
    }

    #[test]
    fn shared_mix_accounts_every_tenant_request_under_one_pool() {
        let reports = run_mix_cell(
            CentaurConfig::harpv2(),
            &two_tenants(),
            PoolMode::Shared,
            4_000.0,
            120,
            11,
        )
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].pool, "shared");
        assert_eq!(reports[1].pool, "shared");
        assert_eq!(
            reports[0].completed + reports[0].shed + reports[0].failed,
            84
        );
        assert_eq!(
            reports[1].completed + reports[1].shed + reports[1].failed,
            36
        );
        // Shared pool: both rows report the pooled replica count and the
        // shared (over-holding) policy.
        assert_eq!(reports[0].replicas, 3);
        assert_eq!(reports[0].policy, reports[1].policy);
        // Per-tenant SLO columns keep each tenant's own budget.
        assert_eq!(reports[0].slo_ms, Some(5.0));
        assert_eq!(reports[1].slo_ms, Some(20.0));
    }

    #[test]
    fn mix_server_routes_each_request_to_its_tenant_engine() {
        let light = tiny_model(PaperModel::Dlrm1, 5);
        let heavy = tiny_model(PaperModel::Dlrm6, 6);
        let light_requests = generate_requests(light.config(), IndexDistribution::Uniform, 7, 3);
        let heavy_requests = generate_requests(heavy.config(), IndexDistribution::Uniform, 8, 3);
        let mut merged = Vec::new();
        let mut tenant_of = Vec::new();
        for request in light_requests {
            let id = merged.len() as u64;
            tenant_of.push(0);
            merged.push(request.with_id(id));
        }
        for request in heavy_requests {
            let id = merged.len() as u64;
            tenant_of.push(1);
            merged.push(request.with_id(id));
        }
        let engines = vec![
            CentaurRuntime::new(light.clone(), CentaurConfig::harpv2()).unwrap(),
            CentaurRuntime::new(heavy.clone(), CentaurConfig::harpv2()).unwrap(),
        ];
        let mut server = MixServer::new(engines, &merged, &tenant_of, 8);
        // An interleaved batch across both tenants.
        let batch: Vec<QueuedRequest> = [0usize, 3, 1, 4, 2, 5]
            .iter()
            .map(|&i| QueuedRequest::new(i, 0.0))
            .collect();
        let mut out = Vec::new();
        server.serve_batch(&batch, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        // Each probability matches a solo reference run on the right model.
        let mut light_ref = CentaurRuntime::harpv2(light).unwrap();
        let mut heavy_ref = CentaurRuntime::harpv2(heavy).unwrap();
        let mut probe = [0.0f32];
        for (queued, &probability) in batch.iter().zip(&out) {
            let request = &merged[queued.index];
            let reference = if tenant_of[queued.index] == 0 {
                &mut light_ref
            } else {
                &mut heavy_ref
            };
            reference
                .infer_batch_rows_into(
                    &request.dense,
                    request.dense.len(),
                    std::slice::from_ref(&request.sparse),
                    &mut probe,
                )
                .unwrap();
            assert_eq!(probability, probe[0], "request {}", queued.index);
        }
        assert_eq!(server.request_id(4), 4);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn mix_cell_rejects_incomplete_shares() {
        let tenant = TenantSpec::new(
            "only",
            tiny_model(PaperModel::Dlrm1, 9),
            TenantTraffic::new(0.5, TrafficShape::Poisson),
            Duration::from_millis(5),
        );
        let _ = run_mix_cell(
            CentaurConfig::harpv2(),
            &[tenant],
            PoolMode::Isolated,
            1_000.0,
            16,
            1,
        );
    }
}
