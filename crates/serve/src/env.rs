//! Environment knobs for the serving layer, mirroring the warn-once
//! contract of `CENTAUR_KERNEL_BACKEND`: a pure `parse_*` function returns
//! `None` for malformed values so callers can distinguish "unset" from
//! "misspelled", and the env-reading accessor warns exactly once (via
//! `OnceLock`) before falling back to the built-in default.
//!
//! * `CENTAUR_SERVE_SLO_MS` — the per-request latency SLO in milliseconds
//!   used by overload sweeps when no explicit SLO is passed (default 5 ms);
//! * `CENTAUR_SERVE_QUEUE_DEPTH` — the admission gate's depth bound
//!   (default: unbounded; overload sweeps size it from capacity × SLO).

use std::sync::OnceLock;

/// Parses a `CENTAUR_SERVE_SLO_MS` value. Returns `None` for anything that
/// is not a strictly positive finite number (see [`SERVE_SLO_MS_VALUES`]).
pub fn parse_serve_slo_ms(value: &str) -> Option<f64> {
    value
        .parse::<f64>()
        .ok()
        .filter(|&ms| ms.is_finite() && ms > 0.0)
}

/// Accepted `CENTAUR_SERVE_SLO_MS` values, for error messages.
pub const SERVE_SLO_MS_VALUES: &str = "a positive number of milliseconds (e.g. 5, 2.5)";

/// Parses a `CENTAUR_SERVE_QUEUE_DEPTH` value. Returns `None` for anything
/// that is not a positive integer (see [`SERVE_QUEUE_DEPTH_VALUES`]).
pub fn parse_serve_queue_depth(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&depth| depth > 0)
}

/// Accepted `CENTAUR_SERVE_QUEUE_DEPTH` values, for error messages.
pub const SERVE_QUEUE_DEPTH_VALUES: &str = "a positive integer (e.g. 512, 4096)";

/// Built-in default SLO for overload sweeps, in milliseconds — tight enough
/// that an unshedded backlog past the knee blows straight through it.
pub const DEFAULT_SERVE_SLO_MS: f64 = 5.0;

static ENV_SLO_MS: OnceLock<f64> = OnceLock::new();
static ENV_QUEUE_DEPTH: OnceLock<Option<usize>> = OnceLock::new();

/// The SLO (milliseconds) overload sweeps use when the caller does not pass
/// one explicitly: `CENTAUR_SERVE_SLO_MS` if set and valid, else
/// [`DEFAULT_SERVE_SLO_MS`]. Malformed values warn once and fall back.
pub fn serve_slo_ms() -> f64 {
    *ENV_SLO_MS.get_or_init(|| match std::env::var("CENTAUR_SERVE_SLO_MS") {
        Ok(value) => parse_serve_slo_ms(&value).unwrap_or_else(|| {
            // One-time by construction: the OnceLock runs this closure once.
            eprintln!(
                "warning: invalid CENTAUR_SERVE_SLO_MS value {value:?}, \
                 expected {SERVE_SLO_MS_VALUES}; \
                 using the built-in default ({DEFAULT_SERVE_SLO_MS} ms)"
            );
            DEFAULT_SERVE_SLO_MS
        }),
        Err(_) => DEFAULT_SERVE_SLO_MS,
    })
}

/// The admission-gate depth bound overload sweeps use when the caller does
/// not pass one explicitly: `CENTAUR_SERVE_QUEUE_DEPTH` if set and valid,
/// else `None` (the sweep sizes the bound from capacity × SLO). Malformed
/// values warn once and fall back.
pub fn serve_queue_depth() -> Option<usize> {
    *ENV_QUEUE_DEPTH.get_or_init(|| match std::env::var("CENTAUR_SERVE_QUEUE_DEPTH") {
        Ok(value) => match parse_serve_queue_depth(&value) {
            Some(depth) => Some(depth),
            None => {
                eprintln!(
                    "warning: invalid CENTAUR_SERVE_QUEUE_DEPTH value {value:?}, \
                     expected {SERVE_QUEUE_DEPTH_VALUES}; leaving the depth unbounded"
                );
                None
            }
        },
        Err(_) => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_parser_accepts_positive_finite_numbers_only() {
        assert_eq!(parse_serve_slo_ms("5"), Some(5.0));
        assert_eq!(parse_serve_slo_ms("2.5"), Some(2.5));
        assert_eq!(parse_serve_slo_ms("0"), None);
        assert_eq!(parse_serve_slo_ms("-1"), None);
        assert_eq!(parse_serve_slo_ms("inf"), None);
        assert_eq!(parse_serve_slo_ms("NaN"), None);
        assert_eq!(parse_serve_slo_ms("fast"), None);
        assert_eq!(parse_serve_slo_ms(""), None);
    }

    #[test]
    fn depth_parser_accepts_positive_integers_only() {
        assert_eq!(parse_serve_queue_depth("512"), Some(512));
        assert_eq!(parse_serve_queue_depth("1"), Some(1));
        assert_eq!(parse_serve_queue_depth("0"), None);
        assert_eq!(parse_serve_queue_depth("-3"), None);
        assert_eq!(parse_serve_queue_depth("4.5"), None);
        assert_eq!(parse_serve_queue_depth("lots"), None);
    }

    #[test]
    fn accessors_fall_back_to_the_builtin_defaults() {
        // The OnceLocks read the env at most once per process; in the test
        // suite the variables are unset, so the accessors must return the
        // documented defaults (and keep returning them).
        assert_eq!(serve_slo_ms(), DEFAULT_SERVE_SLO_MS);
        assert_eq!(serve_slo_ms(), DEFAULT_SERVE_SLO_MS);
        assert_eq!(serve_queue_depth(), None);
    }
}
