//! Environment knobs for the serving layer, mirroring the warn-once
//! contract of `CENTAUR_KERNEL_BACKEND`: a pure `parse_*` function returns
//! `None` for malformed values so callers can distinguish "unset" from
//! "misspelled", and the env-reading accessor warns exactly once (via
//! `OnceLock`) before falling back to the built-in default.
//!
//! * `CENTAUR_SERVE_SLO_MS` — the per-request latency SLO in milliseconds
//!   used by overload sweeps when no explicit SLO is passed (default 5 ms);
//! * `CENTAUR_SERVE_QUEUE_DEPTH` — the admission gate's depth bound
//!   (default: unbounded; overload sweeps size it from capacity × SLO);
//! * `CENTAUR_SERVE_RETRY_LIMIT` — per-request retry budget under
//!   supervision (default 2; `0` = fail on the first error);
//! * `CENTAUR_SERVE_RESTART_BUDGET` — pool-wide replica-restart budget
//!   under supervision (default 2; `0` = crashed replicas stay dead);
//! * `CENTAUR_SERVE_FAULT_PLAN` — an explicit fault schedule overriding a
//!   faulted sweep cell's seeded plan (format: comma-separated
//!   `crash:replica:at_ms`, `transient:replica:at_ms`,
//!   `stall:replica:at_ms:stall_ms`);
//! * `CENTAUR_SERVE_MIX` — the tenant mix the isolation sweep serves
//!   (format: comma-separated `model:share`, e.g. `dlrm1:0.7,dlrm6:0.3`;
//!   shares must sum to 1);
//! * `CENTAUR_SERVE_MIX_SLO_MS` — per-tenant SLOs for the mix, one positive
//!   millisecond value per tenant in mix order (e.g. `2,10`);
//! * `CENTAUR_SERVE_HEDGE_MS` — the stall watchdog's hedge timeout in
//!   milliseconds, overriding the SLO/service-estimate-derived default;
//! * `CENTAUR_SERVE_QUARANTINE_STRIKES` — health strikes before a replica
//!   is quarantined (default 3);
//! * `CENTAUR_SERVE_QUARANTINE_BACKOFF_MS` — the first quarantine backoff
//!   in milliseconds, doubled per repeat offence (default 25).

use crate::fault::FaultPlan;
use centaur_dlrm::PaperModel;
use std::sync::OnceLock;

/// Parses a `CENTAUR_SERVE_SLO_MS` value. Returns `None` for anything that
/// is not a strictly positive finite number (see [`SERVE_SLO_MS_VALUES`]).
pub fn parse_serve_slo_ms(value: &str) -> Option<f64> {
    value
        .parse::<f64>()
        .ok()
        .filter(|&ms| ms.is_finite() && ms > 0.0)
}

/// Accepted `CENTAUR_SERVE_SLO_MS` values, for error messages.
pub const SERVE_SLO_MS_VALUES: &str = "a positive number of milliseconds (e.g. 5, 2.5)";

/// Parses a `CENTAUR_SERVE_QUEUE_DEPTH` value. Returns `None` for anything
/// that is not a positive integer (see [`SERVE_QUEUE_DEPTH_VALUES`]).
pub fn parse_serve_queue_depth(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&depth| depth > 0)
}

/// Accepted `CENTAUR_SERVE_QUEUE_DEPTH` values, for error messages.
pub const SERVE_QUEUE_DEPTH_VALUES: &str = "a positive integer (e.g. 512, 4096)";

/// Parses a `CENTAUR_SERVE_RETRY_LIMIT` value. Returns `None` for anything
/// that is not a non-negative integer (see [`SERVE_RETRY_LIMIT_VALUES`]).
/// Zero is valid: fail a request on its first error, no retries.
pub fn parse_serve_retry_limit(value: &str) -> Option<u32> {
    value.parse::<u32>().ok()
}

/// Accepted `CENTAUR_SERVE_RETRY_LIMIT` values, for error messages.
pub const SERVE_RETRY_LIMIT_VALUES: &str = "a non-negative integer (e.g. 0, 2)";

/// Parses a `CENTAUR_SERVE_RESTART_BUDGET` value. Returns `None` for
/// anything that is not a non-negative integer (see
/// [`SERVE_RESTART_BUDGET_VALUES`]). Zero is valid: crashed replicas stay
/// dead.
pub fn parse_serve_restart_budget(value: &str) -> Option<usize> {
    value.parse::<usize>().ok()
}

/// Accepted `CENTAUR_SERVE_RESTART_BUDGET` values, for error messages.
pub const SERVE_RESTART_BUDGET_VALUES: &str = "a non-negative integer (e.g. 0, 2)";

/// Parses a `CENTAUR_SERVE_FAULT_PLAN` value (see
/// [`SERVE_FAULT_PLAN_VALUES`]); delegates to [`FaultPlan::parse`].
pub fn parse_serve_fault_plan(value: &str) -> Option<FaultPlan> {
    FaultPlan::parse(value)
}

/// Accepted `CENTAUR_SERVE_FAULT_PLAN` values, for error messages.
pub const SERVE_FAULT_PLAN_VALUES: &str = "comma-separated events: \
     crash:<replica>:<at_ms>, transient:<replica>:<at_ms>, or \
     stall:<replica>:<at_ms>:<stall_ms> (e.g. \"crash:0:50,transient:1:120\")";

/// Parses a `CENTAUR_SERVE_MIX` value: comma-separated `model:share`
/// tenants whose shares sum to 1 (see [`SERVE_MIX_VALUES`]). Model names
/// are the paper's six, case-insensitive (`dlrm1` … `dlrm6`). Returns
/// `None` for unknown models, non-positive or non-finite shares, shares
/// that do not sum to 1, or an empty list.
pub fn parse_serve_mix(value: &str) -> Option<Vec<(PaperModel, f64)>> {
    let mut tenants = Vec::new();
    for part in value.split(',') {
        let (model, share) = part.trim().split_once(':')?;
        let model = match model.to_ascii_lowercase().as_str() {
            "dlrm1" => PaperModel::Dlrm1,
            "dlrm2" => PaperModel::Dlrm2,
            "dlrm3" => PaperModel::Dlrm3,
            "dlrm4" => PaperModel::Dlrm4,
            "dlrm5" => PaperModel::Dlrm5,
            "dlrm6" => PaperModel::Dlrm6,
            _ => return None,
        };
        let share = share
            .parse::<f64>()
            .ok()
            .filter(|&s| s.is_finite() && s > 0.0 && s <= 1.0)?;
        tenants.push((model, share));
    }
    if tenants.is_empty() {
        return None;
    }
    let total: f64 = tenants.iter().map(|(_, share)| share).sum();
    if (total - 1.0).abs() > 1e-6 {
        return None;
    }
    Some(tenants)
}

/// Accepted `CENTAUR_SERVE_MIX` values, for error messages.
pub const SERVE_MIX_VALUES: &str = "comma-separated model:share tenants with \
     shares summing to 1, models dlrm1..dlrm6 (e.g. \"dlrm1:0.7,dlrm6:0.3\")";

/// Parses a `CENTAUR_SERVE_MIX_SLO_MS` value: a comma-separated list of
/// strictly positive finite millisecond values, one per tenant in mix order
/// (see [`SERVE_MIX_SLO_MS_VALUES`]).
pub fn parse_serve_mix_slo_ms(value: &str) -> Option<Vec<f64>> {
    let slos: Option<Vec<f64>> = value
        .split(',')
        .map(|part| parse_serve_slo_ms(part.trim()))
        .collect();
    slos.filter(|slos| !slos.is_empty())
}

/// Accepted `CENTAUR_SERVE_MIX_SLO_MS` values, for error messages.
pub const SERVE_MIX_SLO_MS_VALUES: &str =
    "a comma-separated list of positive milliseconds, one per tenant (e.g. \"2,10\")";

/// Parses a `CENTAUR_SERVE_HEDGE_MS` value. Returns `None` for anything
/// that is not a strictly positive finite number (see
/// [`SERVE_HEDGE_MS_VALUES`]).
pub fn parse_serve_hedge_ms(value: &str) -> Option<f64> {
    value
        .parse::<f64>()
        .ok()
        .filter(|&ms| ms.is_finite() && ms > 0.0)
}

/// Accepted `CENTAUR_SERVE_HEDGE_MS` values, for error messages.
pub const SERVE_HEDGE_MS_VALUES: &str = "a positive number of milliseconds (e.g. 1, 2.5)";

/// Parses a `CENTAUR_SERVE_QUARANTINE_STRIKES` value. Returns `None` for
/// anything that is not a strictly positive integer (see
/// [`SERVE_QUARANTINE_STRIKES_VALUES`]) — zero strikes would quarantine a
/// replica that never misbehaved.
pub fn parse_serve_quarantine_strikes(value: &str) -> Option<u32> {
    value.parse::<u32>().ok().filter(|&strikes| strikes > 0)
}

/// Accepted `CENTAUR_SERVE_QUARANTINE_STRIKES` values, for error messages.
pub const SERVE_QUARANTINE_STRIKES_VALUES: &str = "a positive integer (e.g. 2, 3)";

/// Parses a `CENTAUR_SERVE_QUARANTINE_BACKOFF_MS` value. Returns `None`
/// for anything that is not a strictly positive finite number (see
/// [`SERVE_QUARANTINE_BACKOFF_MS_VALUES`]).
pub fn parse_serve_quarantine_backoff_ms(value: &str) -> Option<f64> {
    value
        .parse::<f64>()
        .ok()
        .filter(|&ms| ms.is_finite() && ms > 0.0)
}

/// Accepted `CENTAUR_SERVE_QUARANTINE_BACKOFF_MS` values, for error
/// messages.
pub const SERVE_QUARANTINE_BACKOFF_MS_VALUES: &str =
    "a positive number of milliseconds (e.g. 25, 12.5)";

/// Built-in default SLO for overload sweeps, in milliseconds — tight enough
/// that an unshedded backlog past the knee blows straight through it.
pub const DEFAULT_SERVE_SLO_MS: f64 = 5.0;

/// Built-in strike limit before a struck replica is quarantined: one
/// overdue batch is noise, three in a row is a slow node.
pub const DEFAULT_SERVE_QUARANTINE_STRIKES: u32 = 3;

/// Built-in first quarantine backoff, in milliseconds; each repeat offence
/// doubles it.
pub const DEFAULT_SERVE_QUARANTINE_BACKOFF_MS: f64 = 25.0;

/// Built-in per-request retry budget under supervision: enough to ride out
/// a crash plus one unlucky rebatch without letting a poison request spin.
pub const DEFAULT_SERVE_RETRY_LIMIT: u32 = 2;

/// Built-in pool-wide replica-restart budget under supervision.
pub const DEFAULT_SERVE_RESTART_BUDGET: usize = 2;

static ENV_SLO_MS: OnceLock<f64> = OnceLock::new();
static ENV_QUEUE_DEPTH: OnceLock<Option<usize>> = OnceLock::new();
static ENV_RETRY_LIMIT: OnceLock<u32> = OnceLock::new();
static ENV_RESTART_BUDGET: OnceLock<usize> = OnceLock::new();
static ENV_FAULT_PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
static ENV_MIX: OnceLock<Option<Vec<(PaperModel, f64)>>> = OnceLock::new();
static ENV_MIX_SLO_MS: OnceLock<Option<Vec<f64>>> = OnceLock::new();
static ENV_HEDGE_MS: OnceLock<Option<f64>> = OnceLock::new();
static ENV_QUARANTINE_STRIKES: OnceLock<u32> = OnceLock::new();
static ENV_QUARANTINE_BACKOFF_MS: OnceLock<f64> = OnceLock::new();

/// The SLO (milliseconds) overload sweeps use when the caller does not pass
/// one explicitly: `CENTAUR_SERVE_SLO_MS` if set and valid, else
/// [`DEFAULT_SERVE_SLO_MS`]. Malformed values warn once and fall back.
pub fn serve_slo_ms() -> f64 {
    *ENV_SLO_MS.get_or_init(|| match std::env::var("CENTAUR_SERVE_SLO_MS") {
        Ok(value) => parse_serve_slo_ms(&value).unwrap_or_else(|| {
            // One-time by construction: the OnceLock runs this closure once.
            eprintln!(
                "warning: invalid CENTAUR_SERVE_SLO_MS value {value:?}, \
                 expected {SERVE_SLO_MS_VALUES}; \
                 using the built-in default ({DEFAULT_SERVE_SLO_MS} ms)"
            );
            DEFAULT_SERVE_SLO_MS
        }),
        Err(_) => DEFAULT_SERVE_SLO_MS,
    })
}

/// The admission-gate depth bound overload sweeps use when the caller does
/// not pass one explicitly: `CENTAUR_SERVE_QUEUE_DEPTH` if set and valid,
/// else `None` (the sweep sizes the bound from capacity × SLO). Malformed
/// values warn once and fall back.
pub fn serve_queue_depth() -> Option<usize> {
    *ENV_QUEUE_DEPTH.get_or_init(|| match std::env::var("CENTAUR_SERVE_QUEUE_DEPTH") {
        Ok(value) => match parse_serve_queue_depth(&value) {
            Some(depth) => Some(depth),
            None => {
                eprintln!(
                    "warning: invalid CENTAUR_SERVE_QUEUE_DEPTH value {value:?}, \
                     expected {SERVE_QUEUE_DEPTH_VALUES}; leaving the depth unbounded"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// The per-request retry budget supervised sweeps use when the caller does
/// not pass one explicitly: `CENTAUR_SERVE_RETRY_LIMIT` if set and valid,
/// else [`DEFAULT_SERVE_RETRY_LIMIT`]. Malformed values warn once and fall
/// back.
pub fn serve_retry_limit() -> u32 {
    *ENV_RETRY_LIMIT.get_or_init(|| match std::env::var("CENTAUR_SERVE_RETRY_LIMIT") {
        Ok(value) => parse_serve_retry_limit(&value).unwrap_or_else(|| {
            eprintln!(
                "warning: invalid CENTAUR_SERVE_RETRY_LIMIT value {value:?}, \
                 expected {SERVE_RETRY_LIMIT_VALUES}; \
                 using the built-in default ({DEFAULT_SERVE_RETRY_LIMIT})"
            );
            DEFAULT_SERVE_RETRY_LIMIT
        }),
        Err(_) => DEFAULT_SERVE_RETRY_LIMIT,
    })
}

/// The pool-wide restart budget supervised sweeps use when the caller does
/// not pass one explicitly: `CENTAUR_SERVE_RESTART_BUDGET` if set and
/// valid, else [`DEFAULT_SERVE_RESTART_BUDGET`]. Malformed values warn once
/// and fall back.
pub fn serve_restart_budget() -> usize {
    *ENV_RESTART_BUDGET.get_or_init(|| match std::env::var("CENTAUR_SERVE_RESTART_BUDGET") {
        Ok(value) => parse_serve_restart_budget(&value).unwrap_or_else(|| {
            eprintln!(
                "warning: invalid CENTAUR_SERVE_RESTART_BUDGET value {value:?}, \
                     expected {SERVE_RESTART_BUDGET_VALUES}; \
                     using the built-in default ({DEFAULT_SERVE_RESTART_BUDGET})"
            );
            DEFAULT_SERVE_RESTART_BUDGET
        }),
        Err(_) => DEFAULT_SERVE_RESTART_BUDGET,
    })
}

/// The explicit fault plan overriding faulted sweep cells' seeded
/// schedules: `CENTAUR_SERVE_FAULT_PLAN` if set and valid, else `None`
/// (each faulted cell samples its own seeded plan). Malformed values warn
/// once and fall back. Cloned per call — the plan is consumed per run.
pub fn serve_fault_plan() -> Option<FaultPlan> {
    ENV_FAULT_PLAN
        .get_or_init(|| match std::env::var("CENTAUR_SERVE_FAULT_PLAN") {
            Ok(value) => match parse_serve_fault_plan(&value) {
                Some(plan) => Some(plan),
                None => {
                    eprintln!(
                        "warning: invalid CENTAUR_SERVE_FAULT_PLAN value {value:?}, \
                         expected {SERVE_FAULT_PLAN_VALUES}; \
                         using each cell's seeded fault schedule"
                    );
                    None
                }
            },
            Err(_) => None,
        })
        .clone()
}

/// The tenant mix the isolation sweep serves when `CENTAUR_SERVE_MIX` is
/// set and valid, else `None` (the sweep uses its built-in light/heavy
/// mix). Malformed values warn once and fall back. Cloned per call.
pub fn serve_mix() -> Option<Vec<(PaperModel, f64)>> {
    ENV_MIX
        .get_or_init(|| match std::env::var("CENTAUR_SERVE_MIX") {
            Ok(value) => match parse_serve_mix(&value) {
                Some(mix) => Some(mix),
                None => {
                    eprintln!(
                        "warning: invalid CENTAUR_SERVE_MIX value {value:?}, \
                         expected {SERVE_MIX_VALUES}; using the built-in mix"
                    );
                    None
                }
            },
            Err(_) => None,
        })
        .clone()
}

/// Per-tenant SLOs (milliseconds, mix order) when `CENTAUR_SERVE_MIX_SLO_MS`
/// is set and valid, else `None` (the sweep uses its built-in per-tenant
/// SLOs). Malformed values warn once and fall back. Cloned per call.
pub fn serve_mix_slo_ms() -> Option<Vec<f64>> {
    ENV_MIX_SLO_MS
        .get_or_init(|| match std::env::var("CENTAUR_SERVE_MIX_SLO_MS") {
            Ok(value) => match parse_serve_mix_slo_ms(&value) {
                Some(slos) => Some(slos),
                None => {
                    eprintln!(
                        "warning: invalid CENTAUR_SERVE_MIX_SLO_MS value {value:?}, \
                         expected {SERVE_MIX_SLO_MS_VALUES}; \
                         using the built-in per-tenant SLOs"
                    );
                    None
                }
            },
            Err(_) => None,
        })
        .clone()
}

/// The stall watchdog's hedge timeout override (milliseconds):
/// `CENTAUR_SERVE_HEDGE_MS` if set and valid, else `None` (the timeout is
/// derived from the SLO and the policy's service estimate). Malformed
/// values warn once and fall back.
pub fn serve_hedge_ms() -> Option<f64> {
    *ENV_HEDGE_MS.get_or_init(|| match std::env::var("CENTAUR_SERVE_HEDGE_MS") {
        Ok(value) => match parse_serve_hedge_ms(&value) {
            Some(ms) => Some(ms),
            None => {
                eprintln!(
                    "warning: invalid CENTAUR_SERVE_HEDGE_MS value {value:?}, \
                     expected {SERVE_HEDGE_MS_VALUES}; \
                     deriving the timeout from the SLO and service estimate"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// Health strikes before a replica is quarantined:
/// `CENTAUR_SERVE_QUARANTINE_STRIKES` if set and valid, else
/// [`DEFAULT_SERVE_QUARANTINE_STRIKES`]. Malformed values warn once and
/// fall back.
pub fn serve_quarantine_strikes() -> u32 {
    *ENV_QUARANTINE_STRIKES.get_or_init(|| {
        match std::env::var("CENTAUR_SERVE_QUARANTINE_STRIKES") {
            Ok(value) => parse_serve_quarantine_strikes(&value).unwrap_or_else(|| {
                eprintln!(
                    "warning: invalid CENTAUR_SERVE_QUARANTINE_STRIKES value {value:?}, \
                     expected {SERVE_QUARANTINE_STRIKES_VALUES}; \
                     using the built-in default ({DEFAULT_SERVE_QUARANTINE_STRIKES})"
                );
                DEFAULT_SERVE_QUARANTINE_STRIKES
            }),
            Err(_) => DEFAULT_SERVE_QUARANTINE_STRIKES,
        }
    })
}

/// The first quarantine backoff (milliseconds), doubled per repeat
/// offence: `CENTAUR_SERVE_QUARANTINE_BACKOFF_MS` if set and valid, else
/// [`DEFAULT_SERVE_QUARANTINE_BACKOFF_MS`]. Malformed values warn once and
/// fall back.
pub fn serve_quarantine_backoff_ms() -> f64 {
    *ENV_QUARANTINE_BACKOFF_MS.get_or_init(|| {
        match std::env::var("CENTAUR_SERVE_QUARANTINE_BACKOFF_MS") {
            Ok(value) => parse_serve_quarantine_backoff_ms(&value).unwrap_or_else(|| {
                eprintln!(
                    "warning: invalid CENTAUR_SERVE_QUARANTINE_BACKOFF_MS value {value:?}, \
                     expected {SERVE_QUARANTINE_BACKOFF_MS_VALUES}; \
                     using the built-in default ({DEFAULT_SERVE_QUARANTINE_BACKOFF_MS} ms)"
                );
                DEFAULT_SERVE_QUARANTINE_BACKOFF_MS
            }),
            Err(_) => DEFAULT_SERVE_QUARANTINE_BACKOFF_MS,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_parser_accepts_positive_finite_numbers_only() {
        assert_eq!(parse_serve_slo_ms("5"), Some(5.0));
        assert_eq!(parse_serve_slo_ms("2.5"), Some(2.5));
        assert_eq!(parse_serve_slo_ms("0"), None);
        assert_eq!(parse_serve_slo_ms("-1"), None);
        assert_eq!(parse_serve_slo_ms("inf"), None);
        assert_eq!(parse_serve_slo_ms("NaN"), None);
        assert_eq!(parse_serve_slo_ms("fast"), None);
        assert_eq!(parse_serve_slo_ms(""), None);
    }

    #[test]
    fn depth_parser_accepts_positive_integers_only() {
        assert_eq!(parse_serve_queue_depth("512"), Some(512));
        assert_eq!(parse_serve_queue_depth("1"), Some(1));
        assert_eq!(parse_serve_queue_depth("0"), None);
        assert_eq!(parse_serve_queue_depth("-3"), None);
        assert_eq!(parse_serve_queue_depth("4.5"), None);
        assert_eq!(parse_serve_queue_depth("lots"), None);
    }

    #[test]
    fn retry_limit_parser_accepts_non_negative_integers_only() {
        assert_eq!(parse_serve_retry_limit("0"), Some(0), "0 = no retries");
        assert_eq!(parse_serve_retry_limit("2"), Some(2));
        assert_eq!(parse_serve_retry_limit("-1"), None);
        assert_eq!(parse_serve_retry_limit("2.5"), None);
        assert_eq!(parse_serve_retry_limit("forever"), None);
        assert_eq!(parse_serve_retry_limit(""), None);
    }

    #[test]
    fn restart_budget_parser_accepts_non_negative_integers_only() {
        assert_eq!(
            parse_serve_restart_budget("0"),
            Some(0),
            "0 = crashed replicas stay dead"
        );
        assert_eq!(parse_serve_restart_budget("3"), Some(3));
        assert_eq!(parse_serve_restart_budget("-2"), None);
        assert_eq!(parse_serve_restart_budget("1.5"), None);
        assert_eq!(parse_serve_restart_budget("many"), None);
    }

    #[test]
    fn fault_plan_parser_delegates_to_the_documented_format() {
        let plan = parse_serve_fault_plan("crash:0:50,transient:1:120").unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.label(), "c1t1");
        assert!(parse_serve_fault_plan("stall:0:10:5").is_some());
        assert!(parse_serve_fault_plan("reboot:0:50").is_none());
        assert!(parse_serve_fault_plan("crash:0").is_none());
        assert!(parse_serve_fault_plan("").is_none());
    }

    #[test]
    fn mix_parser_accepts_complete_known_model_mixes_only() {
        assert_eq!(
            parse_serve_mix("dlrm1:0.7,dlrm6:0.3"),
            Some(vec![(PaperModel::Dlrm1, 0.7), (PaperModel::Dlrm6, 0.3)])
        );
        assert_eq!(
            parse_serve_mix(" DLRM2:0.5 , dlrm4:0.5 "),
            Some(vec![(PaperModel::Dlrm2, 0.5), (PaperModel::Dlrm4, 0.5)]),
            "case-insensitive names, whitespace tolerated"
        );
        assert_eq!(
            parse_serve_mix("dlrm1:1"),
            Some(vec![(PaperModel::Dlrm1, 1.0)]),
            "a single full-share tenant is a valid mix"
        );
        for bad in [
            "",
            "dlrm1",
            "dlrm1:0.5",            // shares must sum to 1
            "dlrm1:0.7,dlrm6:0.4",  // over 1
            "dlrm7:1",              // unknown model
            "dlrm1:0,dlrm6:1",      // zero share
            "dlrm1:-0.5,dlrm6:1.5", // negative / over-1 shares
            "dlrm1:inf",
            "dlrm1:0.5,:0.5",
        ] {
            assert_eq!(parse_serve_mix(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn mix_slo_parser_accepts_positive_millisecond_lists_only() {
        assert_eq!(parse_serve_mix_slo_ms("2,10"), Some(vec![2.0, 10.0]));
        assert_eq!(parse_serve_mix_slo_ms("5"), Some(vec![5.0]));
        assert_eq!(
            parse_serve_mix_slo_ms(" 2.5 , 7 "),
            Some(vec![2.5, 7.0]),
            "whitespace tolerated"
        );
        for bad in ["", "2,", "2,0", "2,-1", "2,inf", "fast,10"] {
            assert_eq!(parse_serve_mix_slo_ms(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn hedge_timeout_parser_accepts_positive_finite_milliseconds_only() {
        assert_eq!(parse_serve_hedge_ms("1"), Some(1.0));
        assert_eq!(parse_serve_hedge_ms("2.5"), Some(2.5));
        assert_eq!(parse_serve_hedge_ms("0"), None);
        assert_eq!(parse_serve_hedge_ms("-1"), None);
        assert_eq!(parse_serve_hedge_ms("inf"), None);
        assert_eq!(parse_serve_hedge_ms("soon"), None);
    }

    #[test]
    fn quarantine_strike_parser_rejects_zero() {
        assert_eq!(parse_serve_quarantine_strikes("1"), Some(1));
        assert_eq!(parse_serve_quarantine_strikes("3"), Some(3));
        assert_eq!(parse_serve_quarantine_strikes("0"), None);
        assert_eq!(parse_serve_quarantine_strikes("-2"), None);
        assert_eq!(parse_serve_quarantine_strikes("2.5"), None);
        assert_eq!(parse_serve_quarantine_strikes("lots"), None);
    }

    #[test]
    fn quarantine_backoff_parser_accepts_positive_finite_milliseconds_only() {
        assert_eq!(parse_serve_quarantine_backoff_ms("25"), Some(25.0));
        assert_eq!(parse_serve_quarantine_backoff_ms("12.5"), Some(12.5));
        assert_eq!(parse_serve_quarantine_backoff_ms("0"), None);
        assert_eq!(parse_serve_quarantine_backoff_ms("-5"), None);
        assert_eq!(parse_serve_quarantine_backoff_ms("NaN"), None);
        assert_eq!(parse_serve_quarantine_backoff_ms(""), None);
    }

    #[test]
    fn accessors_fall_back_to_the_builtin_defaults() {
        // The OnceLocks read the env at most once per process; in the test
        // suite the variables are unset, so the accessors must return the
        // documented defaults (and keep returning them).
        assert_eq!(serve_slo_ms(), DEFAULT_SERVE_SLO_MS);
        assert_eq!(serve_slo_ms(), DEFAULT_SERVE_SLO_MS);
        assert_eq!(serve_queue_depth(), None);
        assert_eq!(serve_retry_limit(), DEFAULT_SERVE_RETRY_LIMIT);
        assert_eq!(serve_restart_budget(), DEFAULT_SERVE_RESTART_BUDGET);
        assert_eq!(serve_fault_plan(), None);
        assert_eq!(serve_mix(), None);
        assert_eq!(serve_mix_slo_ms(), None);
        assert_eq!(serve_hedge_ms(), None);
        assert_eq!(serve_quarantine_strikes(), DEFAULT_SERVE_QUARANTINE_STRIKES);
        assert_eq!(
            serve_quarantine_backoff_ms(),
            DEFAULT_SERVE_QUARANTINE_BACKOFF_MS
        );
    }
}
