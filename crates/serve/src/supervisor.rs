//! The replica supervisor: crash-tolerant serving on top of the arrival
//! queue's in-flight accounting.
//!
//! Pre-supervision, any replica-worker panic or datapath error aborted the
//! whole replay (`guard_worker` flips the abort flag and closes the queue).
//! Supervision replaces that all-or-nothing contract with the production
//! one — node loss is routine, the pool degrades gracefully:
//!
//! * every batch a worker holds is **published** to an [`InFlightSlot`]
//!   before it runs, so when the worker panics the supervisor recovers the
//!   exact requests that went down with it;
//! * recovered (and datapath-failed) requests are **requeued with their
//!   original arrival stamps** against a bounded per-request retry budget —
//!   exhausted budgets surface as [`RejectReason::Failed`] rejections,
//!   never silently;
//! * the crashed replica is **restarted** from a fresh shard clone, counted
//!   against a pool-wide restart budget; a replica beyond the budget stays
//!   dead and its siblings absorb the load through the existing
//!   admission/deadline machinery;
//! * only unrecoverable states abort: when the **last** live replica dies,
//!   the run aborts with the *first* crash's original panic payload
//!   preserved, exactly like the unsupervised path.
//!
//! The accounting invariant this module exists to uphold: every request the
//! queue ever accepted ends in exactly one of completed / shed / failed.

use crate::fault::FaultGuard;
use crate::harness::Completion;
use crate::policy::BatchPolicy;
use crate::queue::{ArrivalQueue, QueuedRequest};
use crate::server::BatchServer;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fault-tolerance budgets for a supervised replica pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Times one request may be re-served after a replica crash or
    /// datapath error before it is failed ([`RejectReason::Failed`]).
    ///
    /// [`RejectReason::Failed`]: centaur_dlrm::RejectReason::Failed
    pub retry_limit: u32,
    /// Replica restarts the pool may spend across the whole run. A crash
    /// beyond this budget leaves the replica dead; when the *last* replica
    /// dies the run aborts with the first crash's panic payload.
    pub restart_budget: usize,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            retry_limit: 2,
            restart_budget: 2,
        }
    }
}

impl Supervision {
    /// Supervision with the given budgets.
    pub fn new(retry_limit: u32, restart_budget: usize) -> Self {
        Supervision {
            retry_limit,
            restart_budget,
        }
    }
}

/// The crash-recovery handoff slot: a worker publishes each batch here
/// *before* running it, so the supervisor can recover exactly the requests
/// that were in flight when the worker panicked. Publish/clear reuse one
/// pre-reserved buffer — the fault-free steady state allocates nothing.
#[derive(Debug)]
pub struct InFlightSlot {
    slot: Mutex<Vec<QueuedRequest>>,
}

impl InFlightSlot {
    /// An empty slot pre-reserved for batches up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        InFlightSlot {
            slot: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    /// Records `batch` as the worker's current in-flight work.
    pub fn publish(&self, batch: &[QueuedRequest]) {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        slot.clear();
        slot.extend_from_slice(batch);
    }

    /// Marks the current batch fully accounted (served/requeued/failed).
    pub fn clear(&self) {
        self.slot.lock().expect("in-flight slot poisoned").clear();
    }

    /// Takes whatever was in flight — the crash-recovery path. The slot
    /// mutex is never poisoned by a worker panic: workers only hold the
    /// lock inside [`publish`](Self::publish)/[`clear`](Self::clear), which
    /// cannot unwind mid-critical-section.
    pub fn recover(&self) -> Vec<QueuedRequest> {
        std::mem::take(&mut *self.slot.lock().expect("in-flight slot poisoned"))
    }
}

/// Routes one failed serve attempt: requeue for another try while the
/// request has retry budget left (original arrival stamp preserved —
/// [`QueuedRequest::retry`] bumps only the count), otherwise fail it
/// permanently with a counted [`RejectReason::Failed`] rejection.
///
/// [`RejectReason::Failed`]: centaur_dlrm::RejectReason::Failed
pub fn requeue_or_fail(queue: &ArrivalQueue, request: QueuedRequest, retry_limit: u32) {
    if request.retries < retry_limit {
        queue.requeue(request.retry());
    } else {
        queue.fail(request);
    }
}

/// State shared between the harness and every supervised replica: recorded
/// completions, pool-wide budgets and the first crash's preserved payload.
pub(crate) struct SupervisorShared {
    /// Completions from every replica (pre-reserved to the request count so
    /// the recording path never allocates).
    pub completions: Mutex<Vec<Completion>>,
    /// Accelerator batches dispatched across the pool.
    pub batches: AtomicUsize,
    /// Restarts consumed from the pool-wide budget.
    pub restarts: AtomicUsize,
    /// Replicas still alive (dead = crashed beyond the restart budget).
    pub live: AtomicUsize,
    /// The first crash's original panic payload, preserved for
    /// `resume_unwind` should the run become unrecoverable.
    pub payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl SupervisorShared {
    pub fn new(replicas: usize, requests: usize) -> Self {
        SupervisorShared {
            completions: Mutex::new(Vec::with_capacity(requests)),
            batches: AtomicUsize::new(0),
            restarts: AtomicUsize::new(0),
            live: AtomicUsize::new(replicas),
            payload: Mutex::new(None),
        }
    }

    /// Claims one restart from the pool-wide budget; `false` once spent.
    pub fn try_consume_restart(&self, budget: usize) -> bool {
        let mut used = self.restarts.load(Ordering::Relaxed);
        loop {
            if used >= budget {
                return false;
            }
            match self.restarts.compare_exchange(
                used,
                used + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => used = actual,
            }
        }
    }

    /// Records a replica death (preserving the first payload) and returns
    /// `true` when it was the last live replica — the unrecoverable state.
    pub fn replica_died(&self, payload: Box<dyn Any + Send>) -> bool {
        let mut slot = self.payload.lock().expect("payload slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        self.live.fetch_sub(1, Ordering::AcqRel) == 1
    }
}

/// One supervised replica: runs [`supervised_worker_loop`] under a panic
/// guard, and on a crash recovers the in-flight batch (requeue against the
/// retry budget), then restarts the replica with a fresh `respawn()`-built
/// backend while the pool-wide restart budget lasts. A replica beyond the
/// budget stays dead; the death of the *last* replica flips the abort flag
/// and abandons the queue so the harness can re-raise the preserved panic
/// payload.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_replica<S: BatchServer>(
    queue: &ArrivalQueue,
    mut server: S,
    respawn: &(dyn Fn() -> S + Sync),
    policy: BatchPolicy,
    start: Instant,
    supervision: Supervision,
    mut guard: FaultGuard,
    shared: &SupervisorShared,
    abort: &AtomicBool,
    replica: usize,
) {
    let inflight = InFlightSlot::new(policy.max_batch());
    loop {
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            supervised_worker_loop(
                queue,
                &mut server,
                policy,
                start,
                supervision.retry_limit,
                &mut guard,
                &inflight,
                shared,
                replica,
            )
        }));
        let payload = match crashed {
            Ok(()) => return, // queue drained (or aborted); clean exit
            Err(payload) => payload,
        };
        // Crash recovery: the published batch went down with the worker —
        // requeue it (original arrival stamps) against the retry budget.
        for request in inflight.recover() {
            requeue_or_fail(queue, request, supervision.retry_limit);
        }
        if shared.try_consume_restart(supervision.restart_budget) {
            // Fresh backend (shard clone + staging buffers): never reuse
            // state a panic unwound through.
            server = respawn();
            continue;
        }
        // Beyond the restart budget: this replica stays dead. Survivors
        // absorb the load; only the last death is unrecoverable.
        if shared.replica_died(payload) {
            abort.store(true, Ordering::Relaxed);
            queue.close_abort();
        }
        return;
    }
}

/// One supervised replica's serving loop. Differences from the unsupervised
/// loop: every batch is published in-flight before anything can fail, the
/// fault guard is polled once per batch (crash events panic here, inside
/// the supervisor's catch), injected transients and real datapath errors
/// requeue work against the retry budget instead of killing the run, and a
/// failing batch is re-served request-by-request so one poison request
/// cannot burn its co-riders' budgets.
#[allow(clippy::too_many_arguments)]
fn supervised_worker_loop<S: BatchServer>(
    queue: &ArrivalQueue,
    server: &mut S,
    policy: BatchPolicy,
    start: Instant,
    retry_limit: u32,
    guard: &mut FaultGuard,
    inflight: &InFlightSlot,
    shared: &SupervisorShared,
    replica: usize,
) {
    let mut batch: Vec<QueuedRequest> = Vec::with_capacity(policy.max_batch());
    let mut probabilities: Vec<f32> = Vec::with_capacity(policy.max_batch());
    while queue.pop_batch(policy, &mut batch) {
        inflight.publish(&batch);
        let now_s = start.elapsed().as_secs_f64();
        if guard.intercept(replica, now_s).is_err() {
            // Injected transient: the whole batch's attempt failed, the
            // replica survives. Retry or fail each rider.
            for &request in &batch {
                requeue_or_fail(queue, request, retry_limit);
            }
            inflight.clear();
            continue;
        }
        match server.serve_batch(&batch, &mut probabilities) {
            Ok(()) => {
                record(shared, &*server, &batch, &probabilities, start);
                queue.complete(batch.len());
                inflight.clear();
            }
            Err(_) if batch.len() == 1 => {
                requeue_or_fail(queue, batch[0], retry_limit);
                inflight.clear();
            }
            Err(_) => {
                // Poison isolation: one bad request failed the whole batch.
                // Re-serve request-by-request so the innocent co-riders
                // complete now and only the poison burns its retry budget.
                for i in 0..batch.len() {
                    let request = batch[i];
                    match server.serve_batch(&batch[i..=i], &mut probabilities) {
                        Ok(()) => {
                            record(shared, &*server, &batch[i..=i], &probabilities, start);
                            queue.complete(1);
                        }
                        Err(_) => requeue_or_fail(queue, request, retry_limit),
                    }
                }
                inflight.clear();
            }
        }
    }
}

/// Records one served batch's completions into the shared log (pre-reserved
/// — no allocation) and counts the dispatch.
fn record<S: BatchServer>(
    shared: &SupervisorShared,
    server: &S,
    batch: &[QueuedRequest],
    probabilities: &[f32],
    start: Instant,
) {
    let completed_s = start.elapsed().as_secs_f64();
    let mut completions = shared.completions.lock().expect("completions poisoned");
    for (queued, &probability) in batch.iter().zip(probabilities) {
        completions.push(Completion {
            id: server.request_id(queued.index),
            arrival_s: queued.arrival_s,
            completed_s,
            probability,
        });
    }
    drop(completions);
    shared.batches.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_slot_publishes_and_recovers_the_exact_batch() {
        let slot = InFlightSlot::new(4);
        let batch = [
            QueuedRequest::new(3, 0.001),
            QueuedRequest::new(4, 0.002).retry(),
        ];
        slot.publish(&batch);
        let recovered = slot.recover();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].index, 3);
        assert_eq!(recovered[1].retries, 1, "retry metadata survives recovery");
        assert!(slot.recover().is_empty(), "recovery drains the slot");
        slot.publish(&batch);
        slot.clear();
        assert!(
            slot.recover().is_empty(),
            "cleared batches are not recovered"
        );
    }

    #[test]
    fn requeue_or_fail_respects_the_retry_budget() {
        let queue = ArrivalQueue::new();
        let mut batch = Vec::new();
        // Budget 1: first failure requeues, second fails permanently.
        assert!(queue.push(QueuedRequest::new(0, 0.0)));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        requeue_or_fail(&queue, batch[0], 1);
        assert_eq!(queue.depth(), 1, "first failure requeues");
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch[0].retries, 1);
        requeue_or_fail(&queue, batch[0], 1);
        assert_eq!(queue.depth(), 0, "budget exhausted");
        assert_eq!(queue.failed(), 1);
        // Budget 0 fails immediately.
        assert!(queue.push(QueuedRequest::new(1, 0.0)));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        requeue_or_fail(&queue, batch[0], 0);
        assert_eq!(queue.failed(), 2);
    }

    #[test]
    fn restart_budget_is_pool_wide_and_exact() {
        let shared = SupervisorShared::new(2, 0);
        assert!(shared.try_consume_restart(2));
        assert!(shared.try_consume_restart(2));
        assert!(!shared.try_consume_restart(2), "budget of 2 allows 2");
        assert_eq!(shared.restarts.load(Ordering::Relaxed), 2);
        assert!(!SupervisorShared::new(1, 0).try_consume_restart(0));
    }

    #[test]
    fn last_replica_death_is_flagged_and_first_payload_kept() {
        let shared = SupervisorShared::new(2, 0);
        assert!(
            !shared.replica_died(Box::new("first crash")),
            "one of two deaths is survivable"
        );
        assert!(
            shared.replica_died(Box::new("second crash")),
            "last death is unrecoverable"
        );
        let payload = shared.payload.lock().unwrap().take().unwrap();
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("first crash"),
            "the first crash's payload is the one preserved"
        );
    }
}
