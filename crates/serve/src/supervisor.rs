//! The replica supervisor: crash-tolerant serving on top of the arrival
//! queue's in-flight accounting.
//!
//! Pre-supervision, any replica-worker panic or datapath error aborted the
//! whole replay (`guard_worker` flips the abort flag and closes the queue).
//! Supervision replaces that all-or-nothing contract with the production
//! one — node loss is routine, the pool degrades gracefully:
//!
//! * every batch a worker holds is **published** to an [`InFlightSlot`]
//!   before it runs, so when the worker panics the supervisor recovers the
//!   exact requests that went down with it;
//! * recovered (and datapath-failed) requests are **requeued with their
//!   original arrival stamps** against a bounded per-request retry budget —
//!   exhausted budgets surface as [`RejectReason::Failed`] rejections,
//!   never silently;
//! * the crashed replica is **restarted** from a fresh shard clone, counted
//!   against a pool-wide restart budget; a replica beyond the budget stays
//!   dead and its siblings absorb the load through the existing
//!   admission/deadline machinery;
//! * only unrecoverable states abort: when the **last** live replica dies,
//!   the run aborts with the *first* crash's original panic payload
//!   preserved, exactly like the unsupervised path.
//!
//! The accounting invariant this module exists to uphold: every request the
//! queue ever accepted ends in exactly one of completed / shed / failed.

use crate::fault::FaultGuard;
use crate::harness::Completion;
use crate::policy::BatchPolicy;
use crate::queue::{ArrivalQueue, QueuedRequest};
use crate::server::BatchServer;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How often a quarantined worker re-checks its re-admission probe (and
/// whether the replay is still running).
const QUARANTINE_PROBE_TICK: Duration = Duration::from_micros(500);

/// EWMA smoothing factor for per-replica batch service time: each new
/// observation carries this weight.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

/// Clean batches a replica on probation must serve to return to
/// [`ReplicaHealth::Healthy`].
const PROBATION_CLEAN_BATCHES: u32 = 2;

/// Fault-tolerance budgets for a supervised replica pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Times one request may be re-served after a replica crash or
    /// datapath error before it is failed ([`RejectReason::Failed`]).
    ///
    /// [`RejectReason::Failed`]: centaur_dlrm::RejectReason::Failed
    pub retry_limit: u32,
    /// Replica restarts the pool may spend across the whole run. A crash
    /// beyond this budget leaves the replica dead; when the *last* replica
    /// dies the run aborts with the first crash's panic payload.
    pub restart_budget: usize,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            retry_limit: 2,
            restart_budget: 2,
        }
    }
}

impl Supervision {
    /// Supervision with the given budgets.
    pub fn new(retry_limit: u32, restart_budget: usize) -> Self {
        Supervision {
            retry_limit,
            restart_budget,
        }
    }
}

/// What one worker currently holds: the published batch, when it was
/// dispatched (seconds on the replay clock), and whether the watchdog has
/// already hedged this dispatch.
#[derive(Debug)]
struct SlotState {
    batch: Vec<QueuedRequest>,
    dispatched_s: f64,
    hedged: bool,
}

/// The crash-recovery and watchdog handoff slot: a worker publishes each
/// batch here *before* running it — stamped with its dispatch time — so
/// the supervisor can recover exactly the requests that were in flight when
/// the worker panicked, and the watchdog monitor can detect a dispatch held
/// past its overdue timeout and hedge its riders to a healthy sibling.
/// Publish/clear reuse one pre-reserved buffer — the fault-free steady
/// state allocates nothing.
#[derive(Debug)]
pub struct InFlightSlot {
    slot: Mutex<SlotState>,
}

impl InFlightSlot {
    /// An empty slot pre-reserved for batches up to `capacity`.
    pub fn new(capacity: usize) -> Self {
        InFlightSlot {
            slot: Mutex::new(SlotState {
                batch: Vec::with_capacity(capacity),
                dispatched_s: 0.0,
                hedged: false,
            }),
        }
    }

    /// Records `batch` as the worker's current in-flight work, dispatched
    /// at `now_s` on the replay clock.
    pub fn publish(&self, batch: &[QueuedRequest], now_s: f64) {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        slot.batch.clear();
        slot.batch.extend_from_slice(batch);
        slot.dispatched_s = now_s;
        slot.hedged = false;
    }

    /// Marks the current batch fully accounted (served/requeued/failed) and
    /// returns whether the watchdog hedged it while it ran. The worker must
    /// clear **before** resolving the batch against the queue: clearing
    /// makes the monitor blind to this dispatch, so the returned flag is the
    /// final word on whether a hedge raced (or is about to race) the batch.
    pub fn clear(&self) -> bool {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        slot.batch.clear();
        std::mem::take(&mut slot.hedged)
    }

    /// Takes whatever was in flight plus its hedged flag — the
    /// crash-recovery path. The slot mutex is never poisoned by a worker
    /// panic: workers only hold the lock inside
    /// [`publish`](Self::publish)/[`clear`](Self::clear), which cannot
    /// unwind mid-critical-section.
    pub fn recover(&self) -> (Vec<QueuedRequest>, bool) {
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        let batch = std::mem::take(&mut slot.batch);
        let hedged = std::mem::take(&mut slot.hedged);
        (batch, hedged)
    }

    /// Watchdog probe: the current dispatch's stamp and hedged flag, or
    /// `None` while the worker holds nothing.
    pub fn probe(&self) -> Option<(f64, bool)> {
        let slot = self.slot.lock().expect("in-flight slot poisoned");
        if slot.batch.is_empty() {
            None
        } else {
            Some((slot.dispatched_s, slot.hedged))
        }
    }

    /// Claims the current dispatch for hedging when it is overdue at
    /// `now_s` (held longer than `timeout_s`) and not already hedged:
    /// marks it hedged and copies its riders into `out` (cleared first).
    /// Returns `false` — with `out` cleared — when the slot is idle, the
    /// dispatch is on time, or it was already hedged. The occupancy and
    /// age re-check under the slot lock means a dispatch that completed
    /// (or changed) since the caller's probe is never claimed.
    pub fn overdue_riders(&self, now_s: f64, timeout_s: f64, out: &mut Vec<QueuedRequest>) -> bool {
        out.clear();
        let mut slot = self.slot.lock().expect("in-flight slot poisoned");
        if slot.batch.is_empty() || slot.hedged || now_s - slot.dispatched_s <= timeout_s {
            return false;
        }
        slot.hedged = true;
        out.extend_from_slice(&slot.batch);
        true
    }
}

/// Routes one failed serve attempt: requeue for another try while the
/// request has retry budget left (original arrival stamp preserved —
/// [`QueuedRequest::retry`] bumps only the count), otherwise fail it
/// permanently with a counted [`RejectReason::Failed`] rejection. `hedged`
/// carries the in-flight slot's flag so a hedged sibling's result is never
/// double-counted (see [`ArrivalQueue::fail`]).
///
/// [`RejectReason::Failed`]: centaur_dlrm::RejectReason::Failed
pub fn requeue_or_fail(
    queue: &ArrivalQueue,
    request: QueuedRequest,
    retry_limit: u32,
    hedged: bool,
) {
    if request.retries < retry_limit {
        queue.requeue(request.retry());
    } else {
        queue.fail(request, hedged);
    }
}

/// Per-replica health classification driving quarantine decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Serving normally.
    Healthy,
    /// Recently struck (overdue dispatch, transient, or over-timeout
    /// service) or freshly re-admitted from quarantine: still serving, but
    /// strikes now escalate to quarantine, and it takes consecutive clean
    /// batches to return to [`Healthy`](Self::Healthy).
    Probation,
    /// Pulled from rotation: the replica stops pulling work until its
    /// exponential-backoff probe delay expires, then re-admits on
    /// probation. Distinct from the crash restart budget — a quarantined
    /// replica is alive, just distrusted.
    Quarantined,
}

/// One replica's health ledger.
#[derive(Debug)]
struct HealthState {
    state: ReplicaHealth,
    /// EWMA of batch service time (seconds); `0.0` until the first batch.
    ewma_service_s: f64,
    strikes: u32,
    clean: u32,
    quarantined_until_s: f64,
    backoff_s: f64,
    quarantines: usize,
    readmissions: usize,
}

/// Pool-wide replica health scoring: per-replica EWMA of batch service
/// time plus overdue/transient strike counts feed a
/// [`ReplicaHealth`] state machine (Healthy → Probation → Quarantined).
/// Workers consult [`may_pull`](Self::may_pull) before taking work;
/// quarantined replicas re-admit via exponential-backoff probes. All state
/// is per-replica behind its own mutex — scoring never contends with the
/// arrival queue's lock.
#[derive(Debug)]
pub struct HealthBoard {
    replicas: Vec<Mutex<HealthState>>,
    timeout_s: f64,
    strike_limit: u32,
    base_backoff_s: f64,
}

impl HealthBoard {
    /// A board for `replicas` workers: a batch held or served past
    /// `timeout_s` is a strike, `strike_limit` strikes quarantine the
    /// replica, and quarantine backoff starts at `backoff` (doubling on
    /// each re-quarantine, reset when the replica earns `Healthy` back).
    pub fn new(replicas: usize, timeout_s: f64, strike_limit: u32, backoff: Duration) -> Self {
        HealthBoard {
            replicas: (0..replicas)
                .map(|_| {
                    Mutex::new(HealthState {
                        state: ReplicaHealth::Healthy,
                        ewma_service_s: 0.0,
                        strikes: 0,
                        clean: 0,
                        quarantined_until_s: 0.0,
                        backoff_s: backoff.as_secs_f64(),
                        quarantines: 0,
                        readmissions: 0,
                    })
                })
                .collect(),
            timeout_s,
            strike_limit: strike_limit.max(1),
            base_backoff_s: backoff.as_secs_f64(),
        }
    }

    /// A board that never strikes or quarantines — for pools that run the
    /// supervised loop without a watchdog (hedging disabled).
    pub fn disabled(replicas: usize) -> Self {
        HealthBoard::new(replicas, f64::INFINITY, u32::MAX, Duration::from_secs(1))
    }

    /// Records one served batch: updates the service-time EWMA, counts a
    /// strike when service exceeded the timeout, and otherwise credits a
    /// clean batch (probation works back to healthy after
    /// [`PROBATION_CLEAN_BATCHES`] of them; healthy replicas decay one
    /// strike per clean batch).
    pub fn record_service(&self, replica: usize, service_s: f64, now_s: f64) {
        let mut s = self.replicas[replica].lock().expect("health poisoned");
        s.ewma_service_s = if s.ewma_service_s == 0.0 {
            service_s
        } else {
            SERVICE_EWMA_ALPHA * service_s + (1.0 - SERVICE_EWMA_ALPHA) * s.ewma_service_s
        };
        if service_s > self.timeout_s {
            self.strike(&mut s, now_s);
            return;
        }
        match s.state {
            ReplicaHealth::Healthy => s.strikes = s.strikes.saturating_sub(1),
            ReplicaHealth::Probation => {
                s.clean += 1;
                if s.clean >= PROBATION_CLEAN_BATCHES {
                    s.state = ReplicaHealth::Healthy;
                    s.strikes = 0;
                    s.clean = 0;
                    s.backoff_s = self.base_backoff_s;
                }
            }
            ReplicaHealth::Quarantined => {}
        }
    }

    /// Records a watchdog-detected overdue dispatch: one strike.
    pub fn record_overdue(&self, replica: usize, now_s: f64) {
        let mut s = self.replicas[replica].lock().expect("health poisoned");
        self.strike(&mut s, now_s);
    }

    /// Records a transient/datapath failure on the replica: one strike.
    pub fn record_transient(&self, replica: usize, now_s: f64) {
        let mut s = self.replicas[replica].lock().expect("health poisoned");
        self.strike(&mut s, now_s);
    }

    fn strike(&self, s: &mut HealthState, now_s: f64) {
        if s.state == ReplicaHealth::Quarantined {
            return;
        }
        s.strikes += 1;
        s.clean = 0;
        if s.state == ReplicaHealth::Healthy {
            s.state = ReplicaHealth::Probation;
        }
        if s.strikes >= self.strike_limit {
            s.state = ReplicaHealth::Quarantined;
            s.quarantined_until_s = now_s + s.backoff_s;
            s.backoff_s *= 2.0;
            s.quarantines += 1;
            s.strikes = 0;
        }
    }

    /// Whether the replica may pull work right now. A quarantined replica
    /// whose backoff expired re-admits here — onto probation, counted as a
    /// re-admission.
    pub fn may_pull(&self, replica: usize, now_s: f64) -> bool {
        let mut s = self.replicas[replica].lock().expect("health poisoned");
        match s.state {
            ReplicaHealth::Quarantined => {
                if now_s >= s.quarantined_until_s {
                    s.state = ReplicaHealth::Probation;
                    s.clean = 0;
                    s.readmissions += 1;
                    true
                } else {
                    false
                }
            }
            _ => true,
        }
    }

    /// The replica's current classification.
    pub fn health(&self, replica: usize) -> ReplicaHealth {
        self.replicas[replica]
            .lock()
            .expect("health poisoned")
            .state
    }

    /// The replica's batch-service-time EWMA in seconds (`0.0` before its
    /// first batch).
    pub fn ewma_service_s(&self, replica: usize) -> f64 {
        self.replicas[replica]
            .lock()
            .expect("health poisoned")
            .ewma_service_s
    }

    /// Quarantine entries across the pool so far.
    pub fn quarantines(&self) -> usize {
        self.replicas
            .iter()
            .map(|s| s.lock().expect("health poisoned").quarantines)
            .sum()
    }

    /// Backoff-probe re-admissions across the pool so far.
    pub fn readmissions(&self) -> usize {
        self.replicas
            .iter()
            .map(|s| s.lock().expect("health poisoned").readmissions)
            .sum()
    }
}

/// State shared between the harness and every supervised replica: recorded
/// completions, pool-wide budgets and the first crash's preserved payload.
pub(crate) struct SupervisorShared {
    /// Completions from every replica (pre-reserved to the request count so
    /// the recording path never allocates).
    pub completions: Mutex<Vec<Completion>>,
    /// Accelerator batches dispatched across the pool.
    pub batches: AtomicUsize,
    /// Restarts consumed from the pool-wide budget.
    pub restarts: AtomicUsize,
    /// Replicas still alive (dead = crashed beyond the restart budget).
    pub live: AtomicUsize,
    /// The first crash's original panic payload, preserved for
    /// `resume_unwind` should the run become unrecoverable.
    pub payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl SupervisorShared {
    pub fn new(replicas: usize, requests: usize) -> Self {
        SupervisorShared {
            completions: Mutex::new(Vec::with_capacity(requests)),
            batches: AtomicUsize::new(0),
            restarts: AtomicUsize::new(0),
            live: AtomicUsize::new(replicas),
            payload: Mutex::new(None),
        }
    }

    /// Claims one restart from the pool-wide budget; `false` once spent.
    pub fn try_consume_restart(&self, budget: usize) -> bool {
        let mut used = self.restarts.load(Ordering::Relaxed);
        loop {
            if used >= budget {
                return false;
            }
            match self.restarts.compare_exchange(
                used,
                used + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => used = actual,
            }
        }
    }

    /// Records a replica death (preserving the first payload) and returns
    /// `true` when it was the last live replica — the unrecoverable state.
    pub fn replica_died(&self, payload: Box<dyn Any + Send>) -> bool {
        let mut slot = self.payload.lock().expect("payload slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        self.live.fetch_sub(1, Ordering::AcqRel) == 1
    }
}

/// One supervised replica: runs [`supervised_worker_loop`] under a panic
/// guard, and on a crash recovers the in-flight batch (requeue against the
/// retry budget), then restarts the replica with a fresh `respawn()`-built
/// backend while the pool-wide restart budget lasts. A replica beyond the
/// budget stays dead; the death of the *last* replica flips the abort flag
/// and abandons the queue so the harness can re-raise the preserved panic
/// payload.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_replica<S: BatchServer>(
    queue: &ArrivalQueue,
    mut server: S,
    respawn: &(dyn Fn() -> S + Sync),
    policy: BatchPolicy,
    start: Instant,
    supervision: Supervision,
    mut guard: FaultGuard,
    inflight: &InFlightSlot,
    health: &HealthBoard,
    shared: &SupervisorShared,
    abort: &AtomicBool,
    replica: usize,
) {
    loop {
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            supervised_worker_loop(
                queue,
                &mut server,
                policy,
                start,
                supervision.retry_limit,
                &mut guard,
                inflight,
                health,
                shared,
                replica,
            )
        }));
        let payload = match crashed {
            Ok(()) => return, // queue drained (or aborted); clean exit
            Err(payload) => payload,
        };
        // Crash recovery: the published batch went down with the worker —
        // requeue it (original arrival stamps) against the retry budget.
        let (riders, hedged) = inflight.recover();
        for request in riders {
            requeue_or_fail(queue, request, supervision.retry_limit, hedged);
        }
        if shared.try_consume_restart(supervision.restart_budget) {
            // Fresh backend (shard clone + staging buffers): never reuse
            // state a panic unwound through.
            server = respawn();
            continue;
        }
        // Beyond the restart budget: this replica stays dead. Survivors
        // absorb the load; only the last death is unrecoverable.
        if shared.replica_died(payload) {
            abort.store(true, Ordering::Relaxed);
            queue.close_abort();
        }
        return;
    }
}

/// One supervised replica's serving loop. Differences from the unsupervised
/// loop: the replica's health gates every pull (quarantined replicas park
/// on backoff probes instead of taking work), every batch is published
/// in-flight — dispatch-stamped for the watchdog — before anything can
/// fail, the fault guard is polled once per batch (crash events panic
/// here, inside the supervisor's catch), injected transients and real
/// datapath errors strike the replica's health and requeue work against
/// the retry budget instead of killing the run, and a failing batch is
/// re-served request-by-request so one poison request cannot burn its
/// co-riders' budgets. Completions resolve through
/// [`ArrivalQueue::complete_batch`] so a hedged sibling's result is
/// counted once and a straggler's duplicate answer is discarded.
#[allow(clippy::too_many_arguments)]
fn supervised_worker_loop<S: BatchServer>(
    queue: &ArrivalQueue,
    server: &mut S,
    policy: BatchPolicy,
    start: Instant,
    retry_limit: u32,
    guard: &mut FaultGuard,
    inflight: &InFlightSlot,
    health: &HealthBoard,
    shared: &SupervisorShared,
    replica: usize,
) {
    let mut batch: Vec<QueuedRequest> = Vec::with_capacity(policy.max_batch());
    let mut probabilities: Vec<f32> = Vec::with_capacity(policy.max_batch());
    let mut primary: Vec<bool> = Vec::with_capacity(policy.max_batch());
    loop {
        // Quarantine gate: a distrusted replica stops pulling work until
        // its backoff probe expires (or the replay ends around it).
        while !health.may_pull(replica, start.elapsed().as_secs_f64()) {
            if queue.is_aborted() || queue.is_finished() {
                return;
            }
            std::thread::sleep(QUARANTINE_PROBE_TICK);
        }
        if !queue.pop_batch(policy, &mut batch) {
            return;
        }
        let dispatched_s = start.elapsed().as_secs_f64();
        inflight.publish(&batch, dispatched_s);
        if guard.intercept(replica, dispatched_s).is_err() {
            // Injected transient: the whole batch's attempt failed, the
            // replica survives — struck, not crashed. Retry or fail each
            // rider.
            health.record_transient(replica, start.elapsed().as_secs_f64());
            let hedged = inflight.clear();
            for &request in &batch {
                requeue_or_fail(queue, request, retry_limit, hedged);
            }
            continue;
        }
        match server.serve_batch(&batch, &mut probabilities) {
            Ok(()) => {
                let served_s = start.elapsed().as_secs_f64();
                guard.apply_degradation(Duration::from_secs_f64(served_s - dispatched_s));
                let hedged = inflight.clear();
                queue.complete_batch(&batch, hedged, &mut primary);
                record(shared, &*server, &batch, &probabilities, &primary, start);
                health.record_service(
                    replica,
                    start.elapsed().as_secs_f64() - dispatched_s,
                    start.elapsed().as_secs_f64(),
                );
            }
            Err(_) if batch.len() == 1 => {
                health.record_transient(replica, start.elapsed().as_secs_f64());
                let hedged = inflight.clear();
                requeue_or_fail(queue, batch[0], retry_limit, hedged);
            }
            Err(_) => {
                // Poison isolation: one bad request failed the whole batch.
                // Re-serve request-by-request so the innocent co-riders
                // complete now and only the poison burns its retry budget.
                health.record_transient(replica, start.elapsed().as_secs_f64());
                let hedged = inflight.clear();
                for i in 0..batch.len() {
                    let request = batch[i];
                    match server.serve_batch(&batch[i..=i], &mut probabilities) {
                        Ok(()) => {
                            queue.complete_batch(&batch[i..=i], hedged, &mut primary);
                            record(
                                shared,
                                &*server,
                                &batch[i..=i],
                                &probabilities,
                                &primary,
                                start,
                            );
                        }
                        Err(_) => requeue_or_fail(queue, request, retry_limit, hedged),
                    }
                }
            }
        }
    }
}

/// Records one served batch's completions into the shared log (pre-reserved
/// — no allocation) and counts the dispatch. `primary` is the mask
/// [`ArrivalQueue::complete_batch`] produced: suppressed duplicates are
/// discarded here, never recorded twice.
fn record<S: BatchServer>(
    shared: &SupervisorShared,
    server: &S,
    batch: &[QueuedRequest],
    probabilities: &[f32],
    primary: &[bool],
    start: Instant,
) {
    let completed_s = start.elapsed().as_secs_f64();
    let mut completions = shared.completions.lock().expect("completions poisoned");
    for ((queued, &probability), &keep) in batch.iter().zip(probabilities).zip(primary) {
        if !keep {
            continue;
        }
        completions.push(Completion {
            id: server.request_id(queued.index),
            arrival_s: queued.arrival_s,
            completed_s,
            probability,
        });
    }
    drop(completions);
    shared.batches.fetch_add(1, Ordering::Relaxed);
}

/// The stall watchdog: polls every replica's [`InFlightSlot`] on a tick a
/// quarter of the hedge timeout and, when a published batch's age crosses
/// the timeout, strikes the straggler's health and — once per dispatch,
/// `hedge` permitting — clones the overdue riders back into the queue so a
/// healthy sibling races the stall. Ages are measured per *dispatch*
/// (escalating multiples of the timeout), so one long stall strikes
/// repeatedly while a busy-but-healthy replica is left alone. All
/// bookkeeping is preallocated before the loop: a fault-free replay runs
/// this monitor allocation-free.
pub(crate) fn watchdog_monitor(
    queue: &ArrivalQueue,
    slots: &[InFlightSlot],
    health: &HealthBoard,
    hedge: bool,
    timeout_s: f64,
    max_batch: usize,
    start: Instant,
) {
    let tick = Duration::from_secs_f64((timeout_s / 4.0).clamp(100e-6, 50e-3));
    // Per replica: the dispatch stamp last seen and how many times that
    // same dispatch has already been struck.
    let mut book: Vec<(f64, u32)> = vec![(f64::NAN, 0); slots.len()];
    let mut riders: Vec<QueuedRequest> = Vec::with_capacity(max_batch);
    while !queue.is_aborted() && !queue.is_finished() {
        std::thread::sleep(tick);
        let now_s = start.elapsed().as_secs_f64();
        for (replica, slot) in slots.iter().enumerate() {
            let Some((dispatched_s, hedged)) = slot.probe() else {
                book[replica] = (f64::NAN, 0);
                continue;
            };
            if book[replica].0 != dispatched_s {
                book[replica] = (dispatched_s, 0);
            }
            let strikes = book[replica].1;
            if now_s - dispatched_s <= timeout_s * (strikes + 1) as f64 {
                continue;
            }
            book[replica].1 = strikes + 1;
            health.record_overdue(replica, now_s);
            if hedge && !hedged && slot.overdue_riders(now_s, timeout_s, &mut riders) {
                for &rider in riders.iter() {
                    queue.hedge(rider);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_slot_publishes_and_recovers_the_exact_batch() {
        let slot = InFlightSlot::new(4);
        let batch = [
            QueuedRequest::new(3, 0.001),
            QueuedRequest::new(4, 0.002).retry(),
        ];
        slot.publish(&batch, 0.01);
        let (recovered, hedged) = slot.recover();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].index, 3);
        assert_eq!(recovered[1].retries, 1, "retry metadata survives recovery");
        assert!(!hedged);
        assert!(slot.recover().0.is_empty(), "recovery drains the slot");
        slot.publish(&batch, 0.02);
        assert!(!slot.clear(), "unhedged dispatch clears without a flag");
        assert!(
            slot.recover().0.is_empty(),
            "cleared batches are not recovered"
        );
    }

    /// The watchdog handshake: an overdue dispatch is claimed exactly once,
    /// an on-time or already-hedged one never, and the worker's `clear`
    /// takes the hedged flag with it.
    #[test]
    fn overdue_riders_claims_an_overdue_dispatch_once() {
        let slot = InFlightSlot::new(4);
        let mut riders = Vec::new();
        assert!(
            !slot.overdue_riders(10.0, 0.001, &mut riders),
            "idle slot has nothing overdue"
        );
        let batch = [QueuedRequest::new(7, 0.0)];
        slot.publish(&batch, 1.0);
        assert!(
            !slot.overdue_riders(1.0005, 0.001, &mut riders),
            "on-time dispatch is not claimed"
        );
        assert!(slot.overdue_riders(1.5, 0.001, &mut riders));
        assert_eq!(riders.len(), 1);
        assert_eq!(riders[0].index, 7);
        assert!(
            !slot.overdue_riders(2.0, 0.001, &mut riders),
            "a dispatch is hedged at most once"
        );
        assert!(slot.clear(), "the worker learns its dispatch was hedged");
        slot.publish(&batch, 3.0);
        assert_eq!(
            slot.probe(),
            Some((3.0, false)),
            "fresh dispatch, fresh flag"
        );
    }

    #[test]
    fn requeue_or_fail_respects_the_retry_budget() {
        let queue = ArrivalQueue::new();
        let mut batch = Vec::new();
        // Budget 1: first failure requeues, second fails permanently.
        assert!(queue.push(QueuedRequest::new(0, 0.0)));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        requeue_or_fail(&queue, batch[0], 1, false);
        assert_eq!(queue.depth(), 1, "first failure requeues");
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        assert_eq!(batch[0].retries, 1);
        requeue_or_fail(&queue, batch[0], 1, false);
        assert_eq!(queue.depth(), 0, "budget exhausted");
        assert_eq!(queue.failed(), 1);
        // Budget 0 fails immediately.
        assert!(queue.push(QueuedRequest::new(1, 0.0)));
        assert!(queue.pop_batch(BatchPolicy::Fifo, &mut batch));
        requeue_or_fail(&queue, batch[0], 0, false);
        assert_eq!(queue.failed(), 2);
    }

    /// Walks one replica through the whole health state machine: strikes to
    /// probation, probation to quarantine, backoff re-admission, clean
    /// batches back to healthy — with the backoff doubling on a
    /// re-quarantine and resetting on recovery.
    #[test]
    fn health_board_walks_probation_quarantine_and_backoff_readmission() {
        let board = HealthBoard::new(2, 0.010, 2, Duration::from_millis(40));
        assert_eq!(board.health(0), ReplicaHealth::Healthy);
        assert!(board.may_pull(0, 0.0));
        // First strike: probation, still pulling.
        board.record_overdue(0, 0.001);
        assert_eq!(board.health(0), ReplicaHealth::Probation);
        assert!(board.may_pull(0, 0.001));
        // Second strike hits the limit: quarantined, not pulling.
        board.record_transient(0, 0.002);
        assert_eq!(board.health(0), ReplicaHealth::Quarantined);
        assert_eq!(board.quarantines(), 1);
        assert!(!board.may_pull(0, 0.010), "backoff still running");
        // Backoff expiry re-admits onto probation.
        assert!(board.may_pull(0, 0.050), "probe re-admits after 40 ms");
        assert_eq!(board.readmissions(), 1);
        assert_eq!(board.health(0), ReplicaHealth::Probation);
        // A slow batch (service over the timeout) re-strikes straight back
        // to quarantine (probation needed 2 strikes, it had 0 after reset
        // ... one over-timeout service is one strike, second strikes it out).
        board.record_service(0, 0.020, 0.051);
        board.record_service(0, 0.020, 0.052);
        assert_eq!(board.health(0), ReplicaHealth::Quarantined);
        assert_eq!(board.quarantines(), 2);
        assert!(
            !board.may_pull(0, 0.100),
            "doubled backoff (80 ms) still running at +48 ms"
        );
        assert!(board.may_pull(0, 0.140), "doubled backoff expires");
        assert_eq!(board.readmissions(), 2);
        // Two clean batches earn healthy back and reset the backoff.
        board.record_service(0, 0.002, 0.141);
        board.record_service(0, 0.002, 0.142);
        assert_eq!(board.health(0), ReplicaHealth::Healthy);
        assert!(board.ewma_service_s(0) > 0.0);
        // The sibling replica was never touched.
        assert_eq!(board.health(1), ReplicaHealth::Healthy);
        assert_eq!(board.quarantines(), 2, "counts are per-pool sums");
    }

    #[test]
    fn disabled_health_board_never_quarantines() {
        let board = HealthBoard::disabled(1);
        for i in 0..100 {
            board.record_service(0, 1e9, i as f64);
        }
        assert_eq!(
            board.health(0),
            ReplicaHealth::Healthy,
            "an infinite timeout never registers a strike"
        );
        assert!(board.may_pull(0, 1.0));
        assert_eq!(board.quarantines(), 0);
    }

    #[test]
    fn restart_budget_is_pool_wide_and_exact() {
        let shared = SupervisorShared::new(2, 0);
        assert!(shared.try_consume_restart(2));
        assert!(shared.try_consume_restart(2));
        assert!(!shared.try_consume_restart(2), "budget of 2 allows 2");
        assert_eq!(shared.restarts.load(Ordering::Relaxed), 2);
        assert!(!SupervisorShared::new(1, 0).try_consume_restart(0));
    }

    #[test]
    fn last_replica_death_is_flagged_and_first_payload_kept() {
        let shared = SupervisorShared::new(2, 0);
        assert!(
            !shared.replica_died(Box::new("first crash")),
            "one of two deaths is survivable"
        );
        assert!(
            shared.replica_died(Box::new("second crash")),
            "last death is unrecoverable"
        );
        let payload = shared.payload.lock().unwrap().take().unwrap();
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("first crash"),
            "the first crash's payload is the one preserved"
        );
    }
}
