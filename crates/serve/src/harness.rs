//! The serving harness: an open-loop load generator replays a seeded
//! [`QueryStream`] against a pool of replica workers behind the shared
//! [`ArrivalQueue`], and the recorded per-request completions are digested
//! into tail-latency and goodput-under-SLO reports.

use crate::fault::{FaultGuard, FaultPlan, FaultSpec};
use crate::policy::BatchPolicy;
use crate::queue::{AdmissionConfig, ArrivalQueue, DequeueOrder, QueuedRequest};
use crate::server::{BatchServer, SoloServer};
use crate::stage::ReplicaStage;
use crate::supervisor::{
    supervise_replica, watchdog_monitor, HealthBoard, InFlightSlot, Supervision, SupervisorShared,
};
use centaur::{CentaurConfig, CentaurError, CentaurRuntime};
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::{DlrmModel, InferenceRequest, InferenceResponse, RejectReason, RejectedRequest};
use centaur_workload::{
    IndexDistribution, LatencySummary, QueryStream, RequestGenerator, TrafficShape,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One served request's record: scheduled arrival, completion time and the
/// served probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request id (the pre-generated request's index).
    pub id: u64,
    /// Scheduled arrival offset, seconds from experiment start.
    pub arrival_s: f64,
    /// Completion offset, seconds from experiment start.
    pub completed_s: f64,
    /// Served click probability.
    pub probability: f32,
}

impl Completion {
    /// End-to-end latency (queueing + batching + inference), in seconds.
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }

    /// The wire-level answer to the request — what a deployment would send
    /// back to the caller (the timing fields stay server-side).
    pub fn response(&self) -> InferenceResponse {
        InferenceResponse {
            id: self.id,
            probability: self.probability,
        }
    }
}

/// The tail-tolerance layer's tuning: how stale an in-flight batch must be
/// before the watchdog hedges it to a sibling, and how the straggler's
/// health strikes convert into quarantine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Age past which a published batch is overdue: the watchdog strikes
    /// the replica's health and re-dispatches the riders to a sibling.
    pub timeout: Duration,
    /// Health strikes (overdue batches, transients, over-timeout services)
    /// before the replica is quarantined.
    pub quarantine_strikes: u32,
    /// First quarantine duration; doubled on each repeat offence.
    pub quarantine_backoff: Duration,
}

impl HedgeConfig {
    /// Shortest derived hedge timeout — below this the watchdog would hedge
    /// healthy dispatch jitter.
    pub const MIN_TIMEOUT: Duration = Duration::from_micros(500);

    /// Derived hedge timeout when neither an SLO nor a service estimate is
    /// available to anchor one.
    pub const FALLBACK_TIMEOUT: Duration = Duration::from_millis(5);

    /// A hedge config with an explicit timeout and the built-in quarantine
    /// defaults (see [`crate::env::DEFAULT_SERVE_QUARANTINE_STRIKES`]).
    pub fn new(timeout: Duration) -> Self {
        HedgeConfig {
            timeout,
            quarantine_strikes: crate::env::DEFAULT_SERVE_QUARANTINE_STRIKES,
            quarantine_backoff: Duration::from_secs_f64(
                crate::env::DEFAULT_SERVE_QUARANTINE_BACKOFF_MS / 1e3,
            ),
        }
    }

    /// The same config with explicit quarantine tuning.
    pub fn with_quarantine(mut self, strikes: u32, backoff: Duration) -> Self {
        self.quarantine_strikes = strikes;
        self.quarantine_backoff = backoff;
        self
    }

    /// The deployment-default config: the timeout comes from
    /// `CENTAUR_SERVE_HEDGE_MS` when set, else is derived from the tenant
    /// SLO and the policy's calibrated service estimate — twice the
    /// estimate (a healthy batch at double its expected service is a
    /// straggler) capped at half the SLO (hedging later leaves the sibling
    /// no budget to answer in), floored at [`Self::MIN_TIMEOUT`], falling
    /// back to [`Self::FALLBACK_TIMEOUT`] when neither anchor exists.
    /// Quarantine tuning comes from the `CENTAUR_SERVE_QUARANTINE_*` knobs.
    pub fn derived(slo: Option<Duration>, policy: BatchPolicy) -> Self {
        let timeout = match crate::env::serve_hedge_ms() {
            Some(ms) => Duration::from_secs_f64(ms / 1e3),
            None => {
                let from_estimate = policy.dispatch_slack().map(|estimate| estimate * 2);
                let from_slo = slo.map(|slo| slo / 2);
                match (from_estimate, from_slo) {
                    (Some(estimate), Some(slo)) => estimate.min(slo),
                    (Some(estimate), None) => estimate,
                    (None, Some(slo)) => slo,
                    (None, None) => Self::FALLBACK_TIMEOUT,
                }
                .max(Self::MIN_TIMEOUT)
            }
        };
        HedgeConfig {
            timeout,
            quarantine_strikes: crate::env::serve_quarantine_strikes(),
            quarantine_backoff: Duration::from_secs_f64(
                crate::env::serve_quarantine_backoff_ms() / 1e3,
            ),
        }
    }
}

/// Per-run serving options: the latency SLO requests carry and the
/// overload-protection gates. The default is the pre-SLO behaviour — no
/// deadline, unbounded queue, nothing shed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServeOptions {
    /// Per-request latency SLO: each request's deadline is its scheduled
    /// arrival plus this. `None` = no deadline (goodput equals throughput).
    pub slo: Option<Duration>,
    /// Admission-gate depth bound: arrivals are shed while the queue
    /// already holds this many requests. `None` = unbounded.
    pub admission_depth: Option<usize>,
    /// Shed already-dead requests at dequeue instead of serving them.
    pub shed_expired: bool,
    /// Fault-tolerance budgets. `None` preserves the fail-stop contract: a
    /// replica panic or datapath error aborts the whole run. `Some`
    /// supervises the pool — crashed workers' batches are recovered and
    /// requeued (original arrival stamps), replicas restart up to the
    /// budget, and only unrecoverable states abort.
    pub supervision: Option<Supervision>,
    /// Dequeue order for the backlog: FIFO (default) or
    /// earliest-deadline-first.
    pub order: DequeueOrder,
    /// Tail tolerance under supervision: `Some` arms the stall watchdog —
    /// overdue batches are hedged to a healthy sibling (first result wins,
    /// the straggler's duplicate is suppressed) and persistently slow
    /// replicas are quarantined with exponential-backoff re-admission.
    /// `None` (the default) leaves stalls visible in the tail, the PR 7
    /// behaviour. Ignored on the unsupervised path, which gets a fail-stop
    /// stall abort instead (see [`serve_replay_with`]).
    pub hedge: Option<HedgeConfig>,
}

impl ServeOptions {
    /// Measure goodput against `slo` without shedding anything — the
    /// baseline that shows what overload does to an unprotected server.
    pub fn with_slo(slo: Duration) -> Self {
        ServeOptions {
            slo: Some(slo),
            ..ServeOptions::default()
        }
    }

    /// Full overload protection: requests carry `slo`-derived deadlines,
    /// the admission gate sheds beyond `admission_depth`, and dead requests
    /// are shed at dequeue.
    pub fn overload_protected(slo: Duration, admission_depth: usize) -> Self {
        ServeOptions {
            slo: Some(slo),
            admission_depth: Some(admission_depth),
            shed_expired: true,
            ..ServeOptions::default()
        }
    }

    /// The same options with a supervised, fault-tolerant replica pool.
    pub fn supervised(mut self, supervision: Supervision) -> Self {
        self.supervision = Some(supervision);
        self
    }

    /// The same options under a different dequeue order.
    pub fn with_order(mut self, order: DequeueOrder) -> Self {
        self.order = order;
        self
    }

    /// The same options with the stall watchdog armed (supervised runs
    /// only): overdue batches hedge to a sibling and slow replicas are
    /// quarantined per `hedge`.
    pub fn hedged(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// The SLO in seconds, `f64::INFINITY` when none is set.
    pub fn slo_s(&self) -> f64 {
        self.slo.map_or(f64::INFINITY, |slo| slo.as_secs_f64())
    }

    pub(crate) fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            max_depth: self.admission_depth,
            shed_expired: self.shed_expired,
            order: self.order,
        }
    }
}

/// What one replica worker hands back: its completions and batch count, or
/// the datapath error that stopped it — wrapped in the panic-guard's result.
pub(crate) type WorkerResult = std::thread::Result<Result<(Vec<Completion>, usize), CentaurError>>;

/// Everything recorded by one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-request completion records (unordered across workers).
    pub completions: Vec<Completion>,
    /// Number of accelerator batches dispatched.
    pub batches: usize,
    /// The SLO the run was configured with, seconds (`INFINITY` = none).
    pub slo_s: f64,
    /// Requests shed at the admission gate.
    pub shed_admission: usize,
    /// Requests shed at dequeue because their deadline had passed.
    pub shed_expired: usize,
    /// Requests permanently failed after exhausting their retry budget.
    pub failed: usize,
    /// Total re-serve attempts (requeues after crashes/datapath errors).
    pub retries: usize,
    /// Replica restarts the supervisor performed.
    pub restarts: usize,
    /// Replicas that died beyond the restart budget and stayed dead.
    pub replicas_lost: usize,
    /// Overdue batches' riders hedged to a sibling replica.
    pub hedges: usize,
    /// Hedged requests whose *clone* answered first — rescues the watchdog
    /// actually delivered.
    pub hedge_wins: usize,
    /// Duplicate results discarded by first-result-wins suppression (the
    /// losing copy of each hedge race).
    pub duplicates_suppressed: usize,
    /// Replica quarantine entries the health board performed.
    pub quarantines: usize,
    /// Quarantined replicas re-admitted after their backoff probe.
    pub readmissions: usize,
    /// Per-request refusals for everything shed or failed (wire-level, in
    /// shed order).
    pub rejections: Vec<RejectedRequest>,
}

impl ServeOutcome {
    /// Tail-latency digest of the recorded completions.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let latencies: Vec<f64> = self.completions.iter().map(Completion::latency_s).collect();
        LatencySummary::from_latencies(&latencies)
    }

    /// Wall-clock span from experiment start to the last completion.
    pub fn span_s(&self) -> f64 {
        self.completions
            .iter()
            .map(|c| c.completed_s)
            .fold(0.0, f64::max)
    }

    /// Sustained completions per second over the whole run.
    pub fn achieved_qps(&self) -> f64 {
        let span = self.span_s();
        if span <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / span
        }
    }

    /// Completions that met the run's SLO — the answers a caller actually
    /// got in time.
    pub fn within_slo(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| c.latency_s() <= self.slo_s)
            .count()
    }

    /// Completions that arrived after their deadline — served, but too late
    /// for the caller to use.
    pub fn deadline_misses(&self) -> usize {
        self.completions.len() - self.within_slo()
    }

    /// Total requests shed (admission gate + dequeue expiry). Failures are
    /// counted separately ([`failed`](Self::failed)): a shed is flow
    /// control the server chose, a failure is work the server could not do.
    pub fn shed(&self) -> usize {
        self.shed_admission + self.shed_expired
    }

    /// Every request the run gave a terminal state: completed, shed or
    /// failed. Equals the generated request count when the run finished
    /// without aborting — the accounting invariant.
    pub fn accounted(&self) -> usize {
        self.completions.len() + self.shed() + self.failed
    }

    /// Availability under faults: of the requests the server *accepted*
    /// (not shed by flow control), the fraction it actually answered —
    /// `completed / (completed + failed)`. Sheds are deliberate load
    /// shedding, not availability loss, so they stay out of the ratio; a
    /// run with nothing accepted reports `1.0`.
    pub fn availability(&self) -> f64 {
        let accepted = self.completions.len() + self.failed;
        if accepted == 0 {
            1.0
        } else {
            self.completions.len() as f64 / accepted as f64
        }
    }

    /// Requests refused for `reason` (admission sheds, deadline sheds, or
    /// retry-budget failures).
    pub fn reject_count(&self, reason: RejectReason) -> usize {
        match reason {
            RejectReason::QueueFull => self.shed_admission,
            RejectReason::DeadlineExpired => self.shed_expired,
            RejectReason::Failed => self.failed,
        }
    }

    /// Goodput under the run's SLO: completions that met their deadline per
    /// second of span — the metric that matters past saturation, where raw
    /// qps keeps counting answers nobody can use.
    pub fn goodput_qps(&self) -> f64 {
        let span = self.span_s();
        if span <= 0.0 {
            0.0
        } else {
            self.within_slo() as f64 / span
        }
    }

    /// Mean coalesced batch size actually dispatched.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completions.len() as f64 / self.batches as f64
        }
    }
}

/// Pre-generates `count` single-sample inference requests for `config`,
/// deterministically seeded — the request set a serving run replays.
pub fn generate_requests(
    config: &ModelConfig,
    distribution: IndexDistribution,
    seed: u64,
    count: usize,
) -> Vec<InferenceRequest> {
    let mut generator = RequestGenerator::new(config, distribution, seed);
    (0..count)
        .map(|id| {
            let sparse = generator.sample_trace().as_u32_indices();
            let dense = generator.dense_features(1).into_vec();
            InferenceRequest {
                id: id as u64,
                dense,
                sparse,
            }
        })
        .collect()
}

/// Replays `stream` open-loop against a pool of replica shards with the
/// default (fully permissive) [`ServeOptions`] — see [`serve_replay_with`].
///
/// # Errors
///
/// See [`serve_replay_with`].
pub fn serve_replay(
    replicas: Vec<CentaurRuntime>,
    requests: &[InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
) -> Result<ServeOutcome, CentaurError> {
    serve_replay_with(replicas, requests, stream, policy, ServeOptions::default())
}

/// Replays `stream` open-loop against a pool of replica shards: the calling
/// thread becomes the load generator (sleeping until each scheduled arrival
/// and enqueueing the matching request), while one worker thread per replica
/// coalesces queued requests into batches per `policy` and serves them
/// through the accelerator's batched path.
///
/// Latencies are measured against the *scheduled* arrival times, so a
/// generator running late inflates latency instead of thinning the offered
/// load — open-loop semantics, the methodology RecNMP/MicroRec-style
/// at-load studies require.
///
/// `options` adds the overload-protection layer: an SLO stamps each queued
/// request with a deadline, the admission gate bounds queue depth, and
/// dequeue shedding drops dead requests before they reach the accelerator.
/// Everything shed is counted and surfaced as per-request
/// [`RejectedRequest`]s in the outcome — never silently.
///
/// A worker that fails mid-run (datapath error or panic) aborts the whole
/// experiment promptly: the queue closes, the generator stops replaying the
/// remaining schedule, and the failure — a panic's original payload
/// included — is surfaced as soon as the workers unwind, not after the
/// full arrival schedule has played out. Set
/// [`ServeOptions::supervision`] to trade that fail-stop contract for
/// crash-tolerant supervision (see [`serve_replay_faulted`]).
///
/// # Errors
///
/// Returns an error when `requests` and `stream` disagree in length, the
/// replica pool is empty, a request's shape does not match the replicas'
/// model, or the accelerator datapath fails mid-run.
///
/// # Panics
///
/// Re-raises a replica worker's panic with its original payload.
pub fn serve_replay_with(
    replicas: Vec<CentaurRuntime>,
    requests: &[InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
    options: ServeOptions,
) -> Result<ServeOutcome, CentaurError> {
    serve_replay_faulted(
        replicas,
        requests,
        stream,
        policy,
        options,
        &FaultPlan::none(),
    )
}

/// [`serve_replay_with`] plus deterministic fault injection: each replica
/// worker polls its slice of `plan` once per coalesced batch — crash events
/// panic the worker mid-batch, stall events freeze it with its batch held,
/// transient events fail the batch's serve attempt.
///
/// Without [`ServeOptions::supervision`] the injected faults hit the
/// fail-stop path (a crash aborts the run) — the *unprotected* baseline.
/// With supervision, the pool degrades gracefully: in-flight batches are
/// recovered and requeued with their original arrival stamps against the
/// per-request retry budget, crashed replicas restart (fresh shard clone)
/// against the pool-wide restart budget, exhausted retries surface as
/// [`RejectReason::Failed`] rejections, and only unrecoverable states —
/// every replica dead — abort with the first crash's original panic
/// payload.
///
/// # Errors
///
/// See [`serve_replay_with`]; under supervision, datapath errors are
/// retried/failed per request instead of returned.
///
/// # Panics
///
/// Re-raises the first crash's payload when the run is unrecoverable.
pub fn serve_replay_faulted(
    replicas: Vec<CentaurRuntime>,
    requests: &[InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
    options: ServeOptions,
    plan: &FaultPlan,
) -> Result<ServeOutcome, CentaurError> {
    if replicas.is_empty() {
        return Err(CentaurError::NotInitialised("serving replica pool"));
    }
    if requests.len() != stream.len() {
        return Err(centaur_dlrm::DlrmError::BatchMismatch {
            what: "pre-generated requests vs arrival stream",
            left: requests.len(),
            right: stream.len(),
        }
        .into());
    }
    let model_config = replicas[0].model().config().clone();
    for request in requests {
        request.check_shape(&model_config)?;
    }

    let queue = ArrivalQueue::with_config(options.admission());
    // Worst case every request is shed: pre-grow the log so the shedding
    // path stays allocation-free in steady state.
    queue.reserve_shed(requests.len());
    let slo_s = options.slo_s();
    let abort = AtomicBool::new(false);
    let mut outcome = match options.supervision {
        None => serve_unsupervised(
            replicas, requests, stream, policy, &queue, slo_s, &abort, plan,
        )?,
        Some(supervision) => serve_supervised(
            replicas,
            requests,
            stream,
            policy,
            &queue,
            options,
            &abort,
            plan,
            supervision,
        ),
    };
    outcome.failed = queue.failed();
    outcome.retries = queue.retries();
    outcome.shed_admission = queue.shed_admission();
    outcome.shed_expired = queue.shed_expired();
    outcome.hedges = queue.hedges();
    outcome.hedge_wins = queue.hedge_wins();
    outcome.duplicates_suppressed = queue.duplicates_suppressed();
    outcome.rejections = queue
        .take_shed()
        .into_iter()
        .map(|(shed, reason)| RejectedRequest {
            id: requests[shed.index].id,
            reason,
            retries: shed.retries,
        })
        .collect();
    Ok(outcome)
}

/// The open-loop load generator: release each query at its scheduled offset
/// (bursts of overdue queries release back to back). Sleeps are sliced so a
/// failed worker's abort is observed within milliseconds, not at the end of
/// the schedule.
///
/// Several generators can feed one queue (a multi-tenant shared pool):
/// `index_offset` shifts this stream's indices into the merged request set,
/// and the queue closes only when the *last* generator finishes —
/// `generators_left` counts down across them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_arrivals(
    queue: &ArrivalQueue,
    stream: &QueryStream,
    slo_s: f64,
    abort: &AtomicBool,
    start: Instant,
    index_offset: usize,
    generators_left: &AtomicUsize,
) {
    'replay: for (index, arrival_s) in stream.replay() {
        let target = start + Duration::from_secs_f64(arrival_s);
        loop {
            if abort.load(Ordering::Relaxed) {
                break 'replay;
            }
            let now = Instant::now();
            if now >= target {
                break;
            }
            std::thread::sleep((target - now).min(Duration::from_millis(5)));
        }
        let queued = QueuedRequest {
            index: index + index_offset,
            arrival_s,
            deadline_s: arrival_s + slo_s,
            retries: 0,
            hedged: false,
        };
        if !queue.push(queued) && queue.is_closed() {
            // A worker failed and closed the queue mid-run.
            break 'replay;
        }
    }
    if generators_left.fetch_sub(1, Ordering::AcqRel) == 1 {
        queue.close();
    }
}

/// The fail-stop serving path (pre-supervision contract): one guarded
/// worker per replica; any panic or datapath error aborts the run. With a
/// finite SLO, a stall monitor watches every worker's in-flight slot and
/// aborts the replay once any batch has been held past twice the SLO — the
/// fail-stop answer to a stalled replica (a diagnostic naming the replica,
/// not a hang until generator close).
#[allow(clippy::too_many_arguments)]
fn serve_unsupervised(
    mut replicas: Vec<CentaurRuntime>,
    requests: &[InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
    queue: &ArrivalQueue,
    slo_s: f64,
    abort: &AtomicBool,
    plan: &FaultPlan,
) -> Result<ServeOutcome, CentaurError> {
    let mut worker_results: Vec<WorkerResult> = Vec::new();
    let pool_size = replicas.len();
    let slots: Vec<InFlightSlot> = (0..pool_size)
        .map(|_| InFlightSlot::new(policy.max_batch()))
        .collect();
    let stalled: Mutex<Option<(usize, u64)>> = Mutex::new(None);
    // Align the deadline clock with the replay start (setup between queue
    // construction and here must not eat into the schedule).
    queue.restart_clock();
    std::thread::scope(|scope| {
        let start = queue.start();
        let slots = &slots;
        let stalled = &stalled;
        let handles: Vec<_> = replicas
            .drain(..)
            .enumerate()
            .map(|(index, runtime)| {
                let server = SoloServer::new(runtime, requests, policy.max_batch());
                let guard = plan.guard_for(index);
                scope.spawn(move || {
                    guard_worker(queue, abort, move || {
                        worker_loop(queue, server, policy, start, guard, &slots[index], index)
                    })
                })
            })
            .collect();
        if slo_s.is_finite() {
            let deadline_s = (slo_s * 2.0).max(STALL_ABORT_FLOOR_S);
            scope.spawn(move || {
                stall_abort_monitor(queue, slots, deadline_s, start, abort, stalled);
            });
        }

        let generators = AtomicUsize::new(1);
        replay_arrivals(queue, stream, slo_s, abort, start, 0, &generators);

        // The guard already catches panics inside the worker body, so the
        // thread result and the guard result collapse into one layer.
        worker_results = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect();
    });
    let mut outcome = ServeOutcome {
        completions: Vec::with_capacity(requests.len()),
        batches: 0,
        slo_s,
        shed_admission: 0,
        shed_expired: 0,
        failed: 0,
        retries: 0,
        restarts: 0,
        replicas_lost: 0,
        hedges: 0,
        hedge_wins: 0,
        duplicates_suppressed: 0,
        quarantines: 0,
        readmissions: 0,
        rejections: Vec::new(),
    };
    let mut failure: Option<CentaurError> = None;
    for result in worker_results {
        match result {
            // A panicking worker takes precedence: re-raise its payload.
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(Ok((completions, batches))) => {
                outcome.completions.extend(completions);
                outcome.batches += batches;
            }
            Ok(Err(error)) => failure = failure.or(Some(error)),
        }
    }
    // A stall abort outranks the secondary errors it caused downstream
    // (workers unwound by the abort-close), but never a real panic above.
    if let Some((replica, held_ms)) = *stalled.lock().expect("stall diagnostic poisoned") {
        return Err(CentaurError::ReplicaStalled { replica, held_ms });
    }
    if let Some(error) = failure {
        return Err(error);
    }
    Ok(outcome)
}

/// Floor for the fail-stop stall-abort deadline. A saturated host can
/// deschedule a worker for tens of milliseconds mid-batch (observed ~40 ms
/// in the overload sweep at 2× capacity), which is indistinguishable from a
/// short stall by hold time alone — so a tight-SLO replay only aborts when
/// the hold dwarfs any plausible preemption, not at a bare `2 × SLO`.
const STALL_ABORT_FLOOR_S: f64 = 0.25;

/// The fail-stop stall watchdog: polls every worker's in-flight slot and,
/// when any published batch has been held past `deadline_s` (twice the
/// SLO, floored at [`STALL_ABORT_FLOOR_S`]), records the straggler's
/// identity and abort-closes the queue so the generator and the healthy
/// siblings stop promptly. The stalled worker itself is left to wake and
/// observe the abort — the replay is over either way.
fn stall_abort_monitor(
    queue: &ArrivalQueue,
    slots: &[InFlightSlot],
    deadline_s: f64,
    start: Instant,
    abort: &AtomicBool,
    stalled: &Mutex<Option<(usize, u64)>>,
) {
    let tick = Duration::from_secs_f64((deadline_s / 4.0).clamp(100e-6, 50e-3));
    while !queue.is_aborted() && !queue.is_finished() {
        std::thread::sleep(tick);
        let now_s = start.elapsed().as_secs_f64();
        for (replica, slot) in slots.iter().enumerate() {
            let Some((dispatched_s, _)) = slot.probe() else {
                continue;
            };
            let held_s = now_s - dispatched_s;
            if held_s <= deadline_s {
                continue;
            }
            *stalled.lock().expect("stall diagnostic poisoned") =
                Some((replica, (held_s * 1e3) as u64));
            abort.store(true, Ordering::Relaxed);
            queue.close_abort();
            return;
        }
    }
}

/// The supervised serving path: one supervisor per replica recovers crashed
/// workers' in-flight batches, restarts replicas against the pool-wide
/// budget, and lets survivors absorb the load. With
/// [`ServeOptions::hedge`] set, a watchdog monitor additionally hedges
/// overdue batches to healthy siblings and quarantines persistent
/// stragglers. Panics only on the unrecoverable path, re-raising the first
/// crash's preserved payload.
#[allow(clippy::too_many_arguments)]
fn serve_supervised<'a>(
    mut replicas: Vec<CentaurRuntime>,
    requests: &'a [InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
    queue: &ArrivalQueue,
    options: ServeOptions,
    abort: &AtomicBool,
    plan: &FaultPlan,
    supervision: Supervision,
) -> ServeOutcome {
    let slo_s = options.slo_s();
    let pool_size = replicas.len();
    let shared = SupervisorShared::new(pool_size, requests.len());
    let slots: Vec<InFlightSlot> = (0..pool_size)
        .map(|_| InFlightSlot::new(policy.max_batch()))
        .collect();
    // Without hedging the board is disabled — it never strikes, never
    // quarantines — so the hedge-free paths stay byte-for-byte the PR 7
    // behaviour.
    let health = match options.hedge {
        Some(hedge) => HealthBoard::new(
            pool_size,
            hedge.timeout.as_secs_f64(),
            hedge.quarantine_strikes,
            hedge.quarantine_backoff,
        ),
        None => HealthBoard::disabled(pool_size),
    };
    // Restarts boot from a fresh shard clone, never from state a panic
    // unwound through.
    let template = Mutex::new(replicas[0].clone());
    let max_batch = policy.max_batch();
    let respawn = {
        let template = &template;
        move || {
            SoloServer::new(
                template.lock().expect("template poisoned").clone(),
                requests,
                max_batch,
            )
        }
    };
    // The template clone above is proportional to model size (hundreds of
    // milliseconds for 64K-row tables) and ran *after* the queue captured
    // its construction-time clock; restart the deadline clock here so the
    // replay schedule is measured from when the replay actually begins.
    queue.restart_clock();
    std::thread::scope(|scope| {
        let start = queue.start();
        let shared = &shared;
        let slots = &slots;
        let health = &health;
        let respawn: &(dyn Fn() -> SoloServer<'a> + Sync) = &respawn;
        for (index, runtime) in replicas.drain(..).enumerate() {
            let guard = plan.guard_for(index);
            let server = SoloServer::new(runtime, requests, max_batch);
            scope.spawn(move || {
                supervise_replica(
                    queue,
                    server,
                    respawn,
                    policy,
                    start,
                    supervision,
                    guard,
                    &slots[index],
                    health,
                    shared,
                    abort,
                    index,
                );
            });
        }
        if let Some(hedge) = options.hedge {
            scope.spawn(move || {
                watchdog_monitor(
                    queue,
                    slots,
                    health,
                    true,
                    hedge.timeout.as_secs_f64(),
                    max_batch,
                    start,
                );
            });
        }
        let generators = AtomicUsize::new(1);
        replay_arrivals(queue, stream, slo_s, abort, start, 0, &generators);
    });
    if queue.is_aborted() {
        // Unrecoverable: every replica died. Re-raise the first crash.
        let payload = shared
            .payload
            .lock()
            .expect("payload slot poisoned")
            .take()
            .unwrap_or_else(|| Box::new("supervised run aborted without a payload"));
        std::panic::resume_unwind(payload);
    }
    let live = shared.live.load(Ordering::Acquire);
    let completions =
        std::mem::take(&mut *shared.completions.lock().expect("completions poisoned"));
    ServeOutcome {
        completions,
        batches: shared.batches.load(Ordering::Relaxed),
        slo_s,
        shed_admission: 0,
        shed_expired: 0,
        failed: 0,
        retries: 0,
        restarts: shared.restarts.load(Ordering::Relaxed),
        replicas_lost: pool_size - live,
        hedges: 0,
        hedge_wins: 0,
        duplicates_suppressed: 0,
        quarantines: health.quarantines(),
        readmissions: health.readmissions(),
        rejections: Vec::new(),
    }
}

/// Runs one worker body under a panic/failure guard: when the body panics
/// or returns an error, the shared abort flag flips and the queue
/// abort-closes so the generator and sibling workers stop promptly instead
/// of playing out the rest of the schedule (a plain close would leave
/// siblings waiting on the dead worker's in-flight batch forever). The
/// panic payload (or error) is returned unaltered for the harness to
/// surface.
pub(crate) fn guard_worker<F>(queue: &ArrivalQueue, abort: &AtomicBool, body: F) -> WorkerResult
where
    F: FnOnce() -> Result<(Vec<Completion>, usize), CentaurError>,
{
    let result = catch_unwind(AssertUnwindSafe(body));
    if !matches!(result, Ok(Ok(_))) {
        abort.store(true, Ordering::Relaxed);
        queue.close_abort();
    }
    result
}

/// One replica's serving loop: pop a coalesced batch, publish it in-flight
/// (dispatch-stamped so the stall monitor can see it), serve it through the
/// replica's [`BatchServer`] backend, record completions. Runs until the
/// queue is closed and drained. The fault guard injects this replica's
/// scheduled faults with fail-stop consequences: a crash event's panic and
/// a transient event's error both abort the run (the unprotected baseline),
/// and a degraded event persistently stretches every later batch's service.
pub(crate) fn worker_loop<S: BatchServer>(
    queue: &ArrivalQueue,
    mut server: S,
    policy: BatchPolicy,
    start: Instant,
    mut guard: FaultGuard,
    inflight: &InFlightSlot,
    replica: usize,
) -> Result<(Vec<Completion>, usize), CentaurError> {
    let mut completions = Vec::new();
    let mut batches = 0usize;
    // Reused across iterations: the queue's pop buffer and the probability
    // scratch — the steady-state loop allocates nothing once these reach
    // their high-water marks.
    let mut batch: Vec<QueuedRequest> = Vec::with_capacity(policy.max_batch());
    let mut probabilities: Vec<f32> = Vec::with_capacity(policy.max_batch());
    while queue.pop_batch(policy, &mut batch) {
        let dispatched_s = start.elapsed().as_secs_f64();
        inflight.publish(&batch, dispatched_s);
        guard.intercept(replica, dispatched_s)?;
        server.serve_batch(&batch, &mut probabilities)?;
        let served_s = start.elapsed().as_secs_f64();
        guard.apply_degradation(Duration::from_secs_f64(served_s - dispatched_s));
        inflight.clear();
        let completed_s = start.elapsed().as_secs_f64();
        batches += 1;
        for (queued, &probability) in batch.iter().zip(&probabilities) {
            completions.push(Completion {
                id: server.request_id(queued.index),
                arrival_s: queued.arrival_s,
                completed_s,
                probability,
            });
        }
        queue.complete(batch.len());
    }
    Ok((completions, batches))
}

/// One cell of a serving sweep, digested for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Which tenant this row accounts for: `-` for single-model cells, the
    /// tenant's name for multi-tenant mix rows.
    pub tenant: String,
    /// Pool topology the row was measured under: `single` for single-model
    /// cells, `isolated` / `shared` for multi-tenant mix rows.
    pub pool: String,
    /// Offered load in queries per second.
    pub offered_qps: f64,
    /// Traffic-shape label (`poisson`, `bursty`, `onoff`).
    pub traffic: String,
    /// Batching policy label (`fifo`, `dynamic64w1ms`, …).
    pub policy: String,
    /// Replica shards serving the queue.
    pub replicas: usize,
    /// The SLO this cell measured goodput against, in milliseconds
    /// (`None` = no SLO; goodput equals throughput).
    pub slo_ms: Option<f64>,
    /// Requests completed (in time or not).
    pub completed: usize,
    /// Accelerator batches dispatched.
    pub batches: usize,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Sustained completions per second.
    pub achieved_qps: f64,
    /// Completions that met the SLO, per second of span.
    pub goodput_qps: f64,
    /// Requests shed (admission + expiry).
    pub shed: usize,
    /// Requests shed at the admission gate.
    pub shed_admission: usize,
    /// Requests shed at dequeue (deadline already passed).
    pub shed_expired: usize,
    /// Completions that arrived after their deadline.
    pub deadline_misses: usize,
    /// Fault-plan label the cell ran under (`none`, `c1`, `c1s1t2`, …).
    pub faults: String,
    /// Requests permanently failed (retry budget exhausted).
    pub failed: usize,
    /// Availability: completed / (completed + failed).
    pub availability: f64,
    /// Replica restarts the supervisor performed.
    pub restarts: usize,
    /// Re-serve attempts after crashes/datapath errors.
    pub retries: usize,
    /// Replicas dead at the end of the run (beyond the restart budget).
    pub replicas_lost: usize,
    /// Overdue batches' riders hedged to a sibling replica.
    pub hedges: usize,
    /// Hedged requests whose clone answered first.
    pub hedge_wins: usize,
    /// Duplicate results discarded by first-result-wins suppression.
    pub duplicates_suppressed: usize,
    /// Replica quarantine entries the health board performed.
    pub quarantines: usize,
    /// Quarantined replicas re-admitted after their backoff probe.
    pub readmissions: usize,
    /// End-to-end latency digest.
    pub latency: LatencySummary,
}

/// One cell's specification for [`run_serve_cell`]: the offered load, the
/// traffic shape carrying it, how many queries to replay and how to serve
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeCell {
    /// Offered load in queries per second (long-run mean of the shape).
    pub offered_qps: f64,
    /// Traffic shape modulating the arrivals.
    pub shape: TrafficShape,
    /// Number of queries replayed.
    pub queries: usize,
    /// Batching policy serving the queue.
    pub policy: BatchPolicy,
    /// Replica shards serving the queue.
    pub replicas: usize,
    /// SLO/overload-protection options for the run.
    pub options: ServeOptions,
    /// Seeded fault schedule injected into the run (none by default). The
    /// concrete [`FaultPlan`] is materialized by [`run_serve_cell`] once
    /// the replay window is known, unless `CENTAUR_SERVE_FAULT_PLAN`
    /// overrides it.
    pub faults: FaultSpec,
    /// Seed for the request set and the arrival schedule.
    pub seed: u64,
}

impl ServeCell {
    /// The pre-overload-sweep cell: stationary Poisson arrivals, no SLO, no
    /// shedding.
    pub fn poisson(
        offered_qps: f64,
        queries: usize,
        policy: BatchPolicy,
        replicas: usize,
        seed: u64,
    ) -> Self {
        ServeCell {
            offered_qps,
            shape: TrafficShape::Poisson,
            queries,
            policy,
            replicas,
            options: ServeOptions::default(),
            faults: FaultSpec::none(),
            seed,
        }
    }

    /// Same cell under a different traffic shape.
    pub fn with_shape(mut self, shape: TrafficShape) -> Self {
        self.shape = shape;
        self
    }

    /// Same cell under different SLO/overload-protection options.
    pub fn with_options(mut self, options: ServeOptions) -> Self {
        self.options = options;
        self
    }

    /// Same cell under a seeded fault schedule.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// Runs one serving cell end to end: pre-generates the request set and the
/// shaped arrival schedule, boots the cell's replica shards of `model`
/// (one registration, cloned), replays the stream and digests the result.
///
/// # Errors
///
/// Propagates registration and serving errors; fails when zero queries are
/// requested.
pub fn run_serve_cell(
    model: &DlrmModel,
    accel_config: CentaurConfig,
    distribution: IndexDistribution,
    cell: ServeCell,
) -> Result<ServeReport, CentaurError> {
    let config = model.config().clone();
    let requests = generate_requests(&config, distribution, cell.seed, cell.queries);
    let stream = QueryStream::generate(
        cell.shape.process(cell.offered_qps),
        cell.queries,
        cell.seed ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model.clone(), accel_config, cell.replicas)?;
    // A faulted cell materializes its seeded schedule over the expected
    // replay window (mean arrival span at the offered load) unless the
    // CENTAUR_SERVE_FAULT_PLAN knob pins an explicit plan.
    let plan = if cell.faults.is_none() {
        FaultPlan::none()
    } else {
        let window_s = cell.queries as f64 / cell.offered_qps.max(1e-9);
        crate::env::serve_fault_plan()
            .unwrap_or_else(|| FaultPlan::seeded(cell.faults, cell.replicas, window_s))
    };
    let outcome = serve_replay_faulted(pool, &requests, &stream, cell.policy, cell.options, &plan)?;
    // An overload cell may legitimately shed *everything* (deep overload,
    // every deadline blown before the workers catch up): that is a valid
    // measurement — zero completions, zero goodput, an all-zero latency
    // digest — not an error.
    let latency = outcome.latency_summary().unwrap_or_default();
    Ok(ServeReport {
        tenant: "-".to_string(),
        pool: "single".to_string(),
        offered_qps: cell.offered_qps,
        traffic: cell.shape.label().to_string(),
        policy: cell.policy.label(),
        replicas: cell.replicas,
        slo_ms: cell.options.slo.map(|slo| slo.as_secs_f64() * 1e3),
        completed: outcome.completions.len(),
        batches: outcome.batches,
        mean_batch: outcome.mean_batch(),
        achieved_qps: outcome.achieved_qps(),
        goodput_qps: outcome.goodput_qps(),
        shed: outcome.shed(),
        shed_admission: outcome.shed_admission,
        shed_expired: outcome.shed_expired,
        deadline_misses: outcome.deadline_misses(),
        faults: plan.label(),
        failed: outcome.failed,
        availability: outcome.availability(),
        restarts: outcome.restarts,
        retries: outcome.retries,
        replicas_lost: outcome.replicas_lost,
        hedges: outcome.hedges,
        hedge_wins: outcome.hedge_wins,
        duplicates_suppressed: outcome.duplicates_suppressed,
        quarantines: outcome.quarantines,
        readmissions: outcome.readmissions,
        latency,
    })
}

/// Measures the single-sample service time of `model` on one runtime shard
/// and returns the implied batch-1 FIFO saturation capacity in queries per
/// second — the anchor serving sweeps use to place offered loads below and
/// above the un-batched knee.
///
/// # Errors
///
/// Propagates registration/datapath errors.
pub fn calibrate_fifo_capacity_qps(
    model: &DlrmModel,
    accel_config: CentaurConfig,
    distribution: IndexDistribution,
    seed: u64,
) -> Result<f64, CentaurError> {
    let config = model.config().clone();
    // Enough distinct requests that rows are not warm in cache every probe.
    let requests = generate_requests(&config, distribution, seed, 256);
    let mut runtime = CentaurRuntime::new(model.clone(), accel_config)?;
    let mut stage = ReplicaStage::new(&config, 1);
    // Warm-up: grow every staging buffer.
    stage.run_batch(&mut runtime, &[&requests[0]])?;
    let started = Instant::now();
    let mut served = 0usize;
    while started.elapsed() < Duration::from_millis(50) {
        for request in &requests {
            stage.run_batch(&mut runtime, &[request])?;
        }
        served += requests.len();
    }
    let service_s = started.elapsed().as_secs_f64() / served.max(1) as f64;
    Ok(1.0 / service_s.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::{PaperModel, RejectReason};
    use centaur_workload::ArrivalProcess;

    fn small_model() -> DlrmModel {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        DlrmModel::random(&config, 5).unwrap()
    }

    #[test]
    fn serve_replay_completes_every_query_and_matches_reference() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 11, 64);
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 20_000.0 }, 64, 3);
        let pool = CentaurRuntime::replica_pool(model.clone(), CentaurConfig::harpv2(), 2).unwrap();
        let outcome = serve_replay(
            pool,
            &requests,
            &stream,
            BatchPolicy::Dynamic {
                max_batch: 8,
                max_wait: Duration::from_micros(200),
            },
        )
        .unwrap();

        assert_eq!(outcome.completions.len(), 64, "every query is served");
        assert!(outcome.batches >= 8, "64 queries cap at batch 8");
        assert!(outcome.mean_batch() >= 1.0);
        assert_eq!(outcome.shed(), 0, "permissive options shed nothing");
        assert!(outcome.rejections.is_empty());
        assert_eq!(
            outcome.goodput_qps(),
            outcome.achieved_qps(),
            "with no SLO, goodput equals throughput"
        );
        // Every id served exactly once.
        let mut ids: Vec<u64> = outcome.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<u64>>());
        // Latency is never negative and the summary digests it.
        assert!(outcome.completions.iter().all(|c| c.latency_s() >= 0.0));
        let summary = outcome.latency_summary().unwrap();
        assert!(summary.p99_s >= summary.p50_s);

        // Served probabilities match a fresh runtime run per request, and
        // the wire-level response echoes the request id.
        let mut reference = CentaurRuntime::harpv2(model).unwrap();
        let mut out = [0.0f32];
        for completion in &outcome.completions {
            let response = completion.response();
            assert_eq!(response.id, completion.id);
            assert_eq!(response.probability, completion.probability);
            let request = &requests[completion.id as usize];
            reference
                .infer_batch_rows_into(
                    &request.dense,
                    request.dense.len(),
                    std::slice::from_ref(&request.sparse),
                    &mut out,
                )
                .unwrap();
            assert_eq!(completion.probability, out[0], "id {}", completion.id);
        }
    }

    #[test]
    fn serve_replay_rejects_mismatched_inputs() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 1, 4);
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 100.0 }, 5, 1);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 1).unwrap();
        assert!(serve_replay(pool, &requests, &stream, BatchPolicy::Fifo).is_err());
        assert!(serve_replay(Vec::new(), &requests, &stream, BatchPolicy::Fifo).is_err());
    }

    #[test]
    fn admission_gate_sheds_are_counted_and_surfaced() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 7, 256);
        // A burst far beyond one replica's service rate with a depth-1
        // queue: most arrivals shed at the door, every shed is surfaced.
        let stream = QueryStream::generate(
            ArrivalProcess::Poisson {
                rate_qps: 500_000.0,
            },
            256,
            2,
        );
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 1).unwrap();
        let options = ServeOptions {
            slo: Some(Duration::from_millis(250)),
            admission_depth: Some(1),
            shed_expired: true,
            ..ServeOptions::default()
        };
        let outcome =
            serve_replay_with(pool, &requests, &stream, BatchPolicy::Fifo, options).unwrap();
        assert_eq!(
            outcome.completions.len() + outcome.shed(),
            256,
            "every request either completes or is counted shed"
        );
        assert!(outcome.shed_admission > 0, "depth-1 gate must shed a burst");
        assert_eq!(outcome.rejections.len(), outcome.shed());
        assert!(outcome
            .rejections
            .iter()
            .any(|r| r.reason == RejectReason::QueueFull));
        // Rejected ids refer to real requests and never also completed.
        let completed: std::collections::HashSet<u64> =
            outcome.completions.iter().map(|c| c.id).collect();
        for rejection in &outcome.rejections {
            assert!((rejection.id as usize) < requests.len());
            assert!(!completed.contains(&rejection.id));
        }
    }

    #[test]
    fn worker_errors_abort_the_run_promptly() {
        let model = small_model();
        let config = model.config().clone();
        let mut requests = generate_requests(&config, IndexDistribution::Uniform, 3, 400);
        // Corrupt an early request so the datapath fails on it; the rest of
        // the 20 s arrival schedule must NOT play out after the failure.
        requests[0].sparse[0][0] = u32::MAX;
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 20.0 }, 400, 2);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        let started = Instant::now();
        let result = serve_replay(pool, &requests, &stream, BatchPolicy::Fifo);
        let elapsed = started.elapsed();
        assert!(result.is_err(), "corrupted request must fail the run");
        assert!(
            elapsed < Duration::from_secs(5),
            "failure surfaced in {elapsed:?}, not after the 20 s schedule"
        );
    }

    #[test]
    fn guarded_worker_preserves_the_panic_payload_and_aborts() {
        let queue = ArrivalQueue::new();
        let abort = AtomicBool::new(false);
        let result = guard_worker(&queue, &abort, || panic!("replica blew up"));
        let payload = result.expect_err("panic must be caught, not swallowed");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("replica blew up"),
            "payload survives for resume_unwind"
        );
        assert!(abort.load(Ordering::Relaxed), "abort flag flips");
        assert!(queue.is_closed(), "queue closes so the generator stops");
        assert!(
            queue.is_aborted(),
            "abort-close so siblings are not left waiting on the dead \
             worker's in-flight batch"
        );
    }

    #[test]
    fn guarded_worker_flags_errors_too() {
        let queue = ArrivalQueue::new();
        let abort = AtomicBool::new(false);
        let result = guard_worker(&queue, &abort, || {
            Err(CentaurError::NotInitialised("synthetic failure"))
        });
        assert!(matches!(result, Ok(Err(_))));
        assert!(abort.load(Ordering::Relaxed));
        assert!(queue.is_closed());
    }

    #[test]
    fn run_serve_cell_produces_a_digest() {
        let model = small_model();
        let report = run_serve_cell(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            ServeCell::poisson(5_000.0, 32, BatchPolicy::Fifo, 1, 9),
        )
        .unwrap();
        assert_eq!(report.completed, 32);
        assert_eq!(report.policy, "fifo");
        assert_eq!(report.traffic, "poisson");
        assert_eq!(report.replicas, 1);
        assert_eq!(report.slo_ms, None);
        assert_eq!(report.shed, 0);
        assert_eq!(report.deadline_misses, 0);
        assert!(report.achieved_qps > 0.0);
        assert!(
            (report.goodput_qps - report.achieved_qps).abs() < 1e-9,
            "no SLO: goodput equals throughput"
        );
        assert!(report.latency.p50_s > 0.0);
        assert!((report.mean_batch - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn run_serve_cell_reports_goodput_under_a_shaped_overload() {
        let model = small_model();
        let cell = ServeCell::poisson(
            400_000.0,
            192,
            BatchPolicy::deadline_wave(Duration::from_micros(500)),
            1,
            13,
        )
        .with_shape(TrafficShape::Bursty)
        .with_options(ServeOptions::overload_protected(
            Duration::from_millis(2),
            64,
        ));
        let report = run_serve_cell(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            cell,
        )
        .unwrap();
        assert_eq!(report.traffic, "bursty");
        assert_eq!(report.slo_ms, Some(2.0));
        assert_eq!(report.completed + report.shed, 192, "full accounting");
        assert_eq!(report.shed, report.shed_admission + report.shed_expired);
        assert!(
            report.goodput_qps <= report.achieved_qps + 1e-9,
            "goodput can never exceed throughput"
        );
    }

    #[test]
    fn supervised_fault_free_run_matches_the_unsupervised_contract() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 17, 96);
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 30_000.0 }, 96, 5);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        let options = ServeOptions::default().supervised(Supervision::default());
        let outcome = serve_replay_with(
            pool,
            &requests,
            &stream,
            BatchPolicy::dynamic_wave(),
            options,
        )
        .unwrap();
        assert_eq!(outcome.completions.len(), 96, "every query served");
        assert_eq!(outcome.accounted(), 96);
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.retries, 0);
        assert_eq!(outcome.restarts, 0);
        assert_eq!(outcome.replicas_lost, 0);
        assert_eq!(outcome.availability(), 1.0);
        assert_eq!(outcome.reject_count(RejectReason::Failed), 0);
        let mut ids: Vec<u64> = outcome.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..96).collect::<Vec<u64>>(), "each served once");
    }

    #[test]
    fn supervised_run_retries_poison_requests_and_fails_them_counted() {
        let model = small_model();
        let config = model.config().clone();
        let mut requests = generate_requests(&config, IndexDistribution::Uniform, 23, 64);
        // One poison request: its datapath error must burn only its own
        // retry budget — co-riders complete, the run survives.
        requests[10].sparse[0][0] = u32::MAX;
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 30_000.0 }, 64, 7);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        let options = ServeOptions::default().supervised(Supervision::new(1, 2));
        let outcome = serve_replay_with(
            pool,
            &requests,
            &stream,
            BatchPolicy::dynamic_wave(),
            options,
        )
        .unwrap();
        assert_eq!(outcome.completions.len(), 63, "only the poison fails");
        assert_eq!(outcome.failed, 1);
        assert_eq!(outcome.accounted(), 64, "accounting invariant holds");
        assert!(
            outcome.retries >= 1,
            "the poison was retried before failing"
        );
        assert_eq!(outcome.restarts, 0, "datapath errors are not crashes");
        assert!(outcome.availability() < 1.0 && outcome.availability() > 0.98);
        let rejection = outcome
            .rejections
            .iter()
            .find(|r| r.reason == RejectReason::Failed)
            .expect("the failed request is surfaced");
        assert_eq!(rejection.id, requests[10].id);
        assert_eq!(rejection.retries, 1, "exhausted budget rides the refusal");
    }

    #[test]
    fn run_serve_cell_with_faults_reports_availability_columns() {
        let model = small_model();
        let cell = ServeCell::poisson(20_000.0, 128, BatchPolicy::dynamic_wave(), 2, 19)
            .with_options(ServeOptions::default().supervised(Supervision::default()))
            .with_faults(FaultSpec::none().with_transients(2).with_seed(3));
        let report = run_serve_cell(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            cell,
        )
        .unwrap();
        assert_eq!(report.faults, "t2");
        assert_eq!(
            report.completed + report.shed + report.failed,
            128,
            "accounting invariant in the report"
        );
        assert!(report.retries >= 1, "transients forced re-serves");
        assert_eq!(report.failed, 0, "default retry budget absorbs transients");
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.replicas_lost, 0);
    }

    #[test]
    fn derived_hedge_timeouts_follow_the_slo_and_service_estimate() {
        // Env knobs are unset in the test suite, so derivation anchors on
        // the arguments alone.
        assert_eq!(
            HedgeConfig::derived(None, BatchPolicy::Fifo).timeout,
            HedgeConfig::FALLBACK_TIMEOUT,
            "no anchors: the fallback"
        );
        assert_eq!(
            HedgeConfig::derived(Some(Duration::from_millis(10)), BatchPolicy::Fifo).timeout,
            Duration::from_millis(5),
            "SLO only: half the SLO"
        );
        let deadline = BatchPolicy::deadline_wave(Duration::from_micros(400));
        assert_eq!(
            HedgeConfig::derived(Some(Duration::from_millis(10)), deadline).timeout,
            Duration::from_micros(800),
            "estimate and SLO: twice the estimate, under the SLO cap"
        );
        assert_eq!(
            HedgeConfig::derived(Some(Duration::from_micros(100)), deadline).timeout,
            HedgeConfig::MIN_TIMEOUT,
            "the floor holds against a too-tight SLO"
        );
        let config = HedgeConfig::new(Duration::from_millis(2))
            .with_quarantine(5, Duration::from_millis(40));
        assert_eq!(config.quarantine_strikes, 5);
        assert_eq!(config.quarantine_backoff, Duration::from_millis(40));
    }

    #[test]
    fn hedged_run_rescues_a_stalled_batch_and_suppresses_the_duplicate() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 29, 256);
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 4_000.0 }, 256, 3);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        // Replica 0 stalls 200 ms mid-replay with a batch in flight; the
        // 2 ms watchdog hedges the riders to replica 1.
        let plan = FaultPlan::parse("stall:0:30:200").unwrap();
        let options = ServeOptions::default()
            .supervised(Supervision::default())
            .hedged(HedgeConfig::new(Duration::from_millis(2)));
        let outcome = serve_replay_faulted(
            pool,
            &requests,
            &stream,
            BatchPolicy::dynamic_wave(),
            options,
            &plan,
        )
        .unwrap();
        assert_eq!(
            outcome.accounted(),
            256,
            "hedging must not double-count or lose a request"
        );
        assert_eq!(
            outcome.completions.len(),
            256,
            "nothing shed, nothing failed"
        );
        assert!(outcome.hedges >= 1, "the stalled batch was hedged");
        assert!(
            outcome.hedge_wins >= 1,
            "a healthy sibling answered first for at least one rider"
        );
        assert_eq!(
            outcome.duplicates_suppressed, outcome.hedges,
            "every hedge race resolves to exactly one kept result and one \
             suppressed copy"
        );
        let mut ids: Vec<u64> = outcome.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..256).collect::<Vec<u64>>(), "each served once");
        assert_eq!(outcome.restarts, 0, "a stall is not a crash");
    }

    #[test]
    fn unsupervised_stall_aborts_with_a_diagnostic_naming_the_replica() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 31, 400);
        // A 20 s schedule; the stall must abort the replay long before it
        // plays out.
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 20.0 }, 400, 4);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
        let plan = FaultPlan::parse("stall:1:20:300").unwrap();
        let options = ServeOptions::with_slo(Duration::from_millis(10));
        let started = Instant::now();
        let result =
            serve_replay_faulted(pool, &requests, &stream, BatchPolicy::Fifo, options, &plan);
        let elapsed = started.elapsed();
        match result {
            Err(CentaurError::ReplicaStalled { replica, held_ms }) => {
                assert_eq!(replica, 1, "the diagnostic names the straggler");
                assert!(held_ms >= 20, "held past twice the 10 ms SLO: {held_ms} ms");
            }
            other => panic!("expected a stall abort, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "stall abort surfaced in {elapsed:?}, not after the 20 s schedule"
        );
    }

    #[test]
    fn calibration_reports_a_plausible_capacity() {
        let model = small_model();
        let qps = calibrate_fifo_capacity_qps(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            2,
        )
        .unwrap();
        // A small DLRM(1) on any host serves between 1k and 10M qps.
        assert!(qps > 1_000.0 && qps < 10_000_000.0, "capacity {qps}");
    }
}
