//! The serving harness: an open-loop load generator replays a seeded
//! [`QueryStream`] against a pool of replica workers behind the shared
//! [`ArrivalQueue`], and the recorded per-request completions are digested
//! into tail-latency reports.

use crate::policy::BatchPolicy;
use crate::queue::{ArrivalQueue, QueuedRequest};
use crate::stage::ReplicaStage;
use centaur::{CentaurConfig, CentaurError, CentaurRuntime};
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::{DlrmModel, InferenceRequest, InferenceResponse};
use centaur_workload::{
    ArrivalProcess, IndexDistribution, LatencySummary, QueryStream, RequestGenerator,
};
use std::time::{Duration, Instant};

/// One served request's record: scheduled arrival, completion time and the
/// served probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request id (the pre-generated request's index).
    pub id: u64,
    /// Scheduled arrival offset, seconds from experiment start.
    pub arrival_s: f64,
    /// Completion offset, seconds from experiment start.
    pub completed_s: f64,
    /// Served click probability.
    pub probability: f32,
}

impl Completion {
    /// End-to-end latency (queueing + batching + inference), in seconds.
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }

    /// The wire-level answer to the request — what a deployment would send
    /// back to the caller (the timing fields stay server-side).
    pub fn response(&self) -> InferenceResponse {
        InferenceResponse {
            id: self.id,
            probability: self.probability,
        }
    }
}

/// Everything recorded by one serving run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-request completion records (unordered across workers).
    pub completions: Vec<Completion>,
    /// Number of accelerator batches dispatched.
    pub batches: usize,
}

impl ServeOutcome {
    /// Tail-latency digest of the recorded completions.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let latencies: Vec<f64> = self.completions.iter().map(Completion::latency_s).collect();
        LatencySummary::from_latencies(&latencies)
    }

    /// Wall-clock span from experiment start to the last completion.
    pub fn span_s(&self) -> f64 {
        self.completions
            .iter()
            .map(|c| c.completed_s)
            .fold(0.0, f64::max)
    }

    /// Sustained completions per second over the whole run.
    pub fn achieved_qps(&self) -> f64 {
        let span = self.span_s();
        if span <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / span
        }
    }

    /// Mean coalesced batch size actually dispatched.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completions.len() as f64 / self.batches as f64
        }
    }
}

/// Pre-generates `count` single-sample inference requests for `config`,
/// deterministically seeded — the request set a serving run replays.
pub fn generate_requests(
    config: &ModelConfig,
    distribution: IndexDistribution,
    seed: u64,
    count: usize,
) -> Vec<InferenceRequest> {
    let mut generator = RequestGenerator::new(config, distribution, seed);
    (0..count)
        .map(|id| {
            let sparse = generator.sample_trace().as_u32_indices();
            let dense = generator.dense_features(1).into_vec();
            InferenceRequest {
                id: id as u64,
                dense,
                sparse,
            }
        })
        .collect()
}

/// Replays `stream` open-loop against a pool of replica shards: the calling
/// thread becomes the load generator (sleeping until each scheduled arrival
/// and enqueueing the matching request), while one worker thread per replica
/// coalesces queued requests into batches per `policy` and serves them
/// through the accelerator's batched path.
///
/// Latencies are measured against the *scheduled* arrival times, so a
/// generator running late inflates latency instead of thinning the offered
/// load — open-loop semantics, the methodology RecNMP/MicroRec-style
/// at-load studies require.
///
/// # Errors
///
/// Returns an error when `requests` and `stream` disagree in length, the
/// replica pool is empty, a request's shape does not match the replicas'
/// model, or the accelerator datapath fails mid-run.
pub fn serve_replay(
    mut replicas: Vec<CentaurRuntime>,
    requests: &[InferenceRequest],
    stream: &QueryStream,
    policy: BatchPolicy,
) -> Result<ServeOutcome, CentaurError> {
    if replicas.is_empty() {
        return Err(CentaurError::NotInitialised("serving replica pool"));
    }
    if requests.len() != stream.len() {
        return Err(centaur_dlrm::DlrmError::BatchMismatch {
            what: "pre-generated requests vs arrival stream",
            left: requests.len(),
            right: stream.len(),
        }
        .into());
    }
    let model_config = replicas[0].model().config().clone();
    for request in requests {
        request.check_shape(&model_config)?;
    }

    let queue = ArrivalQueue::new();
    let mut outcome = ServeOutcome {
        completions: Vec::with_capacity(requests.len()),
        batches: 0,
    };
    let mut worker_results: Vec<Result<(Vec<Completion>, usize), CentaurError>> = Vec::new();
    std::thread::scope(|scope| {
        let start = Instant::now();
        let queue = &queue;
        let handles: Vec<_> = replicas
            .iter_mut()
            .map(|runtime| {
                let stage = ReplicaStage::new(&model_config, policy.max_batch());
                scope.spawn(move || worker_loop(queue, requests, runtime, stage, policy, start))
            })
            .collect();

        // Open-loop replay on this thread: release each query at its
        // scheduled offset (bursts of overdue queries release back to back).
        for (index, arrival_s) in stream.replay() {
            let target = start + Duration::from_secs_f64(arrival_s);
            loop {
                let now = Instant::now();
                if now >= target {
                    break;
                }
                std::thread::sleep(target - now);
            }
            queue.push(QueuedRequest { index, arrival_s });
        }
        queue.close();

        worker_results = handles
            .into_iter()
            .map(|h| h.join().expect("serving worker panicked"))
            .collect();
    });
    for result in worker_results {
        let (completions, batches) = result?;
        outcome.completions.extend(completions);
        outcome.batches += batches;
    }
    Ok(outcome)
}

/// One replica's serving loop: pop a coalesced batch, stage it, run the
/// batched accelerator path, record completions. Runs until the queue is
/// closed and drained.
fn worker_loop(
    queue: &ArrivalQueue,
    requests: &[InferenceRequest],
    runtime: &mut CentaurRuntime,
    mut stage: ReplicaStage,
    policy: BatchPolicy,
    start: Instant,
) -> Result<(Vec<Completion>, usize), CentaurError> {
    let mut completions = Vec::new();
    let mut batches = 0usize;
    // Reused across iterations: the queue's pop buffer and the staged
    // request refs — the steady-state loop allocates nothing once these
    // reach their high-water marks.
    let mut batch: Vec<QueuedRequest> = Vec::with_capacity(policy.max_batch());
    let mut staged: Vec<&InferenceRequest> = Vec::with_capacity(policy.max_batch());
    while queue.pop_batch(policy, &mut batch) {
        staged.clear();
        staged.extend(batch.iter().map(|q| &requests[q.index]));
        let probabilities = stage.run_batch(runtime, &staged)?;
        let completed_s = start.elapsed().as_secs_f64();
        batches += 1;
        for (queued, &probability) in batch.iter().zip(probabilities) {
            completions.push(Completion {
                id: requests[queued.index].id,
                arrival_s: queued.arrival_s,
                completed_s,
                probability,
            });
        }
    }
    Ok((completions, batches))
}

/// One cell of a serving sweep, digested for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Offered load in queries per second.
    pub offered_qps: f64,
    /// Batching policy label (`fifo`, `dynamic64`, …).
    pub policy: String,
    /// Replica shards serving the queue.
    pub replicas: usize,
    /// Requests completed.
    pub completed: usize,
    /// Accelerator batches dispatched.
    pub batches: usize,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Sustained completions per second.
    pub achieved_qps: f64,
    /// End-to-end latency digest.
    pub latency: LatencySummary,
}

/// One cell's specification for [`run_serve_cell`]: the offered load, how
/// many queries to replay and how to serve them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeCell {
    /// Offered load in queries per second (Poisson arrivals).
    pub offered_qps: f64,
    /// Number of queries replayed.
    pub queries: usize,
    /// Batching policy serving the queue.
    pub policy: BatchPolicy,
    /// Replica shards serving the queue.
    pub replicas: usize,
    /// Seed for the request set and the arrival schedule.
    pub seed: u64,
}

/// Runs one serving cell end to end: pre-generates the request set and the
/// Poisson arrival schedule, boots the cell's replica shards of `model`
/// (one registration, cloned), replays the stream and digests the result.
///
/// # Errors
///
/// Propagates registration and serving errors; fails when zero queries are
/// requested.
pub fn run_serve_cell(
    model: &DlrmModel,
    accel_config: CentaurConfig,
    distribution: IndexDistribution,
    cell: ServeCell,
) -> Result<ServeReport, CentaurError> {
    let config = model.config().clone();
    let requests = generate_requests(&config, distribution, cell.seed, cell.queries);
    let stream = QueryStream::generate(
        ArrivalProcess::Poisson {
            rate_qps: cell.offered_qps,
        },
        cell.queries,
        cell.seed ^ 0xA11,
    );
    let pool = CentaurRuntime::replica_pool(model.clone(), accel_config, cell.replicas)?;
    let outcome = serve_replay(pool, &requests, &stream, cell.policy)?;
    let latency = outcome
        .latency_summary()
        .ok_or(CentaurError::NotInitialised("no completions recorded"))?;
    Ok(ServeReport {
        offered_qps: cell.offered_qps,
        policy: cell.policy.label(),
        replicas: cell.replicas,
        completed: outcome.completions.len(),
        batches: outcome.batches,
        mean_batch: outcome.mean_batch(),
        achieved_qps: outcome.achieved_qps(),
        latency,
    })
}

/// Measures the single-sample service time of `model` on one runtime shard
/// and returns the implied batch-1 FIFO saturation capacity in queries per
/// second — the anchor serving sweeps use to place offered loads below and
/// above the un-batched knee.
///
/// # Errors
///
/// Propagates registration/datapath errors.
pub fn calibrate_fifo_capacity_qps(
    model: &DlrmModel,
    accel_config: CentaurConfig,
    distribution: IndexDistribution,
    seed: u64,
) -> Result<f64, CentaurError> {
    let config = model.config().clone();
    // Enough distinct requests that rows are not warm in cache every probe.
    let requests = generate_requests(&config, distribution, seed, 256);
    let mut runtime = CentaurRuntime::new(model.clone(), accel_config)?;
    let mut stage = ReplicaStage::new(&config, 1);
    // Warm-up: grow every staging buffer.
    stage.run_batch(&mut runtime, &[&requests[0]])?;
    let started = Instant::now();
    let mut served = 0usize;
    while started.elapsed() < Duration::from_millis(50) {
        for request in &requests {
            stage.run_batch(&mut runtime, &[request])?;
        }
        served += requests.len();
    }
    let service_s = started.elapsed().as_secs_f64() / served.max(1) as f64;
    Ok(1.0 / service_s.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::PaperModel;

    fn small_model() -> DlrmModel {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(512);
        DlrmModel::random(&config, 5).unwrap()
    }

    #[test]
    fn serve_replay_completes_every_query_and_matches_reference() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 11, 64);
        let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 20_000.0 }, 64, 3);
        let pool = CentaurRuntime::replica_pool(model.clone(), CentaurConfig::harpv2(), 2).unwrap();
        let outcome = serve_replay(
            pool,
            &requests,
            &stream,
            BatchPolicy::Dynamic {
                max_batch: 8,
                max_wait: Duration::from_micros(200),
            },
        )
        .unwrap();

        assert_eq!(outcome.completions.len(), 64, "every query is served");
        assert!(outcome.batches >= 8, "64 queries cap at batch 8");
        assert!(outcome.mean_batch() >= 1.0);
        // Every id served exactly once.
        let mut ids: Vec<u64> = outcome.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<u64>>());
        // Latency is never negative and the summary digests it.
        assert!(outcome.completions.iter().all(|c| c.latency_s() >= 0.0));
        let summary = outcome.latency_summary().unwrap();
        assert!(summary.p99_s >= summary.p50_s);

        // Served probabilities match a fresh runtime run per request, and
        // the wire-level response echoes the request id.
        let mut reference = CentaurRuntime::harpv2(model).unwrap();
        let mut out = [0.0f32];
        for completion in &outcome.completions {
            let response = completion.response();
            assert_eq!(response.id, completion.id);
            assert_eq!(response.probability, completion.probability);
            let request = &requests[completion.id as usize];
            reference
                .infer_batch_rows_into(
                    &request.dense,
                    request.dense.len(),
                    std::slice::from_ref(&request.sparse),
                    &mut out,
                )
                .unwrap();
            assert_eq!(completion.probability, out[0], "id {}", completion.id);
        }
    }

    #[test]
    fn serve_replay_rejects_mismatched_inputs() {
        let model = small_model();
        let config = model.config().clone();
        let requests = generate_requests(&config, IndexDistribution::Uniform, 1, 4);
        let stream = QueryStream::generate(ArrivalProcess::Uniform { rate_qps: 100.0 }, 5, 1);
        let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 1).unwrap();
        assert!(serve_replay(pool, &requests, &stream, BatchPolicy::Fifo).is_err());
        assert!(serve_replay(Vec::new(), &requests, &stream, BatchPolicy::Fifo).is_err());
    }

    #[test]
    fn run_serve_cell_produces_a_digest() {
        let model = small_model();
        let report = run_serve_cell(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            ServeCell {
                offered_qps: 5_000.0,
                queries: 32,
                policy: BatchPolicy::Fifo,
                replicas: 1,
                seed: 9,
            },
        )
        .unwrap();
        assert_eq!(report.completed, 32);
        assert_eq!(report.policy, "fifo");
        assert_eq!(report.replicas, 1);
        assert!(report.achieved_qps > 0.0);
        assert!(report.latency.p50_s > 0.0);
        assert!((report.mean_batch - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn calibration_reports_a_plausible_capacity() {
        let model = small_model();
        let qps = calibrate_fifo_capacity_qps(
            &model,
            CentaurConfig::harpv2(),
            IndexDistribution::Uniform,
            2,
        )
        .unwrap();
        // A small DLRM(1) on any host serves between 1k and 10M qps.
        assert!(qps > 1_000.0 && qps < 10_000_000.0, "capacity {qps}");
    }
}
