//! # centaur-serve
//!
//! The serving layer of the Centaur reproduction: what turns the
//! closed-loop batch kernels of the lower crates into an **at-load serving
//! system** — the scenario the paper motivates (user-facing recommendation
//! queries under firm tail-latency targets) and that RecNMP/MicroRec-style
//! evaluations report as p95/p99 versus offered QPS.
//!
//! The moving parts:
//!
//! * [`BatchPolicy`] — batch-1 FIFO (the un-batched baseline), dynamic
//!   batching (coalesce until `max_batch` fills or `max_wait` expires), or
//!   deadline-aware dynamic batching (additionally dispatch partial when
//!   the oldest held request's SLO slack runs out);
//! * [`ArrivalQueue`] — the shared arrival queue between the open-loop load
//!   generator and the replica workers, with an optional admission gate
//!   (bounded depth, shed at enqueue) and dequeue shedding of already-dead
//!   requests, both configured through [`AdmissionConfig`] /
//!   [`ServeOptions`] and always counted — never silent;
//! * [`ReplicaStage`] — per-replica staging buffers that copy a coalesced
//!   batch into batch-major form and run the accelerator's batched path,
//!   zero heap allocations in steady state;
//! * [`Supervision`] / [`FaultPlan`] — crash-tolerant serving: a
//!   supervised replica pool recovers a crashed worker's in-flight batch
//!   (requeued with its original arrival stamps against a bounded retry
//!   budget), restarts the replica up to a pool-wide budget, and lets
//!   survivors absorb the load; deterministic seeded fault plans inject
//!   crash/stall/transient events so availability under faults is
//!   measurable and reproducible;
//! * [`serve_replay`] — replays a seeded
//!   [`QueryStream`](centaur_workload::QueryStream) against a pool of
//!   [`CentaurRuntime`](centaur::CentaurRuntime) replica shards (one worker
//!   thread each), recording per-request end-to-end latency against
//!   *scheduled* arrivals (open-loop);
//! * [`run_serve_cell`] / [`calibrate_fifo_capacity_qps`] — one sweep cell
//!   (offered QPS × traffic shape × policy × replicas → [`ServeReport`],
//!   now with goodput-under-SLO and shed counts) and the saturation-anchor
//!   measurement the sweeps place their loads around.
//!
//! ```no_run
//! use centaur::{CentaurConfig, CentaurRuntime};
//! use centaur_dlrm::{DlrmModel, PaperModel};
//! use centaur_serve::{generate_requests, serve_replay, BatchPolicy};
//! use centaur_workload::{ArrivalProcess, IndexDistribution, QueryStream};
//!
//! let config = PaperModel::Dlrm1.config().with_rows_per_table(4096);
//! let model = DlrmModel::random(&config, 1).unwrap();
//! let requests = generate_requests(&config, IndexDistribution::Uniform, 1, 1000);
//! let stream = QueryStream::generate(ArrivalProcess::Poisson { rate_qps: 50_000.0 }, 1000, 2);
//! let pool = CentaurRuntime::replica_pool(model, CentaurConfig::harpv2(), 2).unwrap();
//! let outcome = serve_replay(pool, &requests, &stream, BatchPolicy::dynamic_wave()).unwrap();
//! println!(
//!     "p99 {:.2} ms at {:.0} qps",
//!     outcome.latency_summary().unwrap().p99_s * 1e3,
//!     outcome.achieved_qps()
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod env;
pub mod fault;
pub mod harness;
pub mod mix;
pub mod policy;
pub mod queue;
pub mod server;
pub mod stage;
pub mod supervisor;

pub use env::{
    parse_serve_fault_plan, parse_serve_hedge_ms, parse_serve_mix, parse_serve_mix_slo_ms,
    parse_serve_quarantine_backoff_ms, parse_serve_quarantine_strikes, parse_serve_queue_depth,
    parse_serve_restart_budget, parse_serve_retry_limit, parse_serve_slo_ms, serve_fault_plan,
    serve_hedge_ms, serve_mix, serve_mix_slo_ms, serve_quarantine_backoff_ms,
    serve_quarantine_strikes, serve_queue_depth, serve_restart_budget, serve_retry_limit,
    serve_slo_ms, DEFAULT_SERVE_QUARANTINE_BACKOFF_MS, DEFAULT_SERVE_QUARANTINE_STRIKES,
    DEFAULT_SERVE_RESTART_BUDGET, DEFAULT_SERVE_RETRY_LIMIT, DEFAULT_SERVE_SLO_MS,
    SERVE_FAULT_PLAN_VALUES, SERVE_HEDGE_MS_VALUES, SERVE_MIX_SLO_MS_VALUES, SERVE_MIX_VALUES,
    SERVE_QUARANTINE_BACKOFF_MS_VALUES, SERVE_QUARANTINE_STRIKES_VALUES, SERVE_QUEUE_DEPTH_VALUES,
    SERVE_RESTART_BUDGET_VALUES, SERVE_RETRY_LIMIT_VALUES, SERVE_SLO_MS_VALUES,
};
pub use fault::{FaultEvent, FaultGuard, FaultKind, FaultPlan, FaultSpec};
pub use harness::{
    calibrate_fifo_capacity_qps, generate_requests, run_serve_cell, serve_replay,
    serve_replay_faulted, serve_replay_with, Completion, HedgeConfig, ServeCell, ServeOptions,
    ServeOutcome, ServeReport,
};
pub use mix::{run_mix_cell, MixServer, PoolMode, TenantSpec};
pub use policy::{relative_sample_cost, scaled_service_estimate, BatchPolicy};
pub use queue::{AdmissionConfig, ArrivalQueue, DequeueOrder, QueuedRequest};
pub use server::{BatchServer, SoloServer};
pub use stage::ReplicaStage;
pub use supervisor::{requeue_or_fail, HealthBoard, InFlightSlot, ReplicaHealth, Supervision};
