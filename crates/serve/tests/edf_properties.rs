//! Property tests pinning the earliest-deadline-first backlog order: under
//! [`DequeueOrder::Edf`] the queue hands out whatever it holds in
//! non-decreasing deadline order (ties by enqueue order, no-deadline
//! requests last), and requeued requests keep their original arrival and
//! deadline stamps — a retried request re-enters the heap *now* but is
//! still judged against its original schedule.

use centaur_serve::{AdmissionConfig, ArrivalQueue, BatchPolicy, DequeueOrder, QueuedRequest};
use proptest::prelude::*;

fn edf_queue() -> ArrivalQueue {
    ArrivalQueue::with_config(AdmissionConfig {
        order: DequeueOrder::Edf,
        ..AdmissionConfig::default()
    })
}

/// Drains the whole backlog through `pop_batch` and returns the requests in
/// the order the queue handed them out.
fn drain(queue: &ArrivalQueue, max_batch: usize) -> Vec<QueuedRequest> {
    let policy = BatchPolicy::Dynamic {
        max_batch,
        max_wait: std::time::Duration::ZERO,
    };
    let mut popped = Vec::new();
    let mut batch = Vec::new();
    while queue.pop_batch(policy, &mut batch) {
        queue.complete(batch.len());
        popped.extend_from_slice(&batch);
    }
    popped
}

/// A popped sequence is in EDF order: deadlines never decrease, and equal
/// deadlines keep their relative enqueue order (`seq` ties).
fn assert_edf_order(popped: &[QueuedRequest], enqueue_order: &[usize]) {
    for window in popped.windows(2) {
        assert!(
            window[0]
                .deadline_s
                .total_cmp(&window[1].deadline_s)
                .is_le(),
            "deadlines must be non-decreasing: {} then {}",
            window[0].deadline_s,
            window[1].deadline_s
        );
        if window[0].deadline_s == window[1].deadline_s {
            let first = enqueue_order
                .iter()
                .position(|&i| i == window[0].index)
                .unwrap();
            let second = enqueue_order
                .iter()
                .position(|&i| i == window[1].index)
                .unwrap();
            assert!(
                first < second,
                "equal deadlines keep enqueue order: index {} (enqueued #{}) \
                 popped before index {} (enqueued #{})",
                window[0].index,
                first,
                window[1].index,
                second
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Push an arbitrary mixed-urgency backlog (finite deadlines from a
    /// small set so ties actually occur, plus the occasional no-deadline
    /// request), drain it in arbitrary batch sizes: the popped sequence is
    /// globally sorted by deadline with enqueue order breaking ties and
    /// `INFINITY` deadlines last.
    #[test]
    fn edf_pops_the_whole_backlog_in_deadline_order(
        deadline_choices in proptest::collection::vec(0..8u32, 1..48),
        max_batch in 1..9usize,
    ) {
        let queue = edf_queue();
        let mut enqueue_order = Vec::new();
        for (index, &choice) in deadline_choices.iter().enumerate() {
            // choice 7 = no deadline; others land on a coarse grid so
            // distinct pushes collide on the same deadline.
            let deadline_s = if choice == 7 {
                f64::INFINITY
            } else {
                f64::from(choice) * 0.01
            };
            let request = QueuedRequest {
                index,
                arrival_s: index as f64 * 1e-4,
                deadline_s,
                retries: 0,
                hedged: false,
            };
            prop_assert!(queue.push(request));
            enqueue_order.push(index);
        }
        queue.close();
        let popped = drain(&queue, max_batch);
        prop_assert_eq!(popped.len(), deadline_choices.len(), "nothing lost");
        assert_edf_order(&popped, &enqueue_order);
    }

    /// Interleave requeues with the drain: a popped request is sometimes
    /// sent back (a crash recovery), and when it is popped again it carries
    /// its original arrival/deadline stamps with only the retry count
    /// bumped. Every request still ends up served exactly once per final
    /// pop, still in non-decreasing deadline order from the requeue point.
    #[test]
    fn requeued_requests_keep_their_stamps_and_resort_by_deadline(
        deadline_choices in proptest::collection::vec(0..6u32, 2..24),
        requeue_bits in proptest::collection::vec(0..2u8, 2..24),
    ) {
        let queue = edf_queue();
        let mut originals = Vec::new();
        for (index, &choice) in deadline_choices.iter().enumerate() {
            let request = QueuedRequest {
                index,
                arrival_s: index as f64 * 1e-4,
                deadline_s: f64::from(choice) * 0.01,
                retries: 0,
                hedged: false,
            };
            prop_assert!(queue.push(request));
            originals.push(request);
        }
        queue.close();
        let policy = BatchPolicy::Dynamic {
            max_batch: 3,
            max_wait: std::time::Duration::ZERO,
        };
        let mut served: Vec<QueuedRequest> = Vec::new();
        let mut batch = Vec::new();
        while queue.pop_batch(policy, &mut batch) {
            for &request in &batch {
                let original = originals[request.index];
                prop_assert_eq!(request.arrival_s, original.arrival_s,
                    "arrival stamp survives requeues");
                prop_assert_eq!(request.deadline_s, original.deadline_s,
                    "deadline stamp survives requeues");
                // Requeue each request at most once, per its mask bit.
                let requeue = requeue_bits.get(request.index) == Some(&1);
                if requeue && request.retries == 0 {
                    queue.requeue(request.retry());
                } else {
                    queue.complete(1);
                    served.push(request);
                }
            }
        }
        prop_assert_eq!(served.len(), deadline_choices.len(),
            "every request is served exactly once");
        for request in &served {
            let requeued = requeue_bits.get(request.index) == Some(&1);
            prop_assert_eq!(request.retries, u32::from(requeued),
                "retry count reflects the single requeue");
        }
        // The tail of the drain — everything after the last requeue went
        // back in — is a pure EDF pop sequence again: once no more requeues
        // disturb the heap, deadlines never decrease.
        let last_retry = served.iter().rposition(|r| r.retries > 0).map_or(0, |p| p);
        for window in served[last_retry..].windows(2) {
            prop_assert!(
                window[0].deadline_s.total_cmp(&window[1].deadline_s).is_le(),
                "post-requeue tail in deadline order"
            );
        }
    }
}
