//! Property tests pinning first-result-wins duplicate suppression: under
//! every interleaving of hedge-dispatch, original-completion and
//! hedge-completion (including the late-hedge race where the original
//! resolves between the watchdog's overdue check and its `hedge()` call),
//! each request is counted **exactly once** — never double-counted, never
//! lost — and `generated = completed + failed` stays exact with every
//! redundant copy landing in `duplicates_suppressed`.

use centaur_serve::{ArrivalQueue, BatchPolicy, QueuedRequest};
use proptest::prelude::*;

fn request(index: usize) -> QueuedRequest {
    QueuedRequest {
        index,
        arrival_s: index as f64 * 1e-4,
        deadline_s: f64::INFINITY,
        retries: 0,
        hedged: false,
    }
}

/// Pops exactly one request (the queue is never empty when this is called).
fn pop_one(queue: &ArrivalQueue) -> QueuedRequest {
    let policy = BatchPolicy::Dynamic {
        max_batch: 1,
        max_wait: std::time::Duration::ZERO,
    };
    let mut batch = Vec::new();
    assert!(queue.pop_batch(policy, &mut batch), "request available");
    assert_eq!(batch.len(), 1);
    batch[0]
}

/// Resolves one copy as a completion and reports whether it was counted
/// (`true`) or suppressed as a duplicate (`false`). `slot_hedged` is the
/// flag the worker would have taken from its in-flight slot.
fn complete_one(queue: &ArrivalQueue, copy: QueuedRequest, slot_hedged: bool) -> bool {
    let mut primary = Vec::new();
    queue.complete_batch(&[copy], slot_hedged, &mut primary);
    primary[0]
}

/// Every way one request's lifetime can interleave with the watchdog.
/// Completions/fails below happen in the listed order.
#[derive(Debug, Clone, Copy)]
enum Interleaving {
    /// Never overdue: the original completes alone.
    Plain,
    /// Never overdue: the original fails (retry budget exhausted).
    PlainFail,
    /// Hedged; the original answers first, the clone is a duplicate.
    OriginalWins,
    /// Hedged; the clone answers first (a hedge win), the straggling
    /// original is a duplicate.
    CloneWins,
    /// The watchdog marked the slot overdue but the original completed
    /// before `hedge()` landed: the pending-hedge marker cancels the late
    /// hedge and no clone ever exists.
    LateHedgeCancelled,
    /// Hedged; the original fails while the clone is still live — the
    /// sibling decides the fate and completes (a hedge win).
    OriginalFailsCloneWins,
    /// Hedged; the clone fails while the original is still live — the
    /// original completes and is counted.
    CloneFailsOriginalWins,
    /// Hedged; both copies fail — the request is counted failed once.
    BothFail,
    /// Hedged; the clone answers, then the straggling original comes back
    /// through the crash-recovery `requeue` path and is suppressed there.
    CloneWinsOriginalRequeued,
}

const INTERLEAVINGS: [Interleaving; 9] = [
    Interleaving::Plain,
    Interleaving::PlainFail,
    Interleaving::OriginalWins,
    Interleaving::CloneWins,
    Interleaving::LateHedgeCancelled,
    Interleaving::OriginalFailsCloneWins,
    Interleaving::CloneFailsOriginalWins,
    Interleaving::BothFail,
    Interleaving::CloneWinsOriginalRequeued,
];

/// Expected per-interleaving deltas: (completions, failed, hedges,
/// duplicates, hedge wins).
fn expected(interleaving: Interleaving) -> (usize, usize, usize, usize, usize) {
    match interleaving {
        Interleaving::Plain => (1, 0, 0, 0, 0),
        Interleaving::PlainFail => (0, 1, 0, 0, 0),
        Interleaving::OriginalWins => (1, 0, 1, 1, 0),
        Interleaving::CloneWins => (1, 0, 1, 1, 1),
        Interleaving::LateHedgeCancelled => (1, 0, 0, 0, 0),
        Interleaving::OriginalFailsCloneWins => (1, 0, 1, 1, 1),
        Interleaving::CloneFailsOriginalWins => (1, 0, 1, 1, 0),
        Interleaving::BothFail => (0, 1, 1, 1, 0),
        Interleaving::CloneWinsOriginalRequeued => (1, 0, 1, 1, 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive an arbitrary sequence of per-request interleavings through the
    /// real queue and check the global ledger: every request reaches exactly
    /// one counted terminal state, `generated = completed + failed` holds,
    /// and every redundant copy is suppressed — none double-counted, none
    /// lost, under every ordering of hedge-dispatch, original-completion
    /// and hedge-completion.
    #[test]
    fn every_interleaving_counts_each_request_exactly_once(
        choices in proptest::collection::vec(0..INTERLEAVINGS.len(), 1..64),
    ) {
        let queue = ArrivalQueue::new();
        let mut counted_ids: Vec<usize> = Vec::new();
        let (mut failed, mut hedges, mut duplicates, mut wins) = (0, 0, 0, 0);
        for (index, &choice) in choices.iter().enumerate() {
            let interleaving = INTERLEAVINGS[choice];
            prop_assert!(queue.push(request(index)));
            let original = pop_one(&queue);
            let mut count = |counted: bool| {
                if counted {
                    counted_ids.push(index);
                }
            };
            match interleaving {
                Interleaving::Plain => count(complete_one(&queue, original, false)),
                Interleaving::PlainFail => queue.fail(original, false),
                Interleaving::OriginalWins => {
                    prop_assert!(queue.hedge(original));
                    count(complete_one(&queue, original, true));
                    // The clone is now a dead copy in the backlog; the
                    // next pop scan suppresses it instead of handing it
                    // out (the following iteration's pop, or the final
                    // drain below).
                }
                Interleaving::CloneWins => {
                    prop_assert!(queue.hedge(original));
                    let clone = pop_one(&queue);
                    count(complete_one(&queue, clone, false));
                    count(complete_one(&queue, original, true));
                }
                Interleaving::LateHedgeCancelled => {
                    count(complete_one(&queue, original, true));
                    prop_assert!(!queue.hedge(original), "late hedge must cancel");
                }
                Interleaving::OriginalFailsCloneWins => {
                    prop_assert!(queue.hedge(original));
                    queue.fail(original, true);
                    let clone = pop_one(&queue);
                    count(complete_one(&queue, clone, false));
                }
                Interleaving::CloneFailsOriginalWins => {
                    prop_assert!(queue.hedge(original));
                    let clone = pop_one(&queue);
                    queue.fail(clone, false);
                    count(complete_one(&queue, original, true));
                }
                Interleaving::BothFail => {
                    prop_assert!(queue.hedge(original));
                    queue.fail(original, true);
                    let clone = pop_one(&queue);
                    queue.fail(clone, false);
                }
                Interleaving::CloneWinsOriginalRequeued => {
                    prop_assert!(queue.hedge(original));
                    let clone = pop_one(&queue);
                    count(complete_one(&queue, clone, false));
                    queue.requeue(original.retry());
                }
            }
            let (c, f, h, d, w) = expected(interleaving);
            failed += f;
            hedges += h;
            duplicates += d;
            wins += w;
            prop_assert_eq!(counted_ids.iter().filter(|&&id| id == index).count(), c,
                "request {} counted exactly its expected number of times", index);
        }
        queue.close();
        // Final drain: any dead clones still in the backlog (OriginalWins
        // leaves one) are suppressed by the pop scan, which then reports
        // the closed queue empty.
        let mut leftovers = Vec::new();
        let drain_policy = BatchPolicy::Dynamic {
            max_batch: 1,
            max_wait: std::time::Duration::ZERO,
        };
        prop_assert!(!queue.pop_batch(drain_policy, &mut leftovers),
            "nothing live remains after every interleaving resolved");
        // The ledger: generated = completed + failed, exactly.
        prop_assert_eq!(counted_ids.len() + queue.failed(), choices.len());
        prop_assert_eq!(queue.failed(), failed);
        prop_assert_eq!(queue.hedges(), hedges);
        prop_assert_eq!(queue.duplicates_suppressed(), duplicates);
        prop_assert_eq!(queue.hedge_wins(), wins);
        // No double-counting: each counted id appears at most once.
        let mut sorted = counted_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), counted_ids.len(), "no id counted twice");
        prop_assert!(queue.is_finished(), "every copy reached a terminal state");
        prop_assert_eq!(queue.depth(), 0);
        prop_assert_eq!(queue.in_flight(), 0);
    }

    /// Batch-granularity variant of the late-hedge race: the whole backlog
    /// is popped in arbitrary batch sizes, and per request a coin decides
    /// whether the watchdog's `hedge()` lands before or after the original's
    /// completion. Early hedges spawn one clone each (suppressed when it
    /// drains later); late hedges are cancelled by the pending-hedge marker.
    /// Either way every request completes exactly once.
    #[test]
    fn late_and_early_hedges_agree_on_the_ledger(
        hedge_bits in proptest::collection::vec(0..2u8, 1..48),
        max_batch in 1..7usize,
    ) {
        let queue = ArrivalQueue::new();
        for index in 0..hedge_bits.len() {
            prop_assert!(queue.push(request(index)));
        }
        queue.close();
        let policy = BatchPolicy::Dynamic {
            max_batch,
            max_wait: std::time::Duration::ZERO,
        };
        let mut batch = Vec::new();
        let mut primary = Vec::new();
        let mut counted = vec![0usize; hedge_bits.len()];
        let mut expected_hedges = 0;
        while queue.pop_batch(policy, &mut batch) {
            for i in 0..batch.len() {
                let copy = batch[i];
                // Clones never surface: their originals complete within the
                // same batch pass, so the next pop scan suppresses them.
                prop_assert!(!copy.hedged, "dead clones are suppressed at pop");
                if hedge_bits[copy.index] == 1 {
                    prop_assert!(queue.hedge(copy), "early hedge enqueues a clone");
                    expected_hedges += 1;
                    queue.complete_batch(&batch[i..=i], true, &mut primary);
                } else {
                    queue.complete_batch(&batch[i..=i], true, &mut primary);
                    prop_assert!(!queue.hedge(copy), "late hedge must cancel");
                }
                if primary[0] {
                    counted[copy.index] += 1;
                }
            }
        }
        prop_assert!(counted.iter().all(|&n| n == 1),
            "every request counted exactly once: {counted:?}");
        prop_assert_eq!(queue.hedges(), expected_hedges);
        prop_assert_eq!(queue.duplicates_suppressed(), expected_hedges,
            "every clone was suppressed");
        prop_assert_eq!(queue.hedge_wins(), 0, "originals always answered first");
        prop_assert!(queue.is_finished());
    }
}
