//! # centaur-workload
//!
//! Workload generation for recommendation-inference experiments: sparse
//! embedding index streams with controllable locality (uniform, Zipfian,
//! hot-set), batched request generation producing both functional inputs
//! (real index lists + dense features) and timing traces
//! ([`centaur_dlrm::GatherTrace`]), and Poisson query arrival processes for
//! SLA-style studies.
//!
//! All generators are deterministic given a seed so every experiment in the
//! benchmark harness is reproducible.
//!
//! ```
//! use centaur_dlrm::PaperModel;
//! use centaur_workload::{IndexDistribution, RequestGenerator};
//!
//! let config = PaperModel::Dlrm1.config();
//! let mut generator = RequestGenerator::new(&config, IndexDistribution::Uniform, 42);
//! let trace = generator.inference_trace(16);
//! assert_eq!(trace.batch_size(), 16);
//! assert_eq!(
//!     trace.gather.total_lookups(),
//!     16 * config.lookups_per_sample()
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod distribution;
pub mod fault;
pub mod generator;
pub mod mix;

pub use arrival::{
    ArrivalProcess, ArrivalSampler, LatencySummary, QueryStream, TrafficShape, HEAVY_TAIL_CV2,
};
pub use distribution::IndexDistribution;
pub use fault::FaultScheduleSampler;
pub use generator::{FunctionalBatch, RequestGenerator};
pub use mix::{ModelMix, TenantTraffic};
