//! Multi-tenant traffic mixes: how a total offered load splits across
//! co-located tenants.
//!
//! A production recommendation fleet rarely serves one model — a heavy
//! ranking model and a light candidate-generation model share the host,
//! each with its own traffic share and burst shape. [`TenantTraffic`]
//! describes one tenant's slice of the total offered load (share × shape);
//! [`ModelMix`] validates that a set of tenant slices forms a complete mix
//! (positive shares summing to 1) and converts a total offered rate into
//! per-tenant rates and query counts, so a serving sweep can drive N
//! tenants whose combined load equals the swept total.

use crate::arrival::{ArrivalProcess, TrafficShape};

/// One tenant's slice of a total offered load: the fraction of queries that
/// are this tenant's, and the burst shape its arrivals follow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantTraffic {
    /// Fraction of the total offered load that is this tenant's, in (0, 1].
    pub share: f64,
    /// Traffic shape modulating this tenant's arrivals.
    pub shape: TrafficShape,
}

impl TenantTraffic {
    /// A tenant slice with the given share and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `share` is in (0, 1] — a zero-share tenant offers no
    /// traffic and should not be in the mix.
    pub fn new(share: f64, shape: TrafficShape) -> Self {
        assert!(
            share > 0.0 && share <= 1.0,
            "tenant traffic share must be in (0, 1], got {share}"
        );
        TenantTraffic { share, shape }
    }

    /// This tenant's long-run mean rate when the mix offers `total_qps`.
    pub fn rate_qps(&self, total_qps: f64) -> f64 {
        self.share * total_qps
    }

    /// This tenant's query count when the mix replays `total_queries`
    /// (rounded, at least 1 — every tenant in the mix sends something).
    pub fn queries(&self, total_queries: usize) -> usize {
        ((self.share * total_queries as f64).round() as usize).max(1)
    }

    /// The concrete arrival process for this tenant at `total_qps` offered
    /// across the whole mix.
    pub fn process(&self, total_qps: f64) -> ArrivalProcess {
        self.shape.process(self.rate_qps(total_qps))
    }
}

/// A validated multi-tenant traffic mix: named tenant slices whose shares
/// sum to 1 (within float tolerance), in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMix {
    tenants: Vec<(String, TenantTraffic)>,
}

impl ModelMix {
    /// Builds a mix from named tenant slices.
    ///
    /// # Panics
    ///
    /// Panics when the mix is empty, any share is outside (0, 1], or the
    /// shares do not sum to 1 within 1e-6 — a mix that under- or
    /// over-subscribes the total load silently skews every per-tenant rate.
    pub fn new(tenants: Vec<(String, TenantTraffic)>) -> Self {
        assert!(
            !tenants.is_empty(),
            "a traffic mix needs at least one tenant"
        );
        let total: f64 = tenants.iter().map(|(_, t)| t.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "tenant shares must sum to 1, got {total}"
        );
        for (name, tenant) in &tenants {
            assert!(
                tenant.share > 0.0 && tenant.share <= 1.0,
                "tenant {name:?} share must be in (0, 1], got {}",
                tenant.share
            );
        }
        ModelMix { tenants }
    }

    /// The named tenant slices, in declaration order.
    pub fn tenants(&self) -> &[(String, TenantTraffic)] {
        &self.tenants
    }

    /// Number of tenants in the mix.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the mix holds no tenants (never true for a constructed mix).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Compact label for bench/report cells: `name:share` pairs joined with
    /// `+`, e.g. `light:0.70+heavy:0.30`.
    pub fn label(&self) -> String {
        self.tenants
            .iter()
            .map(|(name, t)| format!("{name}:{:.2}", t.share))
            .collect::<Vec<_>>()
            .join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_traffic_splits_rates_and_counts() {
        let light = TenantTraffic::new(0.7, TrafficShape::Poisson);
        let heavy = TenantTraffic::new(0.3, TrafficShape::HeavyTail);
        assert_eq!(light.rate_qps(10_000.0), 7_000.0);
        assert_eq!(heavy.rate_qps(10_000.0), 3_000.0);
        assert_eq!(light.queries(1_000), 700);
        assert_eq!(heavy.queries(1_000), 300);
        assert_eq!(heavy.queries(1), 1, "every tenant sends at least one");
        assert_eq!(light.process(10_000.0).label(), "poisson");
        assert_eq!(heavy.process(10_000.0).label(), "hyperexp");
        assert!((heavy.process(10_000.0).rate_qps() - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn mix_validates_and_labels() {
        let mix = ModelMix::new(vec![
            (
                "light".to_string(),
                TenantTraffic::new(0.7, TrafficShape::Poisson),
            ),
            (
                "heavy".to_string(),
                TenantTraffic::new(0.3, TrafficShape::HeavyTail),
            ),
        ]);
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
        assert_eq!(mix.label(), "light:0.70+heavy:0.30");
        assert_eq!(mix.tenants()[0].0, "light");
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn mix_rejects_undersubscribed_shares() {
        ModelMix::new(vec![
            (
                "a".to_string(),
                TenantTraffic::new(0.5, TrafficShape::Poisson),
            ),
            (
                "b".to_string(),
                TenantTraffic::new(0.4, TrafficShape::Poisson),
            ),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn mix_rejects_the_empty_mix() {
        ModelMix::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "share must be in (0, 1]")]
    fn zero_share_tenants_are_rejected() {
        TenantTraffic::new(0.0, TrafficShape::Poisson);
    }
}
