//! Deterministic fault-schedule sampling for availability studies.
//!
//! Production recommendation fleets treat node loss as routine, so the
//! serving layer's fault-injection experiments need *schedules* of faults —
//! which replica fails, when, and how — that are reproducible run to run
//! exactly like the arrival schedules from [`crate::arrival`]. This module
//! samples those schedules; the serving crate turns them into its own
//! fault-plan type and injects them into replica workers.
//!
//! Offsets are drawn from the middle band of the replay window (15 %–85 %)
//! so a sampled fault lands *mid-replay*: early enough that recovery still
//! has load to absorb, late enough that the pool is warmed up and serving —
//! the regime where crash recovery is actually measurable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of the replay window before which no fault is scheduled.
pub const FAULT_WINDOW_LO: f64 = 0.15;
/// Fraction of the replay window after which no fault is scheduled.
pub const FAULT_WINDOW_HI: f64 = 0.85;

/// Seeded sampler for fault schedules: event time offsets within a replay
/// window and victim-replica choices. Deterministic given its seed.
#[derive(Debug)]
pub struct FaultScheduleSampler {
    rng: StdRng,
}

impl FaultScheduleSampler {
    /// Creates a sampler from a seed. The seed is mixed so fault schedules
    /// decorrelate from arrival/request streams built from the same
    /// experiment seed.
    pub fn new(seed: u64) -> Self {
        FaultScheduleSampler {
            rng: StdRng::seed_from_u64(seed ^ 0xFA_17_5C_ED),
        }
    }

    /// Samples one fault offset in seconds, uniform over the mid-replay
    /// band ([`FAULT_WINDOW_LO`], [`FAULT_WINDOW_HI`]) of a replay lasting
    /// `window_s` seconds.
    pub fn offset_s(&mut self, window_s: f64) -> f64 {
        let span = window_s.max(0.0);
        self.rng.gen_range(FAULT_WINDOW_LO..FAULT_WINDOW_HI) * span
    }

    /// Samples `count` fault offsets over `window_s`, sorted ascending.
    pub fn offsets_s(&mut self, count: usize, window_s: f64) -> Vec<f64> {
        let mut offsets: Vec<f64> = (0..count).map(|_| self.offset_s(window_s)).collect();
        offsets.sort_by(|a, b| a.partial_cmp(b).expect("offsets are finite"));
        offsets
    }

    /// Samples `count` *repeating* fault offsets: the mid-replay band is
    /// split into `count` equal slots and one offset is jittered uniformly
    /// inside each, so the events recur at a roughly even cadence (an
    /// intermittently stalling replica) instead of clustering the way
    /// independent uniform draws can. Sorted ascending by construction.
    pub fn repeating_offsets_s(&mut self, count: usize, window_s: f64) -> Vec<f64> {
        if count == 0 {
            return Vec::new();
        }
        let span = window_s.max(0.0);
        let band_lo = FAULT_WINDOW_LO * span;
        let band = (FAULT_WINDOW_HI - FAULT_WINDOW_LO) * span;
        let slot = band / count as f64;
        (0..count)
            .map(|i| band_lo + slot * i as f64 + self.rng.gen_range(0.0..1.0) * slot)
            .collect()
    }

    /// Picks a victim replica uniformly from `0..replicas` (`0` when the
    /// pool is empty).
    pub fn replica(&mut self, replicas: usize) -> usize {
        if replicas <= 1 {
            return 0;
        }
        self.rng.gen_range(0..replicas as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let mut a = FaultScheduleSampler::new(7);
        let mut b = FaultScheduleSampler::new(7);
        let offsets_a = a.offsets_s(8, 2.0);
        let offsets_b = b.offsets_s(8, 2.0);
        assert_eq!(offsets_a, offsets_b, "schedules are deterministic");
        let picks_a: Vec<usize> = (0..8).map(|_| a.replica(4)).collect();
        let picks_b: Vec<usize> = (0..8).map(|_| b.replica(4)).collect();
        assert_eq!(picks_a, picks_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultScheduleSampler::new(1);
        let mut b = FaultScheduleSampler::new(2);
        assert_ne!(a.offsets_s(8, 2.0), b.offsets_s(8, 2.0));
    }

    #[test]
    fn offsets_land_mid_replay_sorted() {
        let mut sampler = FaultScheduleSampler::new(11);
        let window_s = 4.0;
        let offsets = sampler.offsets_s(64, window_s);
        for pair in offsets.windows(2) {
            assert!(pair[0] <= pair[1], "offsets are sorted");
        }
        for &t in &offsets {
            assert!(
                t >= FAULT_WINDOW_LO * window_s && t <= FAULT_WINDOW_HI * window_s,
                "offset {t} outside the mid-replay band"
            );
        }
    }

    #[test]
    fn replica_choice_covers_the_pool_and_handles_degenerate_sizes() {
        let mut sampler = FaultScheduleSampler::new(3);
        assert_eq!(sampler.replica(0), 0);
        assert_eq!(sampler.replica(1), 0);
        let mut seen = [false; 3];
        for _ in 0..64 {
            let r = sampler.replica(3);
            assert!(r < 3);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 draws cover a 3-replica pool");
    }

    #[test]
    fn repeating_offsets_space_evenly_across_the_band() {
        let mut sampler = FaultScheduleSampler::new(17);
        let window_s = 2.0;
        let count = 8;
        let offsets = sampler.repeating_offsets_s(count, window_s);
        assert_eq!(offsets.len(), count);
        let band_lo = FAULT_WINDOW_LO * window_s;
        let slot = (FAULT_WINDOW_HI - FAULT_WINDOW_LO) * window_s / count as f64;
        for (i, &t) in offsets.iter().enumerate() {
            let lo = band_lo + slot * i as f64;
            assert!(
                t >= lo && t < lo + slot,
                "offset {t} escaped its slot [{lo}, {})",
                lo + slot
            );
        }
        for pair in offsets.windows(2) {
            assert!(pair[0] <= pair[1], "slotted offsets are sorted");
        }
        let mut again = FaultScheduleSampler::new(17);
        assert_eq!(
            again.repeating_offsets_s(count, window_s),
            offsets,
            "repeating schedules are deterministic"
        );
        assert!(sampler.repeating_offsets_s(0, window_s).is_empty());
    }

    #[test]
    fn zero_window_pins_offsets_to_zero() {
        let mut sampler = FaultScheduleSampler::new(5);
        assert_eq!(sampler.offset_s(0.0), 0.0);
    }
}
