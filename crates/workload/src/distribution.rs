//! Sparse-index distributions controlling the locality of embedding gathers.
//!
//! The paper's characterization hinges on embedding gathers being "extremely
//! sparse with low spatial/temporal locality". A uniform distribution over a
//! multi-hundred-thousand-row table reproduces that behaviour; the Zipfian
//! and hot-set distributions let examples and ablation benches explore what
//! happens when production traffic *does* have popular items.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How sparse indices are drawn from an embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum IndexDistribution {
    /// Every row is equally likely — the paper's worst-case (and default)
    /// locality assumption.
    #[default]
    Uniform,
    /// Zipf-like popularity with exponent `s` (> 0). Larger `s` concentrates
    /// accesses on fewer rows.
    Zipfian {
        /// Skew exponent; 0.99 approximates many production popularity
        /// curves.
        exponent: f64,
    },
    /// A fraction `hot_fraction` of accesses target the first
    /// `hot_rows` rows of the table; the rest are uniform over the whole
    /// table.
    HotSet {
        /// Number of "hot" rows at the front of the table.
        hot_rows: u64,
        /// Probability that an access hits the hot set (0.0–1.0).
        hot_fraction: f64,
    },
}

impl IndexDistribution {
    /// The Zipf exponent that approximates production recommendation
    /// popularity curves (RecNMP measures s ≈ 0.9–1.0 on deployed traffic).
    pub const PRODUCTION_SKEW_EXPONENT: f64 = 0.99;

    /// A Zipfian distribution with explicit exponent — the skewed index
    /// generator benches use to exercise realistic hot-row reuse instead of
    /// the paper's worst-case uniform draw.
    pub fn zipfian(exponent: f64) -> Self {
        IndexDistribution::Zipfian { exponent }
    }

    /// The default production-like skew:
    /// [`zipfian`]([`Self::PRODUCTION_SKEW_EXPONENT`]).
    ///
    /// [`zipfian`]: Self::zipfian
    pub fn production_skew() -> Self {
        Self::zipfian(Self::PRODUCTION_SKEW_EXPONENT)
    }

    /// Short label for reports and CSV headers.
    pub fn label(&self) -> String {
        match self {
            IndexDistribution::Uniform => "uniform".to_string(),
            IndexDistribution::Zipfian { exponent } => format!("zipf(s={exponent})"),
            IndexDistribution::HotSet {
                hot_rows,
                hot_fraction,
            } => format!("hotset({hot_rows} rows, {:.0}%)", hot_fraction * 100.0),
        }
    }

    /// Draws one row index in `[0, rows)` from the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn sample(&self, rows: u64, rng: &mut StdRng) -> u64 {
        assert!(rows > 0, "cannot sample from an empty table");
        match *self {
            IndexDistribution::Uniform => rng.gen_range(0..rows),
            IndexDistribution::Zipfian { exponent } => zipf_sample(rows, exponent, rng),
            IndexDistribution::HotSet {
                hot_rows,
                hot_fraction,
            } => {
                let hot_rows = hot_rows.clamp(1, rows);
                if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_rows)
                } else {
                    rng.gen_range(0..rows)
                }
            }
        }
    }

    /// Draws `count` independent indices.
    pub fn sample_many(&self, rows: u64, count: usize, rng: &mut StdRng) -> Vec<u64> {
        (0..count).map(|_| self.sample(rows, rng)).collect()
    }
}

/// Approximate Zipf sampling via inverse-CDF on a continuous bounded Pareto,
/// then clamping to the integer domain. Accurate enough for workload
/// locality modelling and much cheaper than building the full discrete CDF
/// for multi-hundred-thousand-row tables.
fn zipf_sample(rows: u64, exponent: f64, rng: &mut StdRng) -> u64 {
    let s = exponent.max(1e-6);
    let n = rows as f64;
    let u: f64 = rng.gen_range(0.0..1.0);
    let value = if (s - 1.0).abs() < 1e-9 {
        // CDF ∝ ln(x); invert ln-based CDF.
        (n.ln() * u).exp()
    } else {
        // CDF ∝ (x^(1-s) - 1) / (n^(1-s) - 1)
        let one_minus_s = 1.0 - s;
        ((n.powf(one_minus_s) - 1.0) * u + 1.0).powf(1.0 / one_minus_s)
    };
    (value.floor() as u64).min(rows - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_range_and_covers_table() {
        let mut r = rng(1);
        let d = IndexDistribution::Uniform;
        let samples = d.sample_many(100, 10_000, &mut r);
        assert!(samples.iter().all(|&x| x < 100));
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 90, "uniform should cover most rows");
    }

    #[test]
    fn zipf_is_skewed_toward_low_rows() {
        let mut r = rng(2);
        let d = IndexDistribution::Zipfian { exponent: 1.2 };
        let samples = d.sample_many(10_000, 20_000, &mut r);
        assert!(samples.iter().all(|&x| x < 10_000));
        let low = samples.iter().filter(|&&x| x < 100).count();
        // With s=1.2 the head is heavily favoured; uniform would give ~1%.
        assert!(
            low as f64 / samples.len() as f64 > 0.3,
            "zipf head fraction too small: {low}"
        );
    }

    #[test]
    fn zipf_exponent_one_special_case() {
        let mut r = rng(3);
        let d = IndexDistribution::Zipfian { exponent: 1.0 };
        let samples = d.sample_many(1000, 5000, &mut r);
        assert!(samples.iter().all(|&x| x < 1000));
    }

    #[test]
    fn hotset_concentrates_accesses() {
        let mut r = rng(4);
        let d = IndexDistribution::HotSet {
            hot_rows: 10,
            hot_fraction: 0.9,
        };
        let samples = d.sample_many(100_000, 10_000, &mut r);
        let hot = samples.iter().filter(|&&x| x < 10).count();
        assert!(hot as f64 / samples.len() as f64 > 0.85);
    }

    #[test]
    fn hotset_clamps_degenerate_parameters() {
        let mut r = rng(5);
        let d = IndexDistribution::HotSet {
            hot_rows: 1_000_000, // larger than the table
            hot_fraction: 2.0,   // > 1.0
        };
        let samples = d.sample_many(50, 1000, &mut r);
        assert!(samples.iter().all(|&x| x < 50));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = IndexDistribution::Zipfian { exponent: 0.99 };
        let a = d.sample_many(1000, 100, &mut rng(42));
        let b = d.sample_many(1000, 100, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn sampling_empty_table_panics() {
        IndexDistribution::Uniform.sample(0, &mut rng(0));
    }

    #[test]
    fn production_skew_is_zipfian_with_documented_exponent() {
        assert_eq!(
            IndexDistribution::production_skew(),
            IndexDistribution::Zipfian { exponent: 0.99 }
        );
        assert_eq!(
            IndexDistribution::zipfian(1.3),
            IndexDistribution::Zipfian { exponent: 1.3 }
        );
        // The skew must actually concentrate mass in the head.
        let mut r = rng(11);
        let samples = IndexDistribution::production_skew().sample_many(100_000, 10_000, &mut r);
        let head = samples.iter().filter(|&&x| x < 1000).count();
        assert!(head as f64 / samples.len() as f64 > 0.3);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(IndexDistribution::Uniform.label(), "uniform");
        assert!(IndexDistribution::Zipfian { exponent: 0.99 }
            .label()
            .contains("0.99"));
        assert!(IndexDistribution::HotSet {
            hot_rows: 5,
            hot_fraction: 0.5
        }
        .label()
        .contains("50%"));
        assert_eq!(IndexDistribution::default(), IndexDistribution::Uniform);
    }
}
