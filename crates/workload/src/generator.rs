//! Batched request generation: timing traces for the simulators and
//! functional inputs (dense features + index lists) for the reference model.

use crate::distribution::IndexDistribution;
use centaur_dlrm::config::ModelConfig;
use centaur_dlrm::tensor::Matrix;
use centaur_dlrm::trace::{GatherTrace, InferenceTrace, SampleTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A functional batch: everything needed to run the *reference* DLRM model
/// (real index lists and dense features), plus the matching timing trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalBatch {
    /// Dense features, one row per sample (`[batch, dense_features]`).
    pub dense: Matrix,
    /// Sparse indices per sample, per table (`u32`, usable with
    /// [`centaur_dlrm::EmbeddingBag`]).
    pub sparse: Vec<Vec<Vec<u32>>>,
    /// The equivalent timing trace.
    pub trace: InferenceTrace,
}

impl FunctionalBatch {
    /// Batch size of the request.
    pub fn batch_size(&self) -> usize {
        self.sparse.len()
    }
}

/// Deterministic request generator for a given model configuration.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    config: ModelConfig,
    distribution: IndexDistribution,
    rng: StdRng,
}

impl RequestGenerator {
    /// Creates a generator for `config`, drawing indices from
    /// `distribution`, seeded with `seed`.
    pub fn new(config: &ModelConfig, distribution: IndexDistribution, seed: u64) -> Self {
        RequestGenerator {
            config: config.clone(),
            distribution,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The model configuration this generator targets.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The index distribution in use.
    pub fn distribution(&self) -> IndexDistribution {
        self.distribution
    }

    /// Generates the gather trace of one sample.
    pub fn sample_trace(&mut self) -> SampleTrace {
        let rows_per_table = (0..self.config.num_tables)
            .map(|_| {
                self.distribution.sample_many(
                    self.config.rows_per_table,
                    self.config.lookups_per_table,
                    &mut self.rng,
                )
            })
            .collect();
        SampleTrace { rows_per_table }
    }

    /// Generates the gather trace of a whole batch.
    pub fn gather_trace(&mut self, batch_size: usize) -> GatherTrace {
        let samples = (0..batch_size).map(|_| self.sample_trace()).collect();
        GatherTrace::new(self.config.embedding_dim, samples)
    }

    /// Generates a complete [`InferenceTrace`] for a batch — the input to
    /// every timing simulator in the workspace.
    pub fn inference_trace(&mut self, batch_size: usize) -> InferenceTrace {
        let gather = self.gather_trace(batch_size);
        InferenceTrace::new(self.config.clone(), gather)
    }

    /// Generates dense features for a batch: standard-normal-ish values in
    /// `[-1, 1]` as produced by DLRM's synthetic input pipeline.
    pub fn dense_features(&mut self, batch_size: usize) -> Matrix {
        let cols = self.config.dense_features;
        let mut m = Matrix::zeros(batch_size, cols);
        for r in 0..batch_size {
            for c in 0..cols {
                m.set(r, c, self.rng.gen_range(-1.0..1.0));
            }
        }
        m
    }

    /// Generates a functional batch (dense features, `u32` index lists and
    /// the matching timing trace), for running the reference model and a
    /// simulator on *identical* inputs.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's `rows_per_table` exceeds `u32::MAX`
    /// (functional tables are indexed with `u32`; use the timing-only API
    /// for larger tables).
    pub fn functional_batch(&mut self, batch_size: usize) -> FunctionalBatch {
        assert!(
            self.config.rows_per_table <= u32::MAX as u64,
            "functional batches require tables indexable by u32"
        );
        let trace = self.inference_trace(batch_size);
        let sparse: Vec<Vec<Vec<u32>>> = trace
            .gather
            .samples
            .iter()
            .map(SampleTrace::as_u32_indices)
            .collect();
        let dense = self.dense_features(batch_size);
        FunctionalBatch {
            dense,
            sparse,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use centaur_dlrm::config::PaperModel;

    fn generator(seed: u64) -> RequestGenerator {
        RequestGenerator::new(
            &PaperModel::Dlrm1.config(),
            IndexDistribution::Uniform,
            seed,
        )
    }

    #[test]
    fn sample_trace_has_configured_shape() {
        let mut g = generator(1);
        let s = g.sample_trace();
        let c = g.config().clone();
        assert_eq!(s.rows_per_table.len(), c.num_tables);
        assert!(s
            .rows_per_table
            .iter()
            .all(|rows| rows.len() == c.lookups_per_table));
        assert!(s
            .iter_accesses()
            .all(|a| a.row < c.rows_per_table && a.table < c.num_tables));
    }

    #[test]
    fn inference_trace_batch_accounting() {
        let mut g = generator(2);
        let t = g.inference_trace(32);
        assert_eq!(t.batch_size(), 32);
        assert_eq!(
            t.gather.total_lookups(),
            32 * g.config().lookups_per_sample()
        );
        assert_eq!(
            t.gathered_bytes(),
            32 * g.config().gathered_bytes_per_sample()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator(7).inference_trace(4);
        let b = generator(7).inference_trace(4);
        let c = generator(8).inference_trace(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_features_shape_and_range() {
        let mut g = generator(3);
        let d = g.dense_features(16);
        assert_eq!(d.shape(), (16, 13));
        assert!(d.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn functional_batch_is_consistent_with_trace() {
        let config = PaperModel::Dlrm1.config().with_rows_per_table(256);
        let mut g = RequestGenerator::new(&config, IndexDistribution::Uniform, 11);
        let batch = g.functional_batch(8);
        assert_eq!(batch.batch_size(), 8);
        assert_eq!(batch.dense.shape(), (8, 13));
        assert_eq!(batch.trace.batch_size(), 8);
        // u32 index lists must mirror the u64 trace exactly.
        for (sample, sparse) in batch.trace.gather.samples.iter().zip(&batch.sparse) {
            for (rows, indices) in sample.rows_per_table.iter().zip(sparse) {
                assert_eq!(rows.len(), indices.len());
                assert!(rows.iter().zip(indices).all(|(&r, &i)| r == i as u64));
            }
        }
    }

    #[test]
    fn zipfian_generator_skews_rows() {
        let config = PaperModel::Dlrm3.config();
        let mut g = RequestGenerator::new(&config, IndexDistribution::Zipfian { exponent: 1.1 }, 5);
        let t = g.gather_trace(64);
        let head = t
            .iter_accesses()
            .filter(|a| a.row < config.rows_per_table / 100)
            .count();
        assert!(head as f64 / t.total_lookups() as f64 > 0.2);
    }

    #[test]
    fn lookup_sweep_configs_generate() {
        // Figure 7(b)/13(b) sweep the lookups per table from small to 800.
        let base = PaperModel::Dlrm4.config().with_num_tables(1);
        for lookups in [1, 50, 200, 800] {
            let config = base.with_lookups_per_table(lookups);
            let mut g = RequestGenerator::new(&config, IndexDistribution::Uniform, 1);
            let t = g.inference_trace(4);
            assert_eq!(t.gather.total_lookups(), 4 * lookups);
        }
    }
}
